/**
 * @file
 * ASCII table / series printers for the benchmark harnesses.
 *
 * Every figure and table of the paper is regenerated as rows/series on
 * stdout; this module renders them in a fixed-width layout so the
 * output is diff-able run to run.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace stats::support {

/** Fixed-layout ASCII table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Numeric convenience: formats doubles with `precision` digits. */
    void addRow(const std::string &label, const std::vector<double> &cells,
                int precision = 2);

    void print(std::ostream &out) const;

    static std::string formatDouble(double v, int precision = 2);

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/**
 * Print a named series (e.g. "speedup vs threads") as aligned
 * x -> y pairs, one per line.
 */
void printSeries(std::ostream &out, const std::string &name,
                 const std::vector<double> &xs,
                 const std::vector<double> &ys, int precision = 2);

} // namespace stats::support
