/**
 * @file
 * Minimal logging / error-reporting facility.
 *
 * Follows the gem5 convention: fatal() for user-caused conditions the
 * program cannot recover from, panic() for internal invariant
 * violations, warn()/inform() for status messages.
 */

#pragma once

#include <sstream>
#include <string>

namespace stats::support {

enum class LogLevel { Debug, Info, Warn, Error };

/** Global verbosity threshold; messages below it are suppressed. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emit one log line to stderr if `level` passes the threshold. */
void logMessage(LogLevel level, const std::string &message);

namespace detail {

template <class... Args>
std::string
format(Args &&...args)
{
    std::ostringstream out;
    (out << ... << args);
    return out.str();
}

} // namespace detail

/** Informative status message. */
template <class... Args>
void
inform(Args &&...args)
{
    logMessage(LogLevel::Info, detail::format(std::forward<Args>(args)...));
}

/** Something is suspicious but execution can continue. */
template <class... Args>
void
warn(Args &&...args)
{
    logMessage(LogLevel::Warn, detail::format(std::forward<Args>(args)...));
}

/** Unrecoverable user-level error: report and exit(1). */
[[noreturn]] void fatalExit(const std::string &message);

template <class... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    fatalExit(detail::format(std::forward<Args>(args)...));
}

/** Internal invariant violation: report and abort(). */
[[noreturn]] void panicAbort(const std::string &message);

template <class... Args>
[[noreturn]] void
panic(Args &&...args)
{
    panicAbort(detail::format(std::forward<Args>(args)...));
}

} // namespace stats::support
