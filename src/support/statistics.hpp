/**
 * @file
 * Descriptive statistics used throughout the evaluation.
 *
 * The paper reports averages of repeated runs with a 95% confidence
 * interval within 5% of the mean (section 4.1) and geometric means for
 * cross-benchmark aggregates. This module provides those primitives.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace stats::support {

/** Single-pass accumulator (Welford) for mean and variance. */
class RunningStat
{
  public:
    void add(double x);

    std::size_t count() const { return _n; }
    double mean() const;
    /** Sample variance (n - 1 denominator). */
    double variance() const;
    double stddev() const;
    /** Half-width of the 95% confidence interval of the mean. */
    double ci95HalfWidth() const;
    double min() const { return _min; }
    double max() const { return _max; }

  private:
    std::size_t _n = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Arithmetic mean; returns 0 for an empty range. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation; returns 0 for fewer than two values. */
double stddev(const std::vector<double> &xs);

/** Geometric mean; all inputs must be positive. */
double geomean(const std::vector<double> &xs);

/** Median (averages the two central values for even sizes). */
double median(std::vector<double> xs);

/**
 * Run a measurement repeatedly until the 95% CI of the mean is within
 * `tolerance` (fraction of the mean), mirroring the paper's
 * convergence criterion. Bounded by [minRuns, maxRuns].
 *
 * @return the mean of the collected measurements.
 */
template <class F>
double
measureToConfidence(F &&sample, double tolerance = 0.05,
                    std::size_t min_runs = 3, std::size_t max_runs = 40)
{
    RunningStat stat;
    for (std::size_t i = 0; i < max_runs; ++i) {
        stat.add(sample());
        if (i + 1 >= min_runs && stat.mean() != 0.0 &&
            stat.ci95HalfWidth() <= tolerance * stat.mean()) {
            break;
        }
    }
    return stat.mean();
}

} // namespace stats::support
