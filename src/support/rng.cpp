#include "support/rng.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <random>

namespace stats::support {

namespace {

std::atomic<std::uint64_t> deterministicBase{0};
std::atomic<bool> deterministicEnabled{false};
std::atomic<std::uint64_t> seedCounter{0};

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed_value)
    : _cachedGaussian(0.0), _hasCachedGaussian(false)
{
    seed(seed_value);
}

void
Xoshiro256::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : _s)
        word = splitmix64(sm);
    _hasCachedGaussian = false;
}

Xoshiro256::result_type
Xoshiro256::operator()()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;
    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);
    return result;
}

double
Xoshiro256::nextDouble()
{
    // 53 high-quality bits -> [0, 1).
    return ((*this)() >> 11) * 0x1.0p-53;
}

double
Xoshiro256::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

std::uint64_t
Xoshiro256::nextBelow(std::uint64_t n)
{
    // Debiased multiply-shift (Lemire).
    const std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Xoshiro256::uniformInt(std::int64_t lo, std::int64_t hi)
{
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Xoshiro256::gaussian()
{
    if (_hasCachedGaussian) {
        _hasCachedGaussian = false;
        return _cachedGaussian;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 1e-300);
    const double u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    _cachedGaussian = r * std::sin(theta);
    _hasCachedGaussian = true;
    return r * std::cos(theta);
}

double
Xoshiro256::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::uint64_t
entropySeed()
{
    const std::uint64_t count = seedCounter.fetch_add(1);
    if (deterministicEnabled.load()) {
        std::uint64_t sm = deterministicBase.load() + count;
        return splitmix64(sm);
    }
    static std::random_device device;
    std::uint64_t sm = (static_cast<std::uint64_t>(device()) << 32) ^
                       device();
    sm ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    sm += count * 0x9e3779b97f4a7c15ULL;
    return splitmix64(sm);
}

ScopedDeterministicSeeds::ScopedDeterministicSeeds(std::uint64_t base)
    : _savedBase(deterministicBase.load()),
      _savedCounter(seedCounter.load()),
      _savedEnabled(deterministicEnabled.load())
{
    deterministicBase.store(base);
    deterministicEnabled.store(true);
    seedCounter.store(0);
}

ScopedDeterministicSeeds::~ScopedDeterministicSeeds()
{
    deterministicBase.store(_savedBase);
    seedCounter.store(_savedCounter);
    deterministicEnabled.store(_savedEnabled);
}

} // namespace stats::support
