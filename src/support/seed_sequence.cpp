#include "support/seed_sequence.hpp"

#include "support/rng.hpp"

namespace stats::support {

namespace {

/** FNV-1a over a byte range, 64-bit. */
std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace

std::uint64_t
SeedSequence::derive(std::string_view stream) const
{
    std::uint64_t hash = fnv1a(0xcbf29ce484222325ULL ^ _root,
                               stream.data(), stream.size());
    // splitmix64 finalization: FNV alone is too linear for seeds that
    // feed xoshiro state expansion.
    return splitmix64(hash);
}

std::uint64_t
SeedSequence::derive(std::string_view stream, std::uint64_t index) const
{
    std::uint64_t hash = fnv1a(0xcbf29ce484222325ULL ^ _root,
                               stream.data(), stream.size());
    hash = fnv1a(hash, &index, sizeof(index));
    return splitmix64(hash);
}

} // namespace stats::support
