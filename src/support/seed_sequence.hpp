/**
 * @file
 * Centralized seed derivation.
 *
 * Historically every layer seeded its PRVGs ad hoc (workload seeds,
 * run seeds, autotuner seeds, test constants). A SeedSequence derives
 * all of them from one root seed by *hashing*, not by drawing from a
 * shared generator: the seed of a stream depends only on
 * (root, stream name, index), never on how many seeds were derived
 * before it or on which thread asked first. That order-independence
 * is what makes recorded runs faithfully replayable
 * (docs/REPLAY.md §2).
 */

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace stats::support {

/** Derives named, order-independent child seeds from one root seed. */
class SeedSequence
{
  public:
    explicit SeedSequence(std::uint64_t root) : _root(root) {}

    std::uint64_t root() const { return _root; }

    /** Seed of the named stream (pure function of root + name). */
    std::uint64_t derive(std::string_view stream) const;

    /** Seed of the `index`-th member of a named stream family. */
    std::uint64_t derive(std::string_view stream,
                         std::uint64_t index) const;

    /**
     * A child sequence rooted at the named stream's seed, for layers
     * that hand sub-seeds onward (e.g. per-benchmark namespaces).
     */
    SeedSequence child(std::string_view stream) const
    {
        return SeedSequence(derive(stream));
    }

  private:
    std::uint64_t _root;
};

} // namespace stats::support
