/**
 * @file
 * Pseudo random value generators (PRVGs).
 *
 * The paper's benchmarks are nondeterministic because their PRVGs are
 * seeded randomly (paper section 4.2, "Nondeterminism"). This module
 * provides a fast, high-quality generator (xoshiro256**) with both
 * explicit seeding (for reproducible tests) and entropy-based seeding
 * (for the nondeterministic production behaviour STATS exploits).
 */

#pragma once

#include <array>
#include <cstdint>

namespace stats::support {

/** splitmix64 step, used to expand a single seed into a full state. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * xoshiro256** generator.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can be used
 * with <random> distributions as well as with the lightweight helpers
 * below (which are faster and fully portable across libstdc++
 * versions).
 */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    result_type operator()();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t nextBelow(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached second value). */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Re-seed in place. */
    void seed(std::uint64_t seed);

  private:
    std::array<std::uint64_t, 4> _s;
    double _cachedGaussian;
    bool _hasCachedGaussian;
};

/**
 * A process-wide entropy source for nondeterministic seeding.
 *
 * Mixes std::random_device output, a monotonic counter, and the
 * current time, so every call yields a distinct, unpredictable seed.
 * This mirrors restoring "PRVGs with random seeds as it is done in a
 * real scenario" (paper section 4.2).
 */
std::uint64_t entropySeed();

/**
 * Global switch that makes entropySeed() deterministic.
 *
 * Tests that need reproducible "nondeterminism" install a fixed seed
 * sequence; production/bench code leaves it disabled. Scopes nest:
 * the destructor restores the enclosing scope's base and counter, so
 * a per-run pin (RunRequest::runSeed) composes with a process-wide
 * pin installed by record mode (docs/REPLAY.md).
 */
class ScopedDeterministicSeeds
{
  public:
    explicit ScopedDeterministicSeeds(std::uint64_t base);
    ~ScopedDeterministicSeeds();

    ScopedDeterministicSeeds(const ScopedDeterministicSeeds &) = delete;
    ScopedDeterministicSeeds &
    operator=(const ScopedDeterministicSeeds &) = delete;

  private:
    std::uint64_t _savedBase;
    std::uint64_t _savedCounter;
    bool _savedEnabled;
};

} // namespace stats::support
