/**
 * @file
 * Small string helpers shared by the front-end compiler and the IR
 * parser.
 */

#pragma once

#include <string>
#include <vector>

namespace stats::support {

/** Split on a single character; keeps empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Split on any whitespace; drops empty fields. */
std::vector<std::string> splitWhitespace(const std::string &s);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

bool startsWith(const std::string &s, const std::string &prefix);
bool endsWith(const std::string &s, const std::string &suffix);

/** Join with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Count newline-terminated lines (non-empty trailing line counts). */
std::size_t countLines(const std::string &text);

} // namespace stats::support
