#include "support/string_utils.hpp"

#include <cctype>
#include <sstream>

namespace stats::support {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string current;
    for (char c : s) {
        if (c == sep) {
            out.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    out.push_back(current);
    return out;
}

std::vector<std::string>
splitWhitespace(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream in(s);
    std::string word;
    while (in >> word)
        out.push_back(word);
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::size_t
countLines(const std::string &text)
{
    if (text.empty())
        return 0;
    std::size_t lines = 0;
    for (char c : text) {
        if (c == '\n')
            ++lines;
    }
    if (text.back() != '\n')
        ++lines;
    return lines;
}

} // namespace stats::support
