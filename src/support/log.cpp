#include "support/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace stats::support {

namespace {

std::atomic<LogLevel> currentLevel{LogLevel::Warn};
std::mutex logMutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    currentLevel.store(level);
}

LogLevel
logLevel()
{
    return currentLevel.load();
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (static_cast<int>(level) < static_cast<int>(currentLevel.load()))
        return;
    std::lock_guard<std::mutex> lock(logMutex);
    std::cerr << "[stats:" << levelName(level) << "] " << message << "\n";
}

void
fatalExit(const std::string &message)
{
    logMessage(LogLevel::Error, "fatal: " + message);
    std::exit(1);
}

void
panicAbort(const std::string &message)
{
    logMessage(LogLevel::Error, "panic: " + message);
    std::abort();
}

} // namespace stats::support
