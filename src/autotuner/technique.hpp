/**
 * @file
 * Search techniques for the autotuner.
 *
 * The paper's autotuner is built on OpenTuner (section 3.5), which
 * ensembles several search techniques under a multi-armed bandit.
 * This module provides the same architecture: a `SearchTechnique`
 * interface with random search, greedy mutation, pattern search, and
 * differential evolution, orchestrated by the AUC bandit in
 * bandit.hpp. Every tradeoff is an enumerable integer parameter
 * (OpenTuner's "IntegerParamsTuner" extension in the paper).
 */

#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "tradeoff/state_space.hpp"

namespace stats::autotuner {

/** One evaluated point. Lower objective is better. */
struct EvalRecord
{
    tradeoff::Configuration config;
    double objective = 0.0;
};

/** Read-only view of the search state given to techniques. */
class TuningContext
{
  public:
    TuningContext(const tradeoff::StateSpace &space,
                  support::Xoshiro256 &rng,
                  const std::vector<EvalRecord> &history,
                  const EvalRecord *best)
        : space(space), rng(rng), history(history), best(best)
    {
    }

    const tradeoff::StateSpace &space;
    support::Xoshiro256 &rng;
    const std::vector<EvalRecord> &history;
    const EvalRecord *best; ///< Null until the first evaluation.
};

/** A configuration proposer with optional feedback. */
class SearchTechnique
{
  public:
    virtual ~SearchTechnique() = default;

    virtual std::string name() const = 0;

    /** Propose the next configuration to evaluate. */
    virtual tradeoff::Configuration propose(TuningContext &context) = 0;

    /** Learn from the evaluation of a proposed configuration. */
    virtual void
    feedback(const tradeoff::Configuration &config, double objective,
             bool new_best)
    {
        (void)config;
        (void)objective;
        (void)new_best;
    }
};

/** Uniform random sampling of the space. */
class RandomSearch : public SearchTechnique
{
  public:
    std::string name() const override { return "random"; }
    tradeoff::Configuration propose(TuningContext &context) override;
};

/** Mutate a few dimensions of the best known configuration. */
class GreedyMutation : public SearchTechnique
{
  public:
    std::string name() const override { return "greedy-mutation"; }
    tradeoff::Configuration propose(TuningContext &context) override;
};

/** Coordinate descent: step one dimension of the best by +-1. */
class PatternSearch : public SearchTechnique
{
  public:
    std::string name() const override { return "pattern"; }
    tradeoff::Configuration propose(TuningContext &context) override;

  private:
    std::size_t _dim = 0;
    int _direction = 1;
};

/** Classic DE/rand/1 with integer rounding and clamping. */
class DifferentialEvolution : public SearchTechnique
{
  public:
    explicit DifferentialEvolution(std::size_t population = 10,
                                   double f = 0.7,
                                   double crossover = 0.6)
        : _populationSize(population), _f(f), _crossover(crossover)
    {
    }

    std::string name() const override { return "diff-evolution"; }
    tradeoff::Configuration propose(TuningContext &context) override;
    void feedback(const tradeoff::Configuration &config, double objective,
                  bool new_best) override;

  private:
    std::size_t _populationSize;
    double _f;
    double _crossover;
    std::vector<EvalRecord> _population;
    std::size_t _target = 0;
    tradeoff::Configuration _pending;
    bool _hasPending = false;
};

/** The default ensemble, in OpenTuner's spirit. */
std::vector<std::unique_ptr<SearchTechnique>> defaultTechniques();

} // namespace stats::autotuner
