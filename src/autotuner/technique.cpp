#include "autotuner/technique.hpp"

#include <algorithm>
#include <cmath>

namespace stats::autotuner {

namespace {

std::int64_t
clampIndex(std::int64_t value, std::int64_t cardinality)
{
    return std::max<std::int64_t>(0,
                                  std::min(value, cardinality - 1));
}

} // namespace

tradeoff::Configuration
RandomSearch::propose(TuningContext &context)
{
    return context.space.randomConfiguration(context.rng);
}

tradeoff::Configuration
GreedyMutation::propose(TuningContext &context)
{
    if (!context.best)
        return context.space.randomConfiguration(context.rng);
    tradeoff::Configuration config = context.best->config;
    const std::size_t dims = context.space.dimensionCount();
    const std::size_t mutations =
        1 + static_cast<std::size_t>(context.rng.nextBelow(2));
    for (std::size_t m = 0; m < mutations; ++m) {
        const std::size_t d =
            static_cast<std::size_t>(context.rng.nextBelow(dims));
        const auto cardinality = context.space.dimension(d).cardinality;
        config[d] = static_cast<std::int64_t>(context.rng.nextBelow(
            static_cast<std::uint64_t>(cardinality)));
    }
    return config;
}

tradeoff::Configuration
PatternSearch::propose(TuningContext &context)
{
    if (!context.best)
        return context.space.randomConfiguration(context.rng);
    tradeoff::Configuration config = context.best->config;
    const std::size_t dims = context.space.dimensionCount();

    // Cycle through (dimension, direction) pairs.
    _dim = (_dim + (_direction < 0 ? 0 : 0)) % dims;
    const auto cardinality = context.space.dimension(_dim).cardinality;
    config[_dim] =
        clampIndex(config[_dim] + _direction, cardinality);

    if (_direction > 0) {
        _direction = -1;
    } else {
        _direction = 1;
        _dim = (_dim + 1) % dims;
    }
    return config;
}

tradeoff::Configuration
DifferentialEvolution::propose(TuningContext &context)
{
    const std::size_t dims = context.space.dimensionCount();

    // Fill the population with random individuals first.
    if (_population.size() < _populationSize) {
        _pending = context.space.randomConfiguration(context.rng);
        _hasPending = true;
        return _pending;
    }

    // DE/rand/1: candidate = a + F * (b - c), crossed with the target.
    const auto pick = [&] {
        return static_cast<std::size_t>(
            context.rng.nextBelow(_population.size()));
    };
    const auto &a = _population[pick()].config;
    const auto &b = _population[pick()].config;
    const auto &c = _population[pick()].config;
    const auto &target = _population[_target].config;

    tradeoff::Configuration candidate(dims);
    for (std::size_t d = 0; d < dims; ++d) {
        const double mutated =
            static_cast<double>(a[d]) +
            _f * static_cast<double>(b[d] - c[d]);
        const bool cross = context.rng.nextDouble() < _crossover;
        const auto cardinality = context.space.dimension(d).cardinality;
        candidate[d] = cross
                           ? clampIndex(static_cast<std::int64_t>(
                                            std::llround(mutated)),
                                        cardinality)
                           : target[d];
    }
    _pending = candidate;
    _hasPending = true;
    return candidate;
}

void
DifferentialEvolution::feedback(const tradeoff::Configuration &config,
                                double objective, bool /* new_best */)
{
    if (!_hasPending || config != _pending)
        return;
    _hasPending = false;

    if (_population.size() < _populationSize) {
        _population.push_back({config, objective});
        return;
    }
    if (objective <= _population[_target].objective)
        _population[_target] = {config, objective};
    _target = (_target + 1) % _population.size();
}

std::vector<std::unique_ptr<SearchTechnique>>
defaultTechniques()
{
    std::vector<std::unique_ptr<SearchTechnique>> techniques;
    techniques.push_back(std::make_unique<RandomSearch>());
    techniques.push_back(std::make_unique<GreedyMutation>());
    techniques.push_back(std::make_unique<PatternSearch>());
    techniques.push_back(std::make_unique<DifferentialEvolution>());
    return techniques;
}

} // namespace stats::autotuner
