/**
 * @file
 * Persistence of autotuner exploration results.
 *
 * "The autotuner stores the results of its exploration in the
 * description of the state space, which allows them to be reused
 * should the specific optimization objective change" (paper
 * section 3.2). This module serializes a results store to a simple
 * line-based text format and reads it back:
 *
 *   statsdb 1
 *   space <dim-name>:<cardinality> ...
 *   point <index> <index> ... = <objective>
 */

#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "tradeoff/state_space.hpp"

namespace stats::autotuner {

using ResultsStore = std::map<tradeoff::Configuration, double>;

/** Write a store (with its space's shape) to a stream. */
void writeResults(std::ostream &out, const tradeoff::StateSpace &space,
                  const ResultsStore &results);

/**
 * Read a store written by writeResults. Panics on malformed input;
 * entries that do not fit `space` (changed dimensions) are dropped,
 * so stale stores degrade gracefully.
 *
 * @return the surviving entries.
 */
ResultsStore readResults(std::istream &in,
                         const tradeoff::StateSpace &space);

} // namespace stats::autotuner
