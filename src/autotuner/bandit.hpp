/**
 * @file
 * AUC multi-armed bandit over search techniques (OpenTuner's
 * technique-selection strategy).
 *
 * Each technique accumulates a sliding window of outcomes (1 when its
 * proposal produced a new best, 0 otherwise). The bandit scores a
 * technique by the area under that window's credit curve — weighting
 * recent successes more — plus an exploration bonus, and picks the
 * highest-scoring technique for each proposal.
 */

#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace stats::autotuner {

/** AUC bandit over a fixed set of arms. */
class AucBandit
{
  public:
    /**
     * @param arms        number of techniques
     * @param window      sliding-window length
     * @param exploration exploration coefficient (UCB-style)
     */
    explicit AucBandit(std::size_t arms, std::size_t window = 50,
                       double exploration = 0.25);

    /** Choose the arm to play next. */
    std::size_t select();

    /** Report the outcome of the last play of `arm`. */
    void reward(std::size_t arm, bool new_best);

    /** Current AUC credit of an arm (for tests/inspection). */
    double credit(std::size_t arm) const;

  private:
    struct Arm
    {
        std::deque<bool> outcomes;
        std::size_t uses = 0;
    };

    std::vector<Arm> _arms;
    std::size_t _window;
    double _exploration;
    std::size_t _totalUses = 0;
};

} // namespace stats::autotuner
