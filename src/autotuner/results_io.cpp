#include "autotuner/results_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/log.hpp"
#include "support/string_utils.hpp"

namespace stats::autotuner {

void
writeResults(std::ostream &out, const tradeoff::StateSpace &space,
             const ResultsStore &results)
{
    out << "statsdb 1\n";
    out << "space";
    for (std::size_t i = 0; i < space.dimensionCount(); ++i) {
        out << " " << space.dimension(i).name << ":"
            << space.dimension(i).cardinality;
    }
    out << "\n";
    out.precision(17);
    for (const auto &[config, objective] : results) {
        out << "point";
        for (const auto index : config)
            out << " " << index;
        out << " = " << objective << "\n";
    }
}

ResultsStore
readResults(std::istream &in, const tradeoff::StateSpace &space)
{
    ResultsStore results;
    std::string line;
    bool header_seen = false;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        line = support::trim(line);
        if (line.empty())
            continue;
        if (!header_seen) {
            if (!support::startsWith(line, "statsdb "))
                support::panic("results store: missing header");
            header_seen = true;
            continue;
        }
        if (support::startsWith(line, "space"))
            continue; // Shape is informational; validity checked below.
        if (!support::startsWith(line, "point "))
            support::panic("results store: bad line ", line_no);

        const auto eq = line.find('=');
        if (eq == std::string::npos)
            support::panic("results store: no '=' on line ", line_no);
        const auto indices =
            support::splitWhitespace(line.substr(5, eq - 5));
        tradeoff::Configuration config;
        config.reserve(indices.size());
        bool ok = true;
        for (const auto &word : indices) {
            try {
                config.push_back(std::stoll(word));
            } catch (...) {
                ok = false;
            }
        }
        if (!ok)
            support::panic("results store: bad index on line ", line_no);
        const double objective =
            std::stod(support::trim(line.substr(eq + 1)));
        // Drop entries that no longer fit the (possibly changed) space.
        if (space.valid(config))
            results.emplace(std::move(config), objective);
    }
    return results;
}

} // namespace stats::autotuner
