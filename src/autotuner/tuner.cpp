#include "autotuner/tuner.hpp"

#include "observability/metrics.hpp"
#include "replay/session.hpp"
#include "support/json.hpp"
#include "support/log.hpp"

namespace stats::autotuner {

void
TuneResult::writeAuditJson(std::ostream &out,
                           const tradeoff::StateSpace &space,
                           bool pretty) const
{
    support::JsonWriter json(out, pretty);
    json.beginObject();
    json.field("evaluations", evaluations)
        .field("bestObjective", bestObjective)
        .field("best", space.describe(best));
    json.key("audit").beginArray();
    for (const auto &entry : audit) {
        json.beginObject()
            .field("config", space.describe(entry.config))
            .field("objective", entry.objective)
            .field("technique", entry.technique)
            .field("cached", entry.cached)
            .field("becameBest", entry.becameBest)
            .endObject();
    }
    json.endArray();
    json.endObject();
    out << "\n";
}

Autotuner::Autotuner(tradeoff::StateSpace space, std::uint64_t seed)
    : _space(std::move(space)), _rng(seed),
      _techniques(defaultTechniques()), _bandit(_techniques.size())
{
}

void
Autotuner::preload(
    const std::map<tradeoff::Configuration, double> &store)
{
    for (const auto &[config, objective] : store) {
        if (_space.valid(config))
            _results.emplace(config, objective);
    }
}

TuneResult
Autotuner::tune(const Objective &objective, int budget,
                const std::vector<tradeoff::Configuration> &seeds)
{
    TuneResult result;
    std::vector<EvalRecord> history;
    EvalRecord best;
    bool has_best = false;

    auto &metrics = obs::MetricsRegistry::global();
    auto &evaluations_counter = metrics.counter("autotuner.evaluations");
    auto &cache_hits_counter = metrics.counter("autotuner.cacheHits");
    auto &objective_histogram = metrics.histogram("autotuner.objective");

    const auto evaluate = [&](const tradeoff::Configuration &config,
                              std::size_t technique) {
        auto cached = _results.find(config);
        double value = 0.0;
        const bool was_cached = cached != _results.end();
        if (was_cached) {
            value = cached->second;
            cache_hits_counter.add();
        } else {
            value = objective(config);
            // Mistrain fault: perturb the measured objective before it
            // reaches the cache, the bandit, and the techniques — the
            // tuner trains on systematically wrong observations.
            if (replay::sessionEngaged()) {
                value = replay::ReplaySession::current()
                            .mistrainObjective(value);
            }
            _results.emplace(config, value);
            ++result.evaluations;
            evaluations_counter.add();
            objective_histogram.observe(value);
        }
        history.push_back({config, value});
        const bool new_best = !has_best || value < best.objective;
        if (new_best) {
            best = {config, value};
            has_best = true;
            metrics.gauge("autotuner.bestObjective").set(value);
        }
        result.trace.push_back(best.objective);
        result.audit.push_back({config, value,
                                technique < _techniques.size()
                                    ? _techniques[technique]->name()
                                    : "seed",
                                was_cached, new_best});
        if (technique < _techniques.size()) {
            _techniques[technique]->feedback(config, value, new_best);
            _bandit.reward(technique, new_best);
        }
    };

    // Always profile the default configuration first (the baseline
    // "tradeoffs at default, dependences satisfied conventionally" is
    // configuration-representable too), then any caller seeds.
    evaluate(_space.defaultConfiguration(), _techniques.size());
    for (const auto &seed : seeds) {
        if (_space.valid(seed))
            evaluate(seed, _techniques.size());
    }

    int stale_retries = 0;
    while (result.evaluations < budget &&
           static_cast<double>(_results.size()) < _space.totalPoints()) {
        const std::size_t arm = _bandit.select();
        TuningContext context(_space, _rng, history,
                              has_best ? &best : nullptr);
        tradeoff::Configuration config =
            _techniques[arm]->propose(context);
        if (!_space.valid(config))
            support::panic("technique '", _techniques[arm]->name(),
                           "' proposed an invalid configuration");
        if (_results.count(config)) {
            // Already evaluated: feed the cached outcome back to the
            // technique a few times, then inject pure exploration.
            if (++stale_retries >= 3) {
                stale_retries = 0;
                config = _space.randomConfiguration(_rng);
                if (!_results.count(config))
                    evaluate(config, _techniques.size());
                continue;
            }
            evaluate(config, arm);
            continue;
        }
        stale_retries = 0;
        evaluate(config, arm);
    }

    if (!has_best)
        support::panic("Autotuner: no evaluations performed");
    result.best = best.config;
    result.bestObjective = best.objective;
    return result;
}

} // namespace stats::autotuner
