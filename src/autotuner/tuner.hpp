/**
 * @file
 * The autotuner driver (paper section 3.5).
 *
 * Explores the state space with an ensemble of techniques under the
 * AUC bandit, caches evaluated configurations (the paper's reusable
 * "description of the state space" store), and records the
 * convergence trace used by Figure 20. The space averages ~1.3M
 * points in the paper, so exploration is budgeted, not exhaustive;
 * the paper finds 88 evaluations suffice.
 */

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "autotuner/bandit.hpp"
#include "autotuner/technique.hpp"
#include "tradeoff/state_space.hpp"

namespace stats::autotuner {

/** Outcome of a tuning session. */
struct TuneResult
{
    tradeoff::Configuration best;
    double bestObjective = 0.0;

    /** Best objective after each evaluation (Figure 20's trace). */
    std::vector<double> trace;

    /** Evaluations actually performed (cache hits excluded). */
    int evaluations = 0;

    /**
     * One audit-trail entry per evaluation, in order: which
     * configuration was proposed by which technique and what it
     * measured, so tuning decisions can be replayed after the fact
     * (the observability layer's per-configuration snapshot).
     */
    struct Evaluation
    {
        tradeoff::Configuration config;
        double objective = 0.0;
        std::string technique; ///< Proposer name, or "seed"/"explore".
        bool cached = false;   ///< Served from the results store.
        bool becameBest = false;
    };
    std::vector<Evaluation> audit;

    /** Dump the audit trail as JSON (configs via space.describe). */
    void writeAuditJson(std::ostream &out,
                        const tradeoff::StateSpace &space,
                        bool pretty = true) const;
};

/** Budgeted search over one state space. */
class Autotuner
{
  public:
    /** Objective: maps a configuration to a cost (lower is better). */
    using Objective =
        std::function<double(const tradeoff::Configuration &)>;

    /**
     * @param space the space to explore
     * @param seed  PRVG seed; the paper notes the autotuner itself
     *              "uses nondeterminism for better exploration", so
     *              different seeds may find different best points
     */
    explicit Autotuner(tradeoff::StateSpace space,
                       std::uint64_t seed = 1);

    /**
     * Evaluate up to `budget` configurations (always including the
     * default configuration first) and return the best.
     *
     * @param seeds configurations evaluated up front — e.g. the best
     *              of a previous search with a different objective
     *              (the paper's reusable state-space store,
     *              section 3.2)
     */
    TuneResult tune(const Objective &objective, int budget,
                    const std::vector<tradeoff::Configuration> &seeds =
                        {});

    /**
     * Objective values of every configuration evaluated by this
     * tuner. The cache is *per objective*: reuse one Autotuner for
     * one objective only (cross-objective reuse happens one level
     * down, in the profiler's measurement store — paper sec. 3.2).
     */
    const std::map<tradeoff::Configuration, double> &results() const
    {
        return _results;
    }

    /**
     * Merge previously-saved exploration results into the store
     * (see results_io.hpp); entries must fit this tuner's space.
     */
    void preload(const std::map<tradeoff::Configuration, double> &store);

    const tradeoff::StateSpace &space() const { return _space; }

  private:
    tradeoff::StateSpace _space;
    support::Xoshiro256 _rng;
    std::vector<std::unique_ptr<SearchTechnique>> _techniques;
    AucBandit _bandit;
    std::map<tradeoff::Configuration, double> _results;
};

} // namespace stats::autotuner
