#include "autotuner/bandit.hpp"

#include <cmath>

#include "support/log.hpp"

namespace stats::autotuner {

AucBandit::AucBandit(std::size_t arms, std::size_t window,
                     double exploration)
    : _arms(arms), _window(window), _exploration(exploration)
{
    if (arms == 0)
        support::panic("AucBandit: no arms");
}

double
AucBandit::credit(std::size_t arm) const
{
    const auto &outcomes = _arms[arm].outcomes;
    if (outcomes.empty())
        return 0.0;
    // AUC: a success at position i (oldest = 0) contributes i+1;
    // normalize by the maximum possible area.
    double area = 0.0;
    double max_area = 0.0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        max_area += static_cast<double>(i + 1);
        if (outcomes[i])
            area += static_cast<double>(i + 1);
    }
    return area / max_area;
}

std::size_t
AucBandit::select()
{
    std::size_t best = 0;
    double best_score = -1.0;
    for (std::size_t a = 0; a < _arms.size(); ++a) {
        if (_arms[a].uses == 0)
            return a; // Play every arm once first.
        const double exploration =
            _exploration *
            std::sqrt(2.0 * std::log(static_cast<double>(_totalUses)) /
                      static_cast<double>(_arms[a].uses));
        const double score = credit(a) + exploration;
        if (score > best_score) {
            best_score = score;
            best = a;
        }
    }
    return best;
}

void
AucBandit::reward(std::size_t arm, bool new_best)
{
    Arm &a = _arms[arm];
    a.outcomes.push_back(new_best);
    if (a.outcomes.size() > _window)
        a.outcomes.pop_front();
    ++a.uses;
    ++_totalUses;
}

} // namespace stats::autotuner
