/**
 * @file
 * The STATS speculation engine: the execution model of paper
 * section 3.1.
 *
 * Inputs are grouped into blocks of `G`. Group 0 runs from the
 * initial state. Each subsequent group starts from a *speculative*
 * state produced by auxiliary code (a clone of computeOutput with its
 * own tradeoff settings) that consumes the `k` inputs preceding the
 * group, starting from the initial state. When the previous group
 * commits, its final state is compared against the speculative state
 * (`doesSpecStateMatchAny`); on a mismatch the previous group rolls
 * back `b` inputs and re-executes — its nondeterminism may produce a
 * different final state — up to `R` times, the comparison set growing
 * each time. If no match is found, all subsequent groups are squashed
 * and execution restarts sequentially from the first original state,
 * with no further speculation for the current inputs.
 *
 * The engine is written against the exec::Executor interface, so the
 * same code runs on real threads and on the simulated many-core
 * platform. All engine bookkeeping is mutated exclusively inside
 * completion callbacks, which both executors serialize.
 */

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "exec/task.hpp"
#include "observability/trace.hpp"
#include "replay/session.hpp"
#include "sdi/spec_config.hpp"
#include "support/log.hpp"

namespace stats::sdi {

/** Extra information passed to every computeOutput invocation. */
struct ComputeContext
{
    /** Threads available to the invocation's original (inner) TLP. */
    int innerThreads = 1;

    /** True when running as auxiliary code (cloned tradeoffs). */
    bool auxiliary = false;
};

/**
 * The speculation engine for one state dependence.
 *
 * @tparam Input  per-invocation input (paper Figure 4 `I`)
 * @tparam State  the dependence-carried state; must be copyable
 *                (the paper requires a developer-supplied
 *                `operator=` for cloning)
 * @tparam Output per-invocation output
 */
template <class Input, class State, class Output>
class SpecEngine
{
  public:
    /** Result of one computeOutput invocation. */
    struct Invocation
    {
        std::unique_ptr<Output> output;
        exec::Work cost;
    };

    using ComputeFn = std::function<Invocation(
        const Input &, State &, const ComputeContext &)>;

    /**
     * State-comparison function: returns the index of the original
     * state the speculative state is considered equivalent to, or -1
     * for no match. Adapters exist for the paper's boolean
     * `doesSpecStateMatchAny` form (see matchers.hpp).
     */
    using MatchFn = std::function<int(const State &spec,
                                      const std::vector<State> &originals)>;

    SpecEngine(exec::Executor &executor, const std::vector<Input> &inputs,
               State initial_state, ComputeFn compute, ComputeFn auxiliary,
               MatchFn match, SpecConfig config)
        : _executor(executor), _inputs(inputs),
          _initialState(std::move(initial_state)),
          _compute(std::move(compute)), _auxiliary(std::move(auxiliary)),
          _match(std::move(match)), _config(config)
    {
        if (!_compute)
            support::panic("SpecEngine: computeOutput is required");
        _config.groupSize = std::max(1, _config.groupSize);
        _config.auxWindow = std::max(0, _config.auxWindow);
        _config.maxReexecutions = std::max(0, _config.maxReexecutions);
        _config.rollbackDepth = std::max(1, _config.rollbackDepth);
        _config.sdThreads = std::max(1, _config.sdThreads);
        _config.innerThreads = std::max(1, _config.innerThreads);
    }

    /** Begin processing; returns immediately (paper Figure 9). */
    void
    start()
    {
        if (_started)
            support::panic("SpecEngine::start called twice");
        _started = true;

        buildGroups();

        // Record/replay: fingerprint the effective run configuration.
        // A replayed log only makes sense against the same setup, so a
        // config skew surfaces as an immediate divergence.
        if (replay::sessionEngaged()) {
            replay::RunConfigRecord rc;
            rc.useAuxiliary = _conventional ? 0 : 1;
            rc.groupSize = _config.groupSize;
            rc.auxWindow = _config.auxWindow;
            rc.maxReexecutions = _config.maxReexecutions;
            rc.rollbackDepth = _config.rollbackDepth;
            rc.sdThreads = _config.sdThreads;
            rc.innerThreads = _config.innerThreads;
            rc.inputCount = static_cast<std::int64_t>(_inputs.size());
            replayMark(
                replay::ReplaySession::global().engineRunBegin(rc), 0,
                0, _inputs.size());
        }

        // All engine bookkeeping must happen in serialized completion
        // callbacks; bootstrap via a zero-cost task.
        exec::Task bootstrap;
        bootstrap.width = 1;
        bootstrap.run = [] { return exec::Work{0.0, 0.0}; };
        bootstrap.onComplete = [this] { launchInitialTasks(); };
        _executor.submit(std::move(bootstrap));
    }

    /** Wait for all inputs to be correctly processed. */
    void
    join()
    {
        if (!_started)
            support::panic("SpecEngine::join before start");
        _executor.drain();
        if (replay::sessionEngaged()) {
            replay::RunStatsRecord rs;
            rs.validations = _stats.validations;
            rs.mismatches = _stats.mismatches;
            rs.reexecutions = _stats.reexecutions;
            rs.aborts = _stats.aborts;
            rs.squashedGroups = _stats.squashedGroups;
            rs.invocations = _stats.invocations;
            replayMark(
                replay::ReplaySession::global().engineRunEnd(rs), 0, 0,
                _inputs.size());
        }
        assembleOutputs();
    }

    /** Outputs in input order; valid after join(). */
    const std::vector<std::unique_ptr<Output>> &
    outputs() const
    {
        return _finalOutputs;
    }

    const EngineStats &stats() const { return _stats; }
    const SpecConfig &config() const { return _config; }

  private:
    enum class GroupStatus
    {
        Unsubmitted,
        AuxRunning,
        BodyRunning,
        BodyDone,
        Committed,
        Squashed,
    };

    struct Group
    {
        std::size_t begin = 0;
        std::size_t end = 0;
        GroupStatus status = GroupStatus::Unsubmitted;
        exec::CancelToken cancel;

        /** Auxiliary result; start state of this group (j > 0). */
        std::optional<State> specStart;
        bool startValidated = false;

        /** Populated by the body task. */
        std::vector<std::unique_ptr<Output>> outputs;
        std::optional<State> finalState;

        /** Rollback support. */
        std::optional<State> checkpointState;
        std::size_t checkpointPos = 0;

        /**
         * Final states this group has produced: the first execution's
         * final, then one more per re-execution. This is the
         * comparison set for the next group's speculative state.
         */
        std::vector<State> originalFinals;
        /** Tail outputs of each re-execution (indexes originals 1..). */
        std::vector<std::vector<std::unique_ptr<Output>>> reexecTails;
        int reexecsDone = 0;
    };

    /**
     * Emit one semantic instant on the frontier track, stamped with
     * the executor clock. All call sites run inside serialized
     * completion callbacks, matching the engine's locking discipline
     * (none). The event schema is docs/OBSERVABILITY.md.
     */
    void
    traceEvent(obs::EventType type, std::size_t group,
               std::size_t input_begin, std::size_t input_end,
               std::int64_t arg = 0)
    {
        if (!obs::traceActive())
            return;
        obs::Trace::global().record(
            type, static_cast<std::int32_t>(group),
            static_cast<std::int64_t>(input_begin),
            static_cast<std::int64_t>(input_end), _executor.now(),
            obs::kFrontierTrack, arg);
    }

    /**
     * Surface a replay divergence as a trace instant. The session has
     * no clock, so hooks return "this was the first divergence" and
     * the engine stamps the event with executor time (arg: the
     * diverging epoch; details via stats-replay / ReplayReport).
     */
    void
    replayMark(bool diverged, std::size_t group, std::size_t input_begin,
               std::size_t input_end)
    {
        if (!diverged)
            return;
        traceEvent(obs::EventType::ReplayDivergence, group, input_begin,
                   input_end,
                   static_cast<std::int64_t>(
                       replay::ReplaySession::global()
                           .firstDivergence()
                           .epoch));
    }

    void
    buildGroups()
    {
        const std::size_t n = _inputs.size();
        const auto g = static_cast<std::size_t>(_config.groupSize);
        const bool speculate = _config.useAuxiliary &&
                               static_cast<bool>(_auxiliary) && n > g;
        if (!speculate) {
            _conventional = true;
            return;
        }
        for (std::size_t begin = 0; begin < n; begin += g) {
            Group group;
            group.begin = begin;
            group.end = std::min(begin + g, n);
            group.cancel = exec::makeCancelToken();
            const auto b = static_cast<std::size_t>(_config.rollbackDepth);
            group.checkpointPos =
                group.end - std::min(b, group.end - group.begin);
            _groups.push_back(std::move(group));
        }
        _stats.groups = static_cast<std::int64_t>(_groups.size());
    }

    void
    launchInitialTasks()
    {
        if (_conventional) {
            submitConventional();
            return;
        }
        // Group 0's body plus the initial aux window go to the
        // executor as one batch: one enqueue/wake operation instead of
        // 1 + window separate submissions.
        std::vector<exec::Task> batch;
        batch.push_back(makeBodyTask(0));
        _groups[0].status = GroupStatus::BodyRunning;
        _nextToSubmit = 1;
        const auto window = static_cast<std::size_t>(_config.sdThreads);
        while (_nextToSubmit < _groups.size() &&
               _nextToSubmit < 1 + window) {
            batch.push_back(makeAuxTask(_nextToSubmit));
            ++_nextToSubmit;
        }
        _executor.submitBatch(std::move(batch));
    }

    /** Process [begin, end) in `state`, accumulating outputs and cost. */
    exec::Work
    runRange(std::size_t begin, std::size_t end, State &state,
             std::vector<std::unique_ptr<Output>> &outputs,
             const ComputeContext &context,
             std::optional<State> *checkpoint = nullptr,
             std::size_t checkpoint_pos = 0)
    {
        double units = 0.0;
        double mem_weighted = 0.0;
        for (std::size_t pos = begin; pos < end; ++pos) {
            if (checkpoint && pos == checkpoint_pos) {
                *checkpoint = state; // Clone for rollback.
                units += _config.stateCloneCost;
            }
            // Auxiliary tasks run the auxiliary clone (the tradeoff-
            // truncated approximation), not the precise body.
            Invocation inv = context.auxiliary && _auxiliary
                                 ? _auxiliary(_inputs[pos], state, context)
                                 : _compute(_inputs[pos], state, context);
            units += inv.cost.units;
            mem_weighted += inv.cost.units * inv.cost.memBound;
            outputs.push_back(std::move(inv.output));
        }
        const double mem_bound = units > 0.0 ? mem_weighted / units : 0.0;
        return exec::Work{units, mem_bound};
    }

    void
    submitConventional()
    {
        auto outputs =
            std::make_shared<std::vector<std::unique_ptr<Output>>>();
        exec::Task task;
        task.width = _config.innerThreads;
        auto work_done = std::make_shared<double>(0.0);
        task.run = [this, outputs, work_done] {
            State state = _initialState;
            ComputeContext context{_config.innerThreads, false};
            exec::Work work = runRange(0, _inputs.size(), state, *outputs,
                                       context);
            work.units += _config.stateCloneCost;
            *work_done = work.units;
            return work;
        };
        task.onComplete = [this, outputs, work_done] {
            _stats.bodyWorkSeconds += *work_done;
            _conventionalOutputs = std::move(*outputs);
            _stats.invocations +=
                static_cast<std::int64_t>(_inputs.size());
        };
        _executor.submit(std::move(task));
    }

    void
    submitAux(std::size_t j)
    {
        _executor.submit(makeAuxTask(j));
    }

    /** Build group j's auxiliary task (marks the group AuxRunning). */
    exec::Task
    makeAuxTask(std::size_t j)
    {
        Group &group = _groups[j];
        group.status = GroupStatus::AuxRunning;
        ++_stats.auxTasks;

        const std::size_t begin_input = group.begin;
        const auto k = static_cast<std::size_t>(_config.auxWindow);
        const std::size_t window_begin =
            begin_input - std::min(k, begin_input);

        auto result = std::make_shared<std::optional<State>>();
        auto work_done = std::make_shared<double>(0.0);
        exec::Task task;
        task.width = 1;
        task.cancel = group.cancel;
        task.tag = {obs::TaskKind::Aux, static_cast<std::int32_t>(j),
                    static_cast<std::int64_t>(window_begin),
                    static_cast<std::int64_t>(begin_input), 0};
        task.run = [this, j, result, work_done, begin_input,
                    window_begin] {
            // Auxiliary code: from the initial state, consume the k
            // inputs preceding the group (paper section 3.1).
            State state = _initialState;
            std::vector<std::unique_ptr<Output>> scratch;
            ComputeContext context{1, true};
            exec::Work work = runRange(window_begin, begin_input, state,
                                       scratch, context);
            work.units += _config.stateCloneCost;
            *work_done = work.units;
            *result = std::move(state);
            return work;
        };
        task.onComplete = [this, j, result, work_done] {
            Group &g = _groups[j];
            if (g.status == GroupStatus::Squashed)
                return;
            if (!result->has_value())
                return; // Cancelled before dispatch.
            ++_stats.stateClones;
            _stats.auxWorkSeconds += *work_done;
            g.specStart = std::move(**result);
            // CorruptState fault: hand the group a stale clone of the
            // initial state in place of the aux result, as if the
            // auxiliary code had learned nothing from its window.
            if (replay::sessionEngaged() &&
                replay::ReplaySession::global().corruptSpecState(
                    static_cast<std::int32_t>(j))) {
                g.specStart = _initialState;
                traceEvent(obs::EventType::FaultInjected, j, g.begin,
                           g.end,
                           static_cast<std::int64_t>(
                               replay::FaultKind::CorruptState));
            }
            g.status = GroupStatus::BodyRunning;
            submitBody(j);
            // A validation may have been waiting for this aux result.
            if (_pendingValidation == static_cast<std::ptrdiff_t>(j))
                validate(j);
        };
        return task;
    }

    void
    submitBody(std::size_t j)
    {
        _executor.submit(makeBodyTask(j));
    }

    /** Build group j's body task (does not change the group status). */
    exec::Task
    makeBodyTask(std::size_t j)
    {
        Group &group = _groups[j];
        auto outputs =
            std::make_shared<std::vector<std::unique_ptr<Output>>>();
        auto final_state = std::make_shared<std::optional<State>>();
        auto checkpoint = std::make_shared<std::optional<State>>();
        auto work_done = std::make_shared<double>(0.0);

        exec::Task task;
        task.width = _config.innerThreads;
        task.cancel = group.cancel;
        task.tag = {obs::TaskKind::Body, static_cast<std::int32_t>(j),
                    static_cast<std::int64_t>(group.begin),
                    static_cast<std::int64_t>(group.end), 0};
        task.run = [this, j, outputs, final_state, checkpoint,
                    work_done] {
            Group &g = _groups[j];
            State state = j == 0 ? _initialState : *g.specStart;
            ComputeContext context{_config.innerThreads, false};
            exec::Work work =
                runRange(g.begin, g.end, state, *outputs, context,
                         checkpoint.get(), g.checkpointPos);
            work.units += _config.stateCloneCost;
            *work_done = work.units;
            *final_state = std::move(state);
            return work;
        };
        task.onComplete = [this, j, outputs, final_state, checkpoint,
                           work_done] {
            Group &g = _groups[j];
            if (g.status == GroupStatus::Squashed)
                return;
            if (!final_state->has_value())
                return; // Cancelled before dispatch.
            ++_stats.stateClones;
            _stats.bodyWorkSeconds += *work_done;
            g.outputs = std::move(*outputs);
            g.finalState = std::move(*final_state);
            g.checkpointState = std::move(*checkpoint);
            g.status = GroupStatus::BodyDone;
            _stats.invocations +=
                static_cast<std::int64_t>(g.end - g.begin);
            if (j == _frontier && (j == 0 || g.startValidated))
                commitFrom(j);
        };
        return task;
    }

    /** Commit group j and cascade through already-finished groups. */
    void
    commitFrom(std::size_t j)
    {
        while (j < _groups.size()) {
            Group &group = _groups[j];
            if (group.status != GroupStatus::BodyDone ||
                (j != 0 && !group.startValidated)) {
                break;
            }
            group.status = GroupStatus::Committed;
            group.originalFinals.push_back(*group.finalState);
            traceEvent(obs::EventType::Commit, j, group.begin,
                       group.end);
            if (replay::sessionEngaged()) {
                replayMark(replay::ReplaySession::global().commit(
                               static_cast<std::int32_t>(j)),
                           j, group.begin, group.end);
            }
            _frontier = j + 1;
            traceEvent(obs::EventType::FrontierAdvance, j, group.begin,
                       group.end,
                       static_cast<std::int64_t>(_frontier));
            submitNextWindowGroup();
            if (_frontier >= _groups.size())
                return; // All inputs processed speculatively.
            validate(_frontier);
            // validate() may have cascaded into nested commits (when
            // the frontier group was already BodyDone); re-read the
            // frontier and only continue if there is fresh work.
            if (_aborted || _frontier >= _groups.size())
                return;
            Group &next = _groups[_frontier];
            if (!next.startValidated ||
                next.status != GroupStatus::BodyDone) {
                return; // Pending aux/body/mismatch, or already done.
            }
            j = _frontier;
        }
    }

    void
    submitNextWindowGroup()
    {
        if (_nextToSubmit < _groups.size() && !_aborted) {
            submitAux(_nextToSubmit);
            ++_nextToSubmit;
        }
    }

    /**
     * Check group j's speculative start against the committed
     * predecessor's set of original final states.
     */
    void
    validate(std::size_t j)
    {
        Group &group = _groups[j];
        Group &producer = _groups[j - 1];
        if (group.startValidated || _aborted)
            return;
        if (!group.specStart.has_value()) {
            _pendingValidation = static_cast<std::ptrdiff_t>(j);
            return; // Aux still running; retried on its completion.
        }
        _pendingValidation = -1;

        int matched =
            _match ? _match(*group.specStart, producer.originalFinals)
                   : 0; // No comparison fn: valid by construction.
        // Record/replay: the verdict is the engine's central
        // nondeterministic choice point. The session may override it —
        // with a fault-forced mismatch, or with the logged verdict
        // during replay — and the overridden value is what the rest of
        // the engine (and the ValidateMatch/Mismatch events) sees.
        if (replay::sessionEngaged()) {
            auto &session = replay::ReplaySession::global();
            const replay::VerdictOutcome outcome = session.matchVerdict(
                static_cast<std::int32_t>(j), matched);
            if (outcome.faultInjected) {
                traceEvent(obs::EventType::FaultInjected, j,
                           group.begin, group.end, outcome.faultKind);
            }
            replayMark(outcome.diverged, j, group.begin, group.end);
            matched = outcome.verdict;
        }
        if (matched >= 0) {
            traceEvent(obs::EventType::ValidateMatch, j, group.begin,
                       group.end, matched);
            acceptSpeculation(j, static_cast<std::size_t>(matched));
            return;
        }

        ++_stats.mismatches;
        traceEvent(obs::EventType::ValidateMismatch, j, group.begin,
                   group.end, producer.reexecsDone);
        if (producer.reexecsDone < _config.maxReexecutions) {
            submitReexecution(j - 1);
        } else {
            abortSpeculation(j);
        }
    }

    void
    acceptSpeculation(std::size_t j, std::size_t matched_index)
    {
        Group &producer = _groups[j - 1];
        // If a re-execution's final state matched, that re-execution's
        // tail outputs are the committed ones for the producer.
        if (matched_index > 0) {
            auto &tail = producer.reexecTails[matched_index - 1];
            const std::size_t tail_begin =
                producer.checkpointPos - producer.begin;
            producer.outputs.resize(tail_begin);
            for (auto &out : tail)
                producer.outputs.push_back(std::move(out));
        }
        Group &group = _groups[j];
        group.startValidated = true;
        ++_stats.validations;
        if (group.status == GroupStatus::BodyDone)
            commitFrom(j);
    }

    /** Re-execute the last b inputs of committed group `p`. */
    void
    submitReexecution(std::size_t p)
    {
        Group &producer = _groups[p];
        ++producer.reexecsDone;
        ++_stats.reexecutions;
        // The rollback decision: the producer goes back b inputs (to
        // its checkpoint) before re-executing.
        traceEvent(obs::EventType::Rollback, p, producer.checkpointPos,
                   producer.end, producer.reexecsDone);
        if (replay::sessionEngaged()) {
            replayMark(replay::ReplaySession::global().reexecution(
                           static_cast<std::int32_t>(p),
                           producer.reexecsDone),
                       p, producer.checkpointPos, producer.end);
        }

        auto outputs =
            std::make_shared<std::vector<std::unique_ptr<Output>>>();
        auto final_state = std::make_shared<std::optional<State>>();
        auto work_done = std::make_shared<double>(0.0);
        exec::Task task;
        task.width = _config.innerThreads;
        task.tag = {obs::TaskKind::ReExec,
                    static_cast<std::int32_t>(p),
                    static_cast<std::int64_t>(producer.checkpointPos),
                    static_cast<std::int64_t>(producer.end),
                    producer.reexecsDone};
        task.run = [this, p, outputs, final_state, work_done] {
            Group &g = _groups[p];
            // Roll back to the checkpoint; nondeterminism may yield a
            // different final state this time.
            State state = g.checkpointPos == g.begin && p == 0
                              ? _initialState
                              : (g.checkpointPos == g.begin
                                     ? *g.specStart
                                     : *g.checkpointState);
            ComputeContext context{_config.innerThreads, false};
            exec::Work work = runRange(g.checkpointPos, g.end, state,
                                       *outputs, context);
            work.units += _config.stateCloneCost;
            *work_done = work.units;
            *final_state = std::move(state);
            return work;
        };
        task.onComplete = [this, p, outputs, final_state, work_done] {
            Group &g = _groups[p];
            ++_stats.stateClones;
            _stats.bodyWorkSeconds += *work_done;
            _stats.invocations +=
                static_cast<std::int64_t>(g.end - g.checkpointPos);
            g.originalFinals.push_back(std::move(**final_state));
            g.reexecTails.push_back(std::move(*outputs));
            validate(p + 1);
        };
        _executor.submit(std::move(task));
    }

    /** Squash groups >= j and restart sequentially (paper sec. 3.1). */
    void
    abortSpeculation(std::size_t j)
    {
        _aborted = true;
        _abortGroup = j;
        ++_stats.aborts;
        traceEvent(obs::EventType::Abort, j, _groups[j].begin,
                   _inputs.size(), static_cast<std::int64_t>(j));
        if (replay::sessionEngaged()) {
            replayMark(replay::ReplaySession::global().abortSpeculation(
                           static_cast<std::int32_t>(j)),
                       j, _groups[j].begin, _inputs.size());
        }
        for (std::size_t g = j; g < _groups.size(); ++g) {
            if (_groups[g].status != GroupStatus::Committed) {
                _groups[g].status = GroupStatus::Squashed;
                if (_groups[g].cancel)
                    _groups[g].cancel->store(true);
                ++_stats.squashedGroups;
                traceEvent(obs::EventType::Squash, g, _groups[g].begin,
                           _groups[g].end,
                           static_cast<std::int64_t>(j));
                if (replay::sessionEngaged()) {
                    replayMark(
                        replay::ReplaySession::global().squash(
                            static_cast<std::int32_t>(g),
                            static_cast<std::int32_t>(j)),
                        g, _groups[g].begin, _groups[g].end);
                }
            }
        }

        // Restart from the *first* original state of the previous
        // group; no further speculation for the current inputs.
        const std::size_t restart_begin = _groups[j].begin;
        const std::size_t n = _inputs.size();
        _stats.sequentialInputs +=
            static_cast<std::int64_t>(n - restart_begin);

        auto outputs =
            std::make_shared<std::vector<std::unique_ptr<Output>>>();
        exec::Task task;
        task.width = _config.innerThreads;
        task.tag = {obs::TaskKind::Recovery,
                    static_cast<std::int32_t>(j),
                    static_cast<std::int64_t>(restart_begin),
                    static_cast<std::int64_t>(n), 0};
        auto work_done = std::make_shared<double>(0.0);
        task.run = [this, j, restart_begin, n, outputs, work_done] {
            State state = _groups[j - 1].originalFinals.front();
            ComputeContext context{_config.innerThreads, false};
            exec::Work work =
                runRange(restart_begin, n, state, *outputs, context);
            work.units += _config.stateCloneCost;
            *work_done = work.units;
            return work;
        };
        task.onComplete = [this, outputs, work_done] {
            ++_stats.stateClones;
            _stats.bodyWorkSeconds += *work_done;
            _recoveryOutputs = std::move(*outputs);
            _stats.invocations +=
                static_cast<std::int64_t>(_recoveryOutputs.size());
        };
        _executor.submit(std::move(task));
    }

    void
    assembleOutputs()
    {
        _finalOutputs.clear();
        if (_conventional) {
            _finalOutputs = std::move(_conventionalOutputs);
            return;
        }
        for (auto &group : _groups) {
            if (group.status != GroupStatus::Committed)
                break;
            for (auto &out : group.outputs)
                _finalOutputs.push_back(std::move(out));
        }
        for (auto &out : _recoveryOutputs)
            _finalOutputs.push_back(std::move(out));
        if (_finalOutputs.size() != _inputs.size()) {
            support::panic("SpecEngine produced ", _finalOutputs.size(),
                           " outputs for ", _inputs.size(), " inputs");
        }
    }

    exec::Executor &_executor;
    const std::vector<Input> &_inputs;
    State _initialState;
    ComputeFn _compute;
    ComputeFn _auxiliary;
    MatchFn _match;
    SpecConfig _config;

    std::vector<Group> _groups;
    std::size_t _frontier = 0;
    std::size_t _nextToSubmit = 0;
    std::ptrdiff_t _pendingValidation = -1;
    bool _aborted = false;
    std::size_t _abortGroup = 0;
    bool _started = false;
    bool _conventional = false;

    std::vector<std::unique_ptr<Output>> _conventionalOutputs;
    std::vector<std::unique_ptr<Output>> _recoveryOutputs;
    std::vector<std::unique_ptr<Output>> _finalOutputs;
    EngineStats _stats;
};

} // namespace stats::sdi
