/**
 * @file
 * The STATS speculation engine: the execution model of paper
 * section 3.1.
 *
 * Inputs are grouped into blocks of `G`. Group 0 runs from the
 * initial state. Each subsequent group starts from a *speculative*
 * state produced by auxiliary code (a clone of computeOutput with its
 * own tradeoff settings) that consumes the `k` inputs preceding the
 * group, starting from the initial state. When the previous group
 * commits, its final state is compared against the speculative state
 * (`doesSpecStateMatchAny`); on a mismatch the previous group rolls
 * back `b` inputs and re-executes — its nondeterminism may produce a
 * different final state — up to `R` times, the comparison set growing
 * each time. If no match is found, all subsequent groups are squashed
 * and execution restarts sequentially from the first original state,
 * with no further speculation for the current inputs.
 *
 * The engine is written against the exec::Executor interface, so the
 * same code runs on real threads and on the simulated many-core
 * platform. All engine bookkeeping is mutated exclusively inside
 * completion callbacks, which both executors serialize.
 *
 * Hot-path allocation discipline: every in-flight task owns exactly
 * one record in a per-engine TaskArena (outputs, final state,
 * checkpoint, and work counter in one bump-pointer allocation) instead
 * of the former four shared_ptr bundles. Task closures capture only
 * {engine, group index, record pointer} and therefore fit the
 * executor's inline closure storage — a window task submission
 * performs zero heap allocations in steady state. Records are created
 * and destroyed only inside the serialized completion callbacks, which
 * is the arena's external-synchronization contract; the arena's epoch
 * is drained at join(), after the executor's drain() quiescent point
 * (docs/INTERNALS.md §4).
 */

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "exec/task.hpp"
#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "replay/session.hpp"
#include "sdi/spec_config.hpp"
#include "support/log.hpp"
#include "threading/arena.hpp"

namespace stats::sdi {

/** Extra information passed to every computeOutput invocation. */
struct ComputeContext
{
    /** Threads available to the invocation's original (inner) TLP. */
    int innerThreads = 1;

    /** True when running as auxiliary code (cloned tradeoffs). */
    bool auxiliary = false;
};

/**
 * The speculation engine for one state dependence.
 *
 * @tparam Input  per-invocation input (paper Figure 4 `I`)
 * @tparam State  the dependence-carried state; must be copyable
 *                (the paper requires a developer-supplied
 *                `operator=` for cloning)
 * @tparam Output per-invocation output
 */
template <class Input, class State, class Output>
class SpecEngine
{
  public:
    /** Result of one computeOutput invocation. */
    struct Invocation
    {
        std::unique_ptr<Output> output;
        exec::Work cost;
    };

    using ComputeFn = std::function<Invocation(
        const Input &, State &, const ComputeContext &)>;

    /**
     * State-comparison function: returns the index of the original
     * state the speculative state is considered equivalent to, or -1
     * for no match. Adapters exist for the paper's boolean
     * `doesSpecStateMatchAny` form (see matchers.hpp).
     */
    using MatchFn = std::function<int(const State &spec,
                                      const std::vector<State> &originals)>;

    /** One aux window in a batched evaluation: the auxiliary clone
     *  consumes inputs [windowBegin, windowEnd) from the initial
     *  state; the resulting state seeds the group starting at
     *  windowEnd. */
    struct AuxBatchItem
    {
        std::size_t windowBegin = 0;
        std::size_t windowEnd = 0;
    };

    /** Result of one lane of a batched aux evaluation. */
    struct AuxBatchResult
    {
        State state;
        double workUnits = 0.0;
    };

    /**
     * Batched auxiliary evaluation: all items advance in lockstep
     * (e.g. as ExecutableModule::callBatch lanes), returning one
     * result per item, in order.
     */
    using BatchAuxFn = std::function<std::vector<AuxBatchResult>(
        const std::vector<AuxBatchItem> &)>;

    SpecEngine(exec::Executor &executor, const std::vector<Input> &inputs,
               State initial_state, ComputeFn compute, ComputeFn auxiliary,
               MatchFn match, SpecConfig config)
        : _executor(executor), _inputs(inputs),
          _initialState(std::move(initial_state)),
          _compute(std::move(compute)), _auxiliary(std::move(auxiliary)),
          _match(std::move(match)), _config(config)
    {
        if (!_compute)
            support::panic("SpecEngine: computeOutput is required");
        _config.groupSize = std::max(1, _config.groupSize);
        _config.auxWindow = std::max(0, _config.auxWindow);
        _config.maxReexecutions = std::max(0, _config.maxReexecutions);
        _config.rollbackDepth = std::max(1, _config.rollbackDepth);
        _config.sdThreads = std::max(1, _config.sdThreads);
        _config.innerThreads = std::max(1, _config.innerThreads);
        _config.auxBatchGroups = std::max(1, _config.auxBatchGroups);
        _arena.setRefillHook([this](std::size_t bytes, bool heap) {
            if (!obs::traceActive())
                return;
            obs::Trace::global().record(
                obs::EventType::ArenaRefill, -1,
                static_cast<std::int64_t>(bytes), heap ? 1 : 0,
                _executor.now(), obs::kFrontierTrack,
                static_cast<std::int64_t>(_arena.stats().epoch));
        });
    }

    /**
     * Install a batched auxiliary function (must precede start()).
     * Used together with SpecConfig::auxBatchGroups > 1: the initial
     * aux window is then evaluated by ceil(window / auxBatchGroups)
     * lockstep tasks instead of one task per group.
     */
    void
    setBatchAuxiliary(BatchAuxFn fn)
    {
        if (_started)
            support::panic(
                "SpecEngine::setBatchAuxiliary after start");
        _batchAux = std::move(fn);
    }

    /** Begin processing; returns immediately (paper Figure 9). */
    void
    start()
    {
        if (_started)
            support::panic("SpecEngine::start called twice");
        _started = true;

        buildGroups();

        // Record/replay: fingerprint the effective run configuration.
        // A replayed log only makes sense against the same setup, so a
        // config skew surfaces as an immediate divergence.
        if (replay::sessionEngaged()) {
            replay::RunConfigRecord rc;
            rc.useAuxiliary = _conventional ? 0 : 1;
            rc.groupSize = _config.groupSize;
            rc.auxWindow = _config.auxWindow;
            rc.maxReexecutions = _config.maxReexecutions;
            rc.rollbackDepth = _config.rollbackDepth;
            rc.sdThreads = _config.sdThreads;
            rc.innerThreads = _config.innerThreads;
            rc.inputCount = static_cast<std::int64_t>(_inputs.size());
            replayMark(
                replay::ReplaySession::current().engineRunBegin(rc), 0,
                0, _inputs.size());
        }

        // All engine bookkeeping must happen in serialized completion
        // callbacks; bootstrap via a zero-cost task.
        exec::Task bootstrap;
        bootstrap.width = 1;
        bootstrap.run = [] { return exec::Work{0.0, 0.0}; };
        bootstrap.onComplete = [this] { launchInitialTasks(); };
        _executor.submit(std::move(bootstrap));
    }

    /** Wait for all inputs to be correctly processed. */
    void
    join()
    {
        if (!_started)
            support::panic("SpecEngine::join before start");
        _executor.drain();
        publishArenaMetrics();
        // Quiescent point: every completion callback ran, so every
        // task record is dead; recycle the arena blocks.
        _arena.drainEpoch();
        if (replay::sessionEngaged()) {
            replay::RunStatsRecord rs;
            rs.validations = _stats.validations;
            rs.mismatches = _stats.mismatches;
            rs.reexecutions = _stats.reexecutions;
            rs.aborts = _stats.aborts;
            rs.squashedGroups = _stats.squashedGroups;
            rs.invocations = _stats.invocations;
            replayMark(
                replay::ReplaySession::current().engineRunEnd(rs), 0, 0,
                _inputs.size());
        }
        assembleOutputs();
    }

    /** Outputs in input order; valid after join(). */
    const std::vector<std::unique_ptr<Output>> &
    outputs() const
    {
        return _finalOutputs;
    }

    const EngineStats &stats() const { return _stats; }
    const SpecConfig &config() const { return _config; }

  private:
    enum class GroupStatus
    {
        Unsubmitted,
        AuxRunning,
        BodyRunning,
        BodyDone,
        Committed,
        Squashed,
    };

    struct Group
    {
        std::size_t begin = 0;
        std::size_t end = 0;
        GroupStatus status = GroupStatus::Unsubmitted;
        exec::CancelToken cancel;

        /** Auxiliary result; start state of this group (j > 0). */
        std::optional<State> specStart;
        bool startValidated = false;

        /** Populated by the body task. */
        std::vector<std::unique_ptr<Output>> outputs;
        std::optional<State> finalState;

        /** Rollback support. */
        std::optional<State> checkpointState;
        std::size_t checkpointPos = 0;

        /**
         * Final states this group has produced: the first execution's
         * final, then one more per re-execution. This is the
         * comparison set for the next group's speculative state.
         */
        std::vector<State> originalFinals;
        /** Tail outputs of each re-execution (indexes originals 1..). */
        std::vector<std::vector<std::unique_ptr<Output>>> reexecTails;
        int reexecsDone = 0;
    };

    /**
     * Arena-backed record of one in-flight task: the outputs, final
     * state, rollback checkpoint, and work counter that used to be
     * four separate shared_ptr control blocks live in one bump-pointer
     * allocation. The task's run/onComplete closures capture only the
     * record pointer, so they fit the executor's inline storage.
     * Created and destroyed exclusively inside serialized completion
     * callbacks (the arena's external-synchronization contract);
     * every completion path — success, squash, cancellation — frees.
     */
    struct TaskRec
    {
        std::vector<std::unique_ptr<Output>> outputs;
        std::optional<State> finalState;
        std::optional<State> checkpoint;
        double workDone = 0.0;
    };

    /** Record of one batched (lockstep) auxiliary task. */
    struct BatchAuxRec
    {
        std::vector<AuxBatchResult> results;
        double workDone = 0.0;
        bool ran = false; ///< False when cancelled before dispatch.
    };

    /**
     * Emit one semantic instant on the frontier track, stamped with
     * the executor clock. All call sites run inside serialized
     * completion callbacks, matching the engine's locking discipline
     * (none). The event schema is docs/OBSERVABILITY.md.
     */
    void
    traceEvent(obs::EventType type, std::size_t group,
               std::size_t input_begin, std::size_t input_end,
               std::int64_t arg = 0)
    {
        if (!obs::traceActive())
            return;
        obs::Trace::global().record(
            type, static_cast<std::int32_t>(group),
            static_cast<std::int64_t>(input_begin),
            static_cast<std::int64_t>(input_end), _executor.now(),
            obs::kFrontierTrack, arg);
    }

    /**
     * Surface a replay divergence as a trace instant. The session has
     * no clock, so hooks return "this was the first divergence" and
     * the engine stamps the event with executor time (arg: the
     * diverging epoch; details via stats-replay / ReplayReport).
     */
    void
    replayMark(bool diverged, std::size_t group, std::size_t input_begin,
               std::size_t input_end)
    {
        if (!diverged)
            return;
        traceEvent(obs::EventType::ReplayDivergence, group, input_begin,
                   input_end,
                   static_cast<std::int64_t>(
                       replay::ReplaySession::current()
                           .firstDivergence()
                           .epoch));
    }

    void
    buildGroups()
    {
        const std::size_t n = _inputs.size();
        const auto g = static_cast<std::size_t>(_config.groupSize);
        const bool speculate = _config.useAuxiliary &&
                               static_cast<bool>(_auxiliary) && n > g;
        if (!speculate) {
            _conventional = true;
            return;
        }
        for (std::size_t begin = 0; begin < n; begin += g) {
            Group group;
            group.begin = begin;
            group.end = std::min(begin + g, n);
            group.cancel = exec::makeCancelToken();
            const auto b = static_cast<std::size_t>(_config.rollbackDepth);
            group.checkpointPos =
                group.end - std::min(b, group.end - group.begin);
            _groups.push_back(std::move(group));
        }
        _stats.groups = static_cast<std::int64_t>(_groups.size());
    }

    void
    launchInitialTasks()
    {
        if (_conventional) {
            submitConventional();
            return;
        }
        // Group 0's body plus the initial aux window go to the
        // executor as one batch: one enqueue/wake operation instead of
        // 1 + window separate submissions. With a batched auxiliary
        // function installed, consecutive windows additionally fuse
        // into lockstep tasks of up to auxBatchGroups lanes.
        std::vector<exec::Task> batch;
        batch.push_back(makeBodyTask(0));
        _groups[0].status = GroupStatus::BodyRunning;
        _nextToSubmit = 1;
        const auto window = static_cast<std::size_t>(_config.sdThreads);
        const std::size_t limit =
            std::min(_groups.size(), 1 + window);
        const auto lanes = static_cast<std::size_t>(
            _batchAux ? _config.auxBatchGroups : 1);
        while (_nextToSubmit < limit) {
            const std::size_t count =
                std::min(lanes, limit - _nextToSubmit);
            if (count <= 1)
                batch.push_back(makeAuxTask(_nextToSubmit));
            else
                batch.push_back(
                    makeBatchAuxTask(_nextToSubmit, count));
            _nextToSubmit += count;
        }
        _executor.submitBatch(std::move(batch));
    }

    /** Process [begin, end) in `state`, accumulating outputs and cost. */
    exec::Work
    runRange(std::size_t begin, std::size_t end, State &state,
             std::vector<std::unique_ptr<Output>> &outputs,
             const ComputeContext &context,
             std::optional<State> *checkpoint = nullptr,
             std::size_t checkpoint_pos = 0)
    {
        double units = 0.0;
        double mem_weighted = 0.0;
        for (std::size_t pos = begin; pos < end; ++pos) {
            if (checkpoint && pos == checkpoint_pos) {
                *checkpoint = state; // Clone for rollback.
                units += _config.stateCloneCost;
            }
            // Auxiliary tasks run the auxiliary clone (the tradeoff-
            // truncated approximation), not the precise body.
            Invocation inv = context.auxiliary && _auxiliary
                                 ? _auxiliary(_inputs[pos], state, context)
                                 : _compute(_inputs[pos], state, context);
            units += inv.cost.units;
            mem_weighted += inv.cost.units * inv.cost.memBound;
            outputs.push_back(std::move(inv.output));
        }
        const double mem_bound = units > 0.0 ? mem_weighted / units : 0.0;
        return exec::Work{units, mem_bound};
    }

    void
    submitConventional()
    {
        TaskRec *rec = _arena.create<TaskRec>();
        exec::Task task;
        task.width = _config.innerThreads;
        task.run = [this, rec] {
            State state = _initialState;
            ComputeContext context{_config.innerThreads, false};
            exec::Work work = runRange(0, _inputs.size(), state,
                                       rec->outputs, context);
            work.units += _config.stateCloneCost;
            rec->workDone = work.units;
            return work;
        };
        task.onComplete = [this, rec] {
            _stats.bodyWorkSeconds += rec->workDone;
            _conventionalOutputs = std::move(rec->outputs);
            _stats.invocations +=
                static_cast<std::int64_t>(_inputs.size());
            _arena.destroy(rec);
        };
        _executor.submit(std::move(task));
    }

    void
    submitAux(std::size_t j)
    {
        _executor.submit(makeAuxTask(j));
    }

    /** Start of group j's aux window ([windowBegin, group.begin)). */
    std::size_t
    auxWindowBegin(std::size_t j) const
    {
        const std::size_t begin_input = _groups[j].begin;
        const auto k = static_cast<std::size_t>(_config.auxWindow);
        return begin_input - std::min(k, begin_input);
    }

    /**
     * Hand group j its speculative start state (shared by the
     * per-group and batched aux completion paths). Runs inside the
     * serialized completion lane.
     */
    void
    deliverAuxResult(std::size_t j, State state)
    {
        Group &g = _groups[j];
        ++_stats.stateClones;
        g.specStart = std::move(state);
        // CorruptState fault: hand the group a stale clone of the
        // initial state in place of the aux result, as if the
        // auxiliary code had learned nothing from its window.
        if (replay::sessionEngaged() &&
            replay::ReplaySession::current().corruptSpecState(
                static_cast<std::int32_t>(j))) {
            g.specStart = _initialState;
            traceEvent(obs::EventType::FaultInjected, j, g.begin,
                       g.end,
                       static_cast<std::int64_t>(
                           replay::FaultKind::CorruptState));
        }
        g.status = GroupStatus::BodyRunning;
        submitBody(j);
        // A validation may have been waiting for this aux result.
        if (_pendingValidation == static_cast<std::ptrdiff_t>(j))
            validate(j);
    }

    /** Build group j's auxiliary task (marks the group AuxRunning). */
    exec::Task
    makeAuxTask(std::size_t j)
    {
        Group &group = _groups[j];
        group.status = GroupStatus::AuxRunning;
        ++_stats.auxTasks;

        const std::size_t begin_input = group.begin;
        const std::size_t window_begin = auxWindowBegin(j);

        TaskRec *rec = _arena.create<TaskRec>();
        exec::Task task;
        task.width = 1;
        task.cancel = group.cancel;
        task.tag = {obs::TaskKind::Aux, static_cast<std::int32_t>(j),
                    static_cast<std::int64_t>(window_begin),
                    static_cast<std::int64_t>(begin_input), 0};
        task.run = [this, j, rec] {
            // Auxiliary code: from the initial state, consume the k
            // inputs preceding the group (paper section 3.1).
            State state = _initialState;
            ComputeContext context{1, true};
            exec::Work work =
                runRange(auxWindowBegin(j), _groups[j].begin, state,
                         rec->outputs, context);
            work.units += _config.stateCloneCost;
            rec->workDone = work.units;
            rec->finalState = std::move(state);
            return work;
        };
        task.onComplete = [this, j, rec] {
            Group &g = _groups[j];
            if (g.status == GroupStatus::Squashed ||
                !rec->finalState.has_value()) {
                // Squashed, or cancelled before dispatch: the record
                // still dies here — every completion path frees.
                _arena.destroy(rec);
                return;
            }
            _stats.auxWorkSeconds += rec->workDone;
            State state = std::move(*rec->finalState);
            _arena.destroy(rec);
            deliverAuxResult(j, std::move(state));
        };
        return task;
    }

    /**
     * Build one lockstep aux task covering groups
     * [first, first + count): every window advances through the
     * batched auxiliary function as one lane set (tentpole of
     * ROADMAP item 2: same auxiliary function, many inputs, one
     * callBatch-shaped evaluation). Counts as a single aux task in
     * EngineStats, mirroring the single AuxStart/AuxEnd span it
     * emits. The task carries the *first* group's cancel token: a
     * squash cascade that cancels group `first` necessarily squashed
     * the whole suffix, so the batch is dead as a unit; a cascade
     * starting inside the batch leaves the earlier lanes live and the
     * task runs for them, skipping squashed lanes on completion.
     */
    exec::Task
    makeBatchAuxTask(std::size_t first, std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i)
            _groups[first + i].status = GroupStatus::AuxRunning;
        ++_stats.auxTasks;

        BatchAuxRec *rec = _arena.create<BatchAuxRec>();
        exec::Task task;
        task.width = 1;
        task.cancel = _groups[first].cancel;
        task.tag = {obs::TaskKind::Aux,
                    static_cast<std::int32_t>(first),
                    static_cast<std::int64_t>(auxWindowBegin(first)),
                    static_cast<std::int64_t>(
                        _groups[first + count - 1].begin),
                    static_cast<std::int64_t>(count)};
        task.run = [this, first, count, rec] {
            std::vector<AuxBatchItem> items;
            items.reserve(count);
            for (std::size_t i = 0; i < count; ++i) {
                items.push_back({auxWindowBegin(first + i),
                                 _groups[first + i].begin});
            }
            rec->results = _batchAux(items);
            if (rec->results.size() != count) {
                support::panic("SpecEngine: batched auxiliary "
                               "returned ",
                               rec->results.size(), " results for ",
                               count, " windows");
            }
            double units = 0.0;
            for (const auto &result : rec->results)
                units += result.workUnits;
            units += _config.stateCloneCost *
                     static_cast<double>(count);
            rec->workDone = units;
            rec->ran = true;
            return exec::Work{units, 0.0};
        };
        task.onComplete = [this, first, count, rec] {
            if (!rec->ran) { // Cancelled before dispatch.
                _arena.destroy(rec);
                return;
            }
            _stats.auxWorkSeconds += rec->workDone;
            for (std::size_t i = 0; i < count; ++i) {
                Group &g = _groups[first + i];
                if (g.status == GroupStatus::Squashed)
                    continue;
                deliverAuxResult(first + i,
                                 std::move(rec->results[i].state));
            }
            _arena.destroy(rec);
        };
        return task;
    }

    void
    submitBody(std::size_t j)
    {
        _executor.submit(makeBodyTask(j));
    }

    /** Build group j's body task (does not change the group status). */
    exec::Task
    makeBodyTask(std::size_t j)
    {
        Group &group = _groups[j];
        TaskRec *rec = _arena.create<TaskRec>();

        exec::Task task;
        task.width = _config.innerThreads;
        task.cancel = group.cancel;
        task.tag = {obs::TaskKind::Body, static_cast<std::int32_t>(j),
                    static_cast<std::int64_t>(group.begin),
                    static_cast<std::int64_t>(group.end), 0};
        task.run = [this, j, rec] {
            Group &g = _groups[j];
            State state = j == 0 ? _initialState : *g.specStart;
            ComputeContext context{_config.innerThreads, false};
            exec::Work work =
                runRange(g.begin, g.end, state, rec->outputs, context,
                         &rec->checkpoint, g.checkpointPos);
            work.units += _config.stateCloneCost;
            rec->workDone = work.units;
            rec->finalState = std::move(state);
            return work;
        };
        task.onComplete = [this, j, rec] {
            Group &g = _groups[j];
            if (g.status == GroupStatus::Squashed ||
                !rec->finalState.has_value()) {
                _arena.destroy(rec); // Squashed / cancelled.
                return;
            }
            ++_stats.stateClones;
            _stats.bodyWorkSeconds += rec->workDone;
            g.outputs = std::move(rec->outputs);
            g.finalState = std::move(rec->finalState);
            g.checkpointState = std::move(rec->checkpoint);
            g.status = GroupStatus::BodyDone;
            _arena.destroy(rec);
            _stats.invocations +=
                static_cast<std::int64_t>(g.end - g.begin);
            if (j == _frontier && (j == 0 || g.startValidated))
                commitFrom(j);
        };
        return task;
    }

    /** Commit group j and cascade through already-finished groups. */
    void
    commitFrom(std::size_t j)
    {
        while (j < _groups.size()) {
            Group &group = _groups[j];
            if (group.status != GroupStatus::BodyDone ||
                (j != 0 && !group.startValidated)) {
                break;
            }
            group.status = GroupStatus::Committed;
            group.originalFinals.push_back(*group.finalState);
            traceEvent(obs::EventType::Commit, j, group.begin,
                       group.end);
            if (replay::sessionEngaged()) {
                replayMark(replay::ReplaySession::current().commit(
                               static_cast<std::int32_t>(j)),
                           j, group.begin, group.end);
            }
            _frontier = j + 1;
            traceEvent(obs::EventType::FrontierAdvance, j, group.begin,
                       group.end,
                       static_cast<std::int64_t>(_frontier));
            submitNextWindowGroup();
            if (_frontier >= _groups.size())
                return; // All inputs processed speculatively.
            validate(_frontier);
            // validate() may have cascaded into nested commits (when
            // the frontier group was already BodyDone); re-read the
            // frontier and only continue if there is fresh work.
            if (_aborted || _frontier >= _groups.size())
                return;
            Group &next = _groups[_frontier];
            if (!next.startValidated ||
                next.status != GroupStatus::BodyDone) {
                return; // Pending aux/body/mismatch, or already done.
            }
            j = _frontier;
        }
    }

    void
    submitNextWindowGroup()
    {
        if (_nextToSubmit < _groups.size() && !_aborted) {
            submitAux(_nextToSubmit);
            ++_nextToSubmit;
        }
    }

    /**
     * Check group j's speculative start against the committed
     * predecessor's set of original final states.
     */
    void
    validate(std::size_t j)
    {
        Group &group = _groups[j];
        Group &producer = _groups[j - 1];
        if (group.startValidated || _aborted)
            return;
        if (!group.specStart.has_value()) {
            _pendingValidation = static_cast<std::ptrdiff_t>(j);
            return; // Aux still running; retried on its completion.
        }
        _pendingValidation = -1;

        int matched =
            _match ? _match(*group.specStart, producer.originalFinals)
                   : 0; // No comparison fn: valid by construction.
        // Record/replay: the verdict is the engine's central
        // nondeterministic choice point. The session may override it —
        // with a fault-forced mismatch, or with the logged verdict
        // during replay — and the overridden value is what the rest of
        // the engine (and the ValidateMatch/Mismatch events) sees.
        if (replay::sessionEngaged()) {
            auto &session = replay::ReplaySession::current();
            const replay::VerdictOutcome outcome = session.matchVerdict(
                static_cast<std::int32_t>(j), matched);
            if (outcome.faultInjected) {
                traceEvent(obs::EventType::FaultInjected, j,
                           group.begin, group.end, outcome.faultKind);
            }
            replayMark(outcome.diverged, j, group.begin, group.end);
            matched = outcome.verdict;
        }
        if (matched >= 0) {
            traceEvent(obs::EventType::ValidateMatch, j, group.begin,
                       group.end, matched);
            acceptSpeculation(j, static_cast<std::size_t>(matched));
            return;
        }

        ++_stats.mismatches;
        traceEvent(obs::EventType::ValidateMismatch, j, group.begin,
                   group.end, producer.reexecsDone);
        if (producer.reexecsDone < _config.maxReexecutions) {
            submitReexecution(j - 1);
        } else {
            abortSpeculation(j);
        }
    }

    void
    acceptSpeculation(std::size_t j, std::size_t matched_index)
    {
        Group &producer = _groups[j - 1];
        // If a re-execution's final state matched, that re-execution's
        // tail outputs are the committed ones for the producer.
        if (matched_index > 0) {
            auto &tail = producer.reexecTails[matched_index - 1];
            const std::size_t tail_begin =
                producer.checkpointPos - producer.begin;
            producer.outputs.resize(tail_begin);
            for (auto &out : tail)
                producer.outputs.push_back(std::move(out));
        }
        Group &group = _groups[j];
        group.startValidated = true;
        ++_stats.validations;
        if (group.status == GroupStatus::BodyDone)
            commitFrom(j);
    }

    /** Re-execute the last b inputs of committed group `p`. */
    void
    submitReexecution(std::size_t p)
    {
        Group &producer = _groups[p];
        ++producer.reexecsDone;
        ++_stats.reexecutions;
        // The rollback decision: the producer goes back b inputs (to
        // its checkpoint) before re-executing.
        traceEvent(obs::EventType::Rollback, p, producer.checkpointPos,
                   producer.end, producer.reexecsDone);
        if (replay::sessionEngaged()) {
            replayMark(replay::ReplaySession::current().reexecution(
                           static_cast<std::int32_t>(p),
                           producer.reexecsDone),
                       p, producer.checkpointPos, producer.end);
        }

        TaskRec *rec = _arena.create<TaskRec>();
        exec::Task task;
        task.width = _config.innerThreads;
        task.tag = {obs::TaskKind::ReExec,
                    static_cast<std::int32_t>(p),
                    static_cast<std::int64_t>(producer.checkpointPos),
                    static_cast<std::int64_t>(producer.end),
                    producer.reexecsDone};
        task.run = [this, p, rec] {
            Group &g = _groups[p];
            // Roll back to the checkpoint; nondeterminism may yield a
            // different final state this time.
            State state = g.checkpointPos == g.begin && p == 0
                              ? _initialState
                              : (g.checkpointPos == g.begin
                                     ? *g.specStart
                                     : *g.checkpointState);
            ComputeContext context{_config.innerThreads, false};
            exec::Work work = runRange(g.checkpointPos, g.end, state,
                                       rec->outputs, context);
            work.units += _config.stateCloneCost;
            rec->workDone = work.units;
            rec->finalState = std::move(state);
            return work;
        };
        task.onComplete = [this, p, rec] {
            Group &g = _groups[p];
            ++_stats.stateClones;
            _stats.bodyWorkSeconds += rec->workDone;
            _stats.invocations +=
                static_cast<std::int64_t>(g.end - g.checkpointPos);
            g.originalFinals.push_back(std::move(*rec->finalState));
            g.reexecTails.push_back(std::move(rec->outputs));
            _arena.destroy(rec);
            validate(p + 1);
        };
        _executor.submit(std::move(task));
    }

    /** Squash groups >= j and restart sequentially (paper sec. 3.1). */
    void
    abortSpeculation(std::size_t j)
    {
        _aborted = true;
        _abortGroup = j;
        ++_stats.aborts;
        traceEvent(obs::EventType::Abort, j, _groups[j].begin,
                   _inputs.size(), static_cast<std::int64_t>(j));
        if (replay::sessionEngaged()) {
            replayMark(replay::ReplaySession::current().abortSpeculation(
                           static_cast<std::int32_t>(j)),
                       j, _groups[j].begin, _inputs.size());
        }
        for (std::size_t g = j; g < _groups.size(); ++g) {
            if (_groups[g].status != GroupStatus::Committed) {
                _groups[g].status = GroupStatus::Squashed;
                if (_groups[g].cancel)
                    _groups[g].cancel->store(true);
                ++_stats.squashedGroups;
                traceEvent(obs::EventType::Squash, g, _groups[g].begin,
                           _groups[g].end,
                           static_cast<std::int64_t>(j));
                if (replay::sessionEngaged()) {
                    replayMark(
                        replay::ReplaySession::current().squash(
                            static_cast<std::int32_t>(g),
                            static_cast<std::int32_t>(j)),
                        g, _groups[g].begin, _groups[g].end);
                }
            }
        }

        // Restart from the *first* original state of the previous
        // group; no further speculation for the current inputs.
        const std::size_t restart_begin = _groups[j].begin;
        const std::size_t n = _inputs.size();
        _stats.sequentialInputs +=
            static_cast<std::int64_t>(n - restart_begin);

        TaskRec *rec = _arena.create<TaskRec>();
        exec::Task task;
        task.width = _config.innerThreads;
        task.tag = {obs::TaskKind::Recovery,
                    static_cast<std::int32_t>(j),
                    static_cast<std::int64_t>(restart_begin),
                    static_cast<std::int64_t>(n), 0};
        task.run = [this, j, rec] {
            State state = _groups[j - 1].originalFinals.front();
            ComputeContext context{_config.innerThreads, false};
            exec::Work work = runRange(_groups[j].begin,
                                       _inputs.size(), state,
                                       rec->outputs, context);
            work.units += _config.stateCloneCost;
            rec->workDone = work.units;
            return work;
        };
        task.onComplete = [this, rec] {
            ++_stats.stateClones;
            _stats.bodyWorkSeconds += rec->workDone;
            _recoveryOutputs = std::move(rec->outputs);
            _arena.destroy(rec);
            _stats.invocations +=
                static_cast<std::int64_t>(_recoveryOutputs.size());
        };
        _executor.submit(std::move(task));
    }

    void
    assembleOutputs()
    {
        _finalOutputs.clear();
        if (_conventional) {
            _finalOutputs = std::move(_conventionalOutputs);
            return;
        }
        for (auto &group : _groups) {
            if (group.status != GroupStatus::Committed)
                break;
            for (auto &out : group.outputs)
                _finalOutputs.push_back(std::move(out));
        }
        for (auto &out : _recoveryOutputs)
            _finalOutputs.push_back(std::move(out));
        if (_finalOutputs.size() != _inputs.size()) {
            support::panic("SpecEngine produced ", _finalOutputs.size(),
                           " outputs for ", _inputs.size(), " inputs");
        }
    }

    /**
     * Export the arena's allocation profile through the metrics
     * registry (called at join(), before the epoch drain resets
     * nothing — stats are cumulative). The headline gauge is
     * engine.arena.allocations_per_task: heap allocations charged to
     * each task record, which drops to 0 in steady state once the
     * arena's blocks are warm.
     */
    void
    publishArenaMetrics()
    {
        const threading::TaskArena::Stats arena = _arena.stats();
        auto &registry = obs::MetricsRegistry::global();
        registry.counter("engine.arena.records")
            .add(static_cast<std::int64_t>(arena.allocations));
        registry.counter("engine.arena.bytes")
            .add(static_cast<std::int64_t>(arena.bytes));
        registry.counter("engine.arena.block_allocs")
            .add(static_cast<std::int64_t>(arena.blockAllocs));
        if (arena.allocations > 0) {
            registry.gauge("engine.arena.allocations_per_task")
                .set(static_cast<double>(arena.blockAllocs) /
                     static_cast<double>(arena.allocations));
        }
        const std::int64_t committed =
            _stats.validations + (_conventional ? 1 : 0) +
            (_stats.groups > 0 ? 1 : 0); // Group 0 needs no validation.
        if (committed > 0) {
            registry.gauge("engine.arena.bytes_per_commit")
                .set(static_cast<double>(arena.bytes) /
                     static_cast<double>(committed));
        }
    }

    exec::Executor &_executor;
    const std::vector<Input> &_inputs;
    State _initialState;
    ComputeFn _compute;
    ComputeFn _auxiliary;
    MatchFn _match;
    BatchAuxFn _batchAux;
    SpecConfig _config;

    /** Backs every in-flight task record; see TaskRec. */
    threading::TaskArena _arena;

    std::vector<Group> _groups;
    std::size_t _frontier = 0;
    std::size_t _nextToSubmit = 0;
    std::ptrdiff_t _pendingValidation = -1;
    bool _aborted = false;
    std::size_t _abortGroup = 0;
    bool _started = false;
    bool _conventional = false;

    std::vector<std::unique_ptr<Output>> _conventionalOutputs;
    std::vector<std::unique_ptr<Output>> _recoveryOutputs;
    std::vector<std::unique_ptr<Output>> _finalOutputs;
    EngineStats _stats;
};

} // namespace stats::sdi
