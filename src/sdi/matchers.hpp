/**
 * @file
 * State-comparison helpers.
 *
 * The paper lets developers "decide how strict the matching between
 * speculative and original states needs to be" via
 * `doesSpecStateMatchAny()` (section 3.3). The benchmarks all use one
 * of three shapes, provided here as reusable adapters:
 *
 *  - valid-by-construction (swaptions, streamcluster,
 *    streamclassifier): any state the original program could have
 *    produced is acceptable, so no comparison is needed;
 *  - the distance-bracket rule (bodytrack, fluidanimate, facedet):
 *    the speculative state is accepted if it is at most as far from
 *    some original state as another original state is — i.e. it lies
 *    within the spread the program's own nondeterminism produces;
 *  - exact equality against a single state (used by the Fast Track
 *    baseline, which ignores nondeterminism).
 */

#pragma once

#include <functional>
#include <set>
#include <vector>

namespace stats::sdi {

/**
 * Matcher for states that are valid by construction: always accepts,
 * attributing the match to the first original state.
 */
template <class State>
std::function<int(const State &, const std::vector<State> &)>
alwaysMatch()
{
    return [](const State &, const std::vector<State> &) { return 0; };
}

/** Matcher that never accepts (forces the conventional fallback). */
template <class State>
std::function<int(const State &, const std::vector<State> &)>
neverMatch()
{
    return [](const State &, const std::vector<State> &) { return -1; };
}

/**
 * The paper's distance-bracket rule (section 4.2, bodytrack): accept
 * the speculative state S' if for some pair of original states (A, B)
 * the distance d(S', A) is no larger than d(B, A). Requires at least
 * two original states; with a single original the runtime must
 * re-execute the producer to obtain a second one — this is exactly
 * how STATS "takes advantage of the program's nondeterminism".
 *
 * @param distance developer-supplied state distance measure
 */
template <class State>
std::function<int(const State &, const std::vector<State> &)>
distanceBracketMatcher(
    std::function<double(const State &, const State &)> distance)
{
    return [distance](const State &spec,
                      const std::vector<State> &originals) -> int {
        for (std::size_t a = 0; a < originals.size(); ++a) {
            const double spec_dist = distance(spec, originals[a]);
            for (std::size_t b = 0; b < originals.size(); ++b) {
                if (b == a)
                    continue;
                if (spec_dist <= distance(originals[b], originals[a]))
                    return static_cast<int>(a);
            }
        }
        return -1;
    };
}

/**
 * Exact-equality matcher against only the *first* original state
 * (requires State::operator==). This reproduces Fast Track's check,
 * which "loses the opportunity created by the nondeterminism of the
 * original code" (paper section 4.4).
 */
template <class State>
std::function<int(const State &, const std::vector<State> &)>
exactSingleMatcher()
{
    return [](const State &spec,
              const std::vector<State> &originals) -> int {
        if (!originals.empty() && spec == originals.front())
            return 0;
        return -1;
    };
}

/**
 * Adapt a paper-style boolean `doesSpecStateMatchAny(set<State*>)`
 * member function to the engine's indexed matcher. On a positive
 * answer the newest original state is credited with the match.
 */
template <class State>
std::function<int(const State &, const std::vector<State> &)>
fromBoolMethod()
{
    return [](const State &spec,
              const std::vector<State> &originals) -> int {
        std::set<const State *> set;
        for (const State &s : originals)
            set.insert(&s);
        if (spec.doesSpecStateMatchAny(set))
            return static_cast<int>(originals.size()) - 1;
        return -1;
    };
}

} // namespace stats::sdi
