/**
 * @file
 * Domain-specific output-quality metrics (paper section 4.2,
 * "Output quality").
 *
 * Every benchmark's output variability and quality-vs-oracle are
 * measured with the metric the paper names for it:
 *   bodytrack        relative mean square error of body-part vectors
 *   fluidanimate     average Euclidean distance of particle positions
 *   streamcluster    difference of Davies-Bouldin clustering indices
 *   streamclassifier difference of B-cubed metrics
 *   swaptions        average relative difference of prices
 *   facedet          average Euclidean distance of face-box corners
 */

#pragma once

#include <cstddef>
#include <vector>

namespace stats::quality {

/**
 * Relative mean square error: sum((a-b)^2) / sum(b^2).
 * `b` is the reference (oracle).
 */
double relativeMeanSquareError(const std::vector<double> &a,
                               const std::vector<double> &b);

/**
 * Average Euclidean distance between corresponding `dim`-dimensional
 * points stored flattened in `a` and `b`.
 */
double averageEuclideanDistance(const std::vector<double> &a,
                                const std::vector<double> &b,
                                std::size_t dim);

/** Mean of |a_i - b_i| / max(|b_i|, eps) over all elements. */
double averageRelativeDifference(const std::vector<double> &a,
                                 const std::vector<double> &b,
                                 double eps = 1e-12);

/**
 * Davies-Bouldin index of a clustering: lower is better separated.
 *
 * @param points      flattened `dim`-dimensional points
 * @param dim         point dimensionality
 * @param assignment  cluster id per point (ids in [0, clusters))
 * @param clusters    number of clusters
 */
double daviesBouldinIndex(const std::vector<double> &points,
                          std::size_t dim,
                          const std::vector<int> &assignment,
                          int clusters);

/** Precision/recall/F1 triple of the B-cubed metric. */
struct BCubedScore
{
    double precision;
    double recall;
    double f1;
};

/**
 * B-cubed extrinsic clustering/classification metric against a gold
 * labeling. Labels are arbitrary integers.
 */
BCubedScore bCubed(const std::vector<int> &predicted,
                   const std::vector<int> &gold);

} // namespace stats::quality
