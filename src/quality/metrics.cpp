#include "quality/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/log.hpp"

namespace stats::quality {

double
relativeMeanSquareError(const std::vector<double> &a,
                        const std::vector<double> &b)
{
    if (a.size() != b.size())
        support::panic("relativeMeanSquareError: size mismatch ",
                       a.size(), " vs ", b.size());
    if (a.empty())
        return 0.0;
    double err = 0.0;
    double ref = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        err += d * d;
        ref += b[i] * b[i];
    }
    return ref > 0.0 ? err / ref : err;
}

double
averageEuclideanDistance(const std::vector<double> &a,
                         const std::vector<double> &b, std::size_t dim)
{
    if (a.size() != b.size() || dim == 0 || a.size() % dim != 0)
        support::panic("averageEuclideanDistance: bad shapes");
    if (a.empty())
        return 0.0;
    const std::size_t points = a.size() / dim;
    double total = 0.0;
    for (std::size_t p = 0; p < points; ++p) {
        double sq = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            const double delta = a[p * dim + d] - b[p * dim + d];
            sq += delta * delta;
        }
        total += std::sqrt(sq);
    }
    return total / static_cast<double>(points);
}

double
averageRelativeDifference(const std::vector<double> &a,
                          const std::vector<double> &b, double eps)
{
    if (a.size() != b.size())
        support::panic("averageRelativeDifference: size mismatch");
    if (a.empty())
        return 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total += std::abs(a[i] - b[i]) / std::max(std::abs(b[i]), eps);
    return total / static_cast<double>(a.size());
}

double
daviesBouldinIndex(const std::vector<double> &points, std::size_t dim,
                   const std::vector<int> &assignment, int clusters)
{
    if (dim == 0 || points.size() % dim != 0)
        support::panic("daviesBouldinIndex: bad point shape");
    const std::size_t n = points.size() / dim;
    if (assignment.size() != n)
        support::panic("daviesBouldinIndex: assignment size mismatch");
    if (clusters <= 1)
        return 0.0;

    // Centroids and per-cluster mean scatter.
    std::vector<double> centroid(static_cast<std::size_t>(clusters) * dim,
                                 0.0);
    std::vector<double> scatter(static_cast<std::size_t>(clusters), 0.0);
    std::vector<std::size_t> count(static_cast<std::size_t>(clusters), 0);
    for (std::size_t p = 0; p < n; ++p) {
        const int c = assignment[p];
        if (c < 0 || c >= clusters)
            support::panic("daviesBouldinIndex: bad cluster id ", c);
        ++count[static_cast<std::size_t>(c)];
        for (std::size_t d = 0; d < dim; ++d)
            centroid[static_cast<std::size_t>(c) * dim + d] +=
                points[p * dim + d];
    }
    for (int c = 0; c < clusters; ++c) {
        const auto k = static_cast<std::size_t>(c);
        if (count[k] == 0)
            continue;
        for (std::size_t d = 0; d < dim; ++d)
            centroid[k * dim + d] /= static_cast<double>(count[k]);
    }
    for (std::size_t p = 0; p < n; ++p) {
        const auto c = static_cast<std::size_t>(assignment[p]);
        double sq = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            const double delta = points[p * dim + d] - centroid[c * dim + d];
            sq += delta * delta;
        }
        scatter[c] += std::sqrt(sq);
    }
    for (int c = 0; c < clusters; ++c) {
        const auto k = static_cast<std::size_t>(c);
        if (count[k] > 0)
            scatter[k] /= static_cast<double>(count[k]);
    }

    // DB = mean over clusters of the worst (Si + Sj) / Mij ratio.
    double db = 0.0;
    int populated = 0;
    for (int i = 0; i < clusters; ++i) {
        const auto ki = static_cast<std::size_t>(i);
        if (count[ki] == 0)
            continue;
        ++populated;
        double worst = 0.0;
        for (int j = 0; j < clusters; ++j) {
            const auto kj = static_cast<std::size_t>(j);
            if (j == i || count[kj] == 0)
                continue;
            double sq = 0.0;
            for (std::size_t d = 0; d < dim; ++d) {
                const double delta =
                    centroid[ki * dim + d] - centroid[kj * dim + d];
                sq += delta * delta;
            }
            const double separation = std::sqrt(sq);
            if (separation > 0.0) {
                worst = std::max(worst,
                                 (scatter[ki] + scatter[kj]) / separation);
            }
        }
        db += worst;
    }
    return populated > 0 ? db / populated : 0.0;
}

BCubedScore
bCubed(const std::vector<int> &predicted, const std::vector<int> &gold)
{
    if (predicted.size() != gold.size())
        support::panic("bCubed: size mismatch");
    const std::size_t n = predicted.size();
    if (n == 0)
        return {1.0, 1.0, 1.0};

    // Cluster and class sizes.
    std::map<int, double> pred_size, gold_size;
    std::map<std::pair<int, int>, double> joint;
    for (std::size_t i = 0; i < n; ++i) {
        pred_size[predicted[i]] += 1.0;
        gold_size[gold[i]] += 1.0;
        joint[{predicted[i], gold[i]}] += 1.0;
    }

    double precision = 0.0;
    double recall = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double overlap = joint[{predicted[i], gold[i]}];
        precision += overlap / pred_size[predicted[i]];
        recall += overlap / gold_size[gold[i]];
    }
    precision /= static_cast<double>(n);
    recall /= static_cast<double>(n);
    const double f1 = precision + recall > 0.0
                          ? 2.0 * precision * recall / (precision + recall)
                          : 0.0;
    return {precision, recall, f1};
}

} // namespace stats::quality
