/**
 * @file
 * The task vocabulary shared by the real-thread executor and the
 * simulated many-core executor.
 *
 * The STATS runtime (the speculation engine of paper section 3.1) is
 * written once against this interface. On real hardware tasks are
 * timed with the wall clock; on the simulated platform each task
 * reports its cost in abstract work units (1 unit == 1 second on an
 * unloaded core) and the discrete-event simulator derives timing from
 * core occupancy, Hyper-Threading, and NUMA effects.
 */

#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "observability/trace.hpp"
#include "threading/unique_function.hpp"

namespace stats::exec {

/** Virtual cost of one task, reported by the task body itself. */
struct Work
{
    /** Abstract work units; 1 unit runs in 1 s on an unloaded core. */
    double units = 0.0;

    /**
     * Fraction of the work bound by memory bandwidth/latency, i.e.
     * subject to the cross-socket NUMA penalty (0..1).
     */
    double memBound = 0.0;
};

/** Shared flag used to cancel tasks that have not been dispatched. */
using CancelToken = std::shared_ptr<std::atomic<bool>>;

/** Create a fresh (non-cancelled) cancellation token. */
CancelToken makeCancelToken();

/**
 * One schedulable unit of computation.
 *
 * `run` performs the real computation and returns its virtual cost.
 * `onComplete` fires after the task's virtual completion time; all
 * completion callbacks of one executor are serialized, so the
 * speculation engine may mutate its bookkeeping there without locks.
 */
struct Task
{
    /** Logical cores the task occupies (gang width); >= 1. */
    int width = 1;

    /**
     * The computation; returns the virtual cost of what it did.
     *
     * Move-only (threading::UniqueFunction): a Task travels from the
     * submitter to a worker by moves alone, and a closure that fits
     * the wrapper's inline storage never touches the heap — the
     * engine's hot-path closures capture only {engine, index, record}
     * and stay inline (docs/INTERNALS.md §4).
     */
    threading::UniqueFunction<Work()> run;

    /** Completion callback (may submit more tasks). May be empty. */
    threading::UniqueFunction<void()> onComplete;

    /**
     * Optional cancellation token. A task whose token is set before
     * dispatch is skipped: `run` is not called, the task consumes no
     * virtual time, and `onComplete` still fires so the owner can
     * observe the squash.
     */
    CancelToken cancel;

    /**
     * Optional trace annotation. When the trace layer is active, the
     * executor records the matching span pair (e.g. BodyStart/BodyEnd)
     * around the task's execution — with exact dispatch/completion
     * times and the track it ran on — or a TaskCancelled instant if
     * the cancel token fired first. Untagged tasks are not traced.
     */
    obs::TaskTag tag;

    /**
     * When true (the default), `onComplete` runs inside the executor's
     * serialized commit lane — at most one such callback executes at a
     * time, so the speculation engine mutates its bookkeeping there
     * without locks. Tasks whose completion is pure bookkeeping local
     * to the callback may set this false to bypass the lane entirely
     * and complete lock-free.
     */
    bool serialCompletion = true;
};

/**
 * Executor interface: submit tasks, drive them to completion, read
 * the (virtual or wall) clock.
 */
class Executor
{
  public:
    virtual ~Executor() = default;

    /** Enqueue a task; it may be submitted from a completion callback. */
    virtual void submit(Task task) = 0;

    /**
     * Enqueue several tasks as one operation. Equivalent to submitting
     * each in order; executors that can (e.g. the thread pool's batched
     * submission) pay the enqueue/wake cost once for the whole group.
     */
    virtual void
    submitBatch(std::vector<Task> tasks)
    {
        for (auto &task : tasks)
            submit(std::move(task));
    }

    /** Run until no submitted task remains. */
    virtual void drain() = 0;

    /** Current time in seconds (virtual for the simulator). */
    virtual double now() const = 0;

    /** Number of logical hardware threads available. */
    virtual int concurrency() const = 0;
};

} // namespace stats::exec
