#include "exec/sim_executor.hpp"

namespace stats::exec {

SimExecutor::SimExecutor(sim::MachineConfig config, int threads)
    : _sim(std::make_unique<sim::Simulator>(config, threads))
{
}

void
SimExecutor::submit(Task task)
{
    _sim->submit(std::move(task));
}

void
SimExecutor::drain()
{
    _sim->run();
}

double
SimExecutor::now() const
{
    return _sim->now();
}

int
SimExecutor::concurrency() const
{
    return _sim->threads();
}

} // namespace stats::exec
