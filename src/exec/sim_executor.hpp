/**
 * @file
 * Executor backed by the discrete-event platform simulator.
 */

#pragma once

#include <memory>

#include "exec/task.hpp"
#include "sim/simulator.hpp"

namespace stats::exec {

/**
 * Runs tasks on the simulated many-core machine. Real computation
 * happens inline on the host; timing comes from the simulator.
 */
class SimExecutor : public Executor
{
  public:
    SimExecutor(sim::MachineConfig config, int threads);

    void submit(Task task) override;
    void drain() override;
    double now() const override;
    int concurrency() const override;

    const sim::Simulator &simulator() const { return *_sim; }

  private:
    std::unique_ptr<sim::Simulator> _sim;
};

} // namespace stats::exec
