/**
 * @file
 * Executor backed by real OS threads.
 *
 * Used for functional execution on the host (and for wall-clock
 * profiling when real cores are available). Task `width` is advisory
 * here: a real task's inner parallelism lives inside its own code.
 * Completion callbacks are serialized under one mutex, matching the
 * simulator's semantics, so the speculation engine runs unmodified
 * on either executor.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "exec/task.hpp"
#include "support/timer.hpp"
#include "threading/thread_pool.hpp"

namespace stats::exec {

/** Executor running tasks on a shared thread pool, timed by the wall. */
class ThreadExecutor : public Executor
{
  public:
    explicit ThreadExecutor(int threads);

    void submit(Task task) override;

    /** Blocks until every submitted task (and its spawns) completed. */
    void drain() override;

    double now() const override;
    int concurrency() const override;

  private:
    threading::ThreadPool _pool;
    support::Timer _clock;
    std::mutex _completionMutex;
    std::mutex _pendingMutex;
    std::condition_variable _pendingCv;
    std::size_t _pending = 0;
};

} // namespace stats::exec
