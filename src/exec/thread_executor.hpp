/**
 * @file
 * Executor backed by real OS threads.
 *
 * Used for functional execution on the host (and for wall-clock
 * profiling when real cores are available). Task `width` is advisory
 * here: a real task's inner parallelism lives inside its own code.
 *
 * Dispatch rides the work-stealing thread pool directly: pending
 * accounting, drain(), and the wall clock are the pool's own (a single
 * atomic counter and one steady timer), so this layer adds no locks to
 * the submit or completion fast paths. The only mutex left is the
 * commit lane: completion callbacks of tasks with
 * `serialCompletion == true` are serialized under it, matching the
 * simulator's semantics so the speculation engine runs unmodified on
 * either executor. Tasks with no callback — or with
 * `serialCompletion == false` — never touch it.
 */

#pragma once

#include <mutex>

#include "exec/task.hpp"
#include "threading/thread_pool.hpp"

namespace stats::exec {

/** Executor running tasks on a shared thread pool, timed by the wall. */
class ThreadExecutor : public Executor
{
  public:
    explicit ThreadExecutor(int threads);

    void submit(Task task) override;

    /** Enqueue a group of tasks with one pool operation. */
    void submitBatch(std::vector<Task> tasks) override;

    /** Blocks until every submitted task (and its spawns) completed. */
    void drain() override;

    double now() const override;
    int concurrency() const override;

    /** The pool's scheduler counters (steals, parks, ...). */
    threading::ThreadPool::Stats schedulerStats() const
    {
        return _pool.stats();
    }

  private:
    threading::PoolTask wrap(Task task);
    void runTask(Task &task, bool cancelled);

    threading::ThreadPool _pool;
    std::mutex _commitMutex;
};

} // namespace stats::exec
