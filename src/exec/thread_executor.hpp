/**
 * @file
 * Executor backed by real OS threads.
 *
 * Used for functional execution on the host (and for wall-clock
 * profiling when real cores are available). Task `width` is advisory
 * here: a real task's inner parallelism lives inside its own code.
 *
 * Dispatch rides the work-stealing thread pool directly: pending
 * accounting, drain(), and the wall clock are the pool's own (a single
 * atomic counter and one steady timer), so this layer adds no locks to
 * the submit or completion fast paths. Two pieces make the whole
 * submit → run → commit round trip allocation- and lock-free in
 * steady state:
 *
 *  - every submitted Task moves into a recycled `TaskRecord` (a
 *    bounded lock-free freelist), so the pool closure captures only
 *    {executor, record} — 16 bytes, inside the job wrapper's inline
 *    storage. No heap allocation per submission after warm-up.
 *  - the commit lane — the serialized region completion callbacks of
 *    tasks with `serialCompletion == true` run in — is a lock-free
 *    MPSC stack with a combining drainer instead of a mutex: a
 *    finishing worker pushes its record (one CAS) and either becomes
 *    the drainer or hands the callback to the current one and goes
 *    straight back to scheduling. Match-check → commit never blocks
 *    on a pool-wide lock (docs/INTERNALS.md §4 documents the
 *    protocol and why drain() still implies lane-empty).
 *
 * At most one completion callback executes at a time, matching the
 * simulator's semantics so the speculation engine runs unmodified on
 * either executor. Tasks with no callback — or with
 * `serialCompletion == false` — never touch the lane.
 */

#pragma once

#include <atomic>
#include <cstdint>

#include "exec/task.hpp"
#include "threading/primitives.hpp"
#include "threading/thread_pool.hpp"

namespace stats::exec {

/** Executor running tasks on a shared thread pool, timed by the wall. */
class ThreadExecutor : public Executor
{
  public:
    /** Commit-lane / task-record counters (always on, relaxed). */
    struct CommitStats
    {
        std::uint64_t laneEnqueues = 0; ///< Callbacks pushed to the lane.
        std::uint64_t laneDeferred = 0; ///< Handed to an active drainer.
        std::uint64_t recordAllocs = 0; ///< Records taken from the heap.
        std::uint64_t recordReuses = 0; ///< Records recycled (freelist).
    };

    explicit ThreadExecutor(int threads);
    ~ThreadExecutor() override;

    void submit(Task task) override;

    /** Enqueue a group of tasks with one pool operation. */
    void submitBatch(std::vector<Task> tasks) override;

    /** Blocks until every submitted task (and its spawns) completed. */
    void drain() override;

    double now() const override;
    int concurrency() const override;

    /** The pool's scheduler counters (steals, parks, ...). */
    threading::ThreadPool::Stats schedulerStats() const
    {
        return _pool.stats();
    }

    CommitStats commitStats() const;

  private:
    struct TaskRecord;

    /**
     * Record storage. Declared *before* the pool so it outlives it:
     * the pool's drain-on-shutdown may still release records into
     * the freelist while this executor is being destroyed.
     */
    struct RecordPool
    {
        explicit RecordPool(std::size_t capacity);
        ~RecordPool();
        threading::MpmcBoundedQueue<TaskRecord *> free;
    };

    threading::PoolTask wrap(Task task);
    void runRecord(TaskRecord *rec, bool cancelled);
    TaskRecord *acquireRecord();
    void releaseRecord(TaskRecord *rec);
    void commitEnqueue(TaskRecord *rec);
    bool drainLane();

    RecordPool _records;

    /** Commit lane: Treiber stack head + single-drainer flag. */
    std::atomic<TaskRecord *> _laneHead{nullptr};
    std::atomic<bool> _laneActive{false};

    std::atomic<std::uint64_t> _laneEnqueues{0};
    std::atomic<std::uint64_t> _laneDeferred{0};
    std::atomic<std::uint64_t> _recordAllocs{0};
    std::atomic<std::uint64_t> _recordReuses{0};

    threading::ThreadPool _pool; ///< Last member: destroyed first.
};

} // namespace stats::exec
