#include "exec/thread_executor.hpp"

#include <chrono>
#include <thread>

#include "observability/trace.hpp"
#include "replay/session.hpp"

namespace stats::exec {

namespace {

/** Task records kept for reuse; beyond this they return to the heap. */
constexpr std::size_t kRecordCacheCapacity = 1024;

} // namespace

/**
 * One in-flight task. The Task body lives here (not in the pool
 * closure) so the closure stays pointer-sized; `next` links the
 * record through the commit lane while its callback waits its turn.
 */
struct ThreadExecutor::TaskRecord
{
    Task task;
    std::atomic<TaskRecord *> next{nullptr};
};

ThreadExecutor::RecordPool::RecordPool(std::size_t capacity)
    : free(capacity)
{
}

ThreadExecutor::RecordPool::~RecordPool()
{
    while (auto rec = free.tryPop())
        delete *rec;
}

ThreadExecutor::ThreadExecutor(int threads)
    : _records(kRecordCacheCapacity), _pool(threads)
{
}

ThreadExecutor::~ThreadExecutor() = default;

ThreadExecutor::TaskRecord *
ThreadExecutor::acquireRecord()
{
    if (auto rec = _records.free.tryPop()) {
        _recordReuses.fetch_add(1, std::memory_order_relaxed);
        return *rec;
    }
    _recordAllocs.fetch_add(1, std::memory_order_relaxed);
    return new TaskRecord;
}

void
ThreadExecutor::releaseRecord(TaskRecord *rec)
{
    // Drop the captured state before the record becomes reusable:
    // once drain() returns, no task closure is still alive.
    rec->task = Task{};
    rec->next.store(nullptr, std::memory_order_relaxed);
    TaskRecord *pointer = rec;
    if (!_records.free.tryPushFrom(pointer))
        delete rec;
}

/**
 * Adapt an exec::Task to a pool task. The Task moves into a recycled
 * record exactly once and the pool closure captures only
 * {this, record} — 16 bytes, always inside the job wrapper's inline
 * storage, so the submit path performs no heap allocation in steady
 * state. The cancel token is shared with the pool so cancellation is
 * checked before dispatch (a cancelled task never occupies a worker
 * with real work; the pool hands us `cancelled` so onComplete still
 * fires).
 */
threading::PoolTask
ThreadExecutor::wrap(Task task)
{
    TaskRecord *rec = acquireRecord();
    rec->task = std::move(task);
    threading::PoolTask pooled;
    pooled.cancel = rec->task.cancel;
    pooled.run = [this, rec](bool cancelled) {
        runRecord(rec, cancelled);
    };
    return pooled;
}

void
ThreadExecutor::runRecord(TaskRecord *rec, bool cancelled)
{
    Task &task = rec->task;
    const bool traced =
        obs::traceActive() && task.tag.kind != obs::TaskKind::None;
    if (!cancelled) {
        // StalledWorker fault: delay the task on its worker before
        // dispatch. Timing-only — the stall is deliberately NOT part
        // of the record log, so a stalled recording replays cleanly
        // without the plan (stalls perturb interleaving, not the
        // engine's decision sequence; see docs/REPLAY.md §4).
        if (replay::sessionEngaged() &&
            task.tag.kind != obs::TaskKind::None) {
            auto &session = replay::ReplaySession::current();
            const double stall = session.taskStallSeconds(
                static_cast<int>(task.tag.kind), task.tag.group);
            if (stall > 0.0) {
                session.countExternalFault(
                    replay::FaultKind::StalledWorker);
                if (traced) {
                    obs::Trace &trace = obs::Trace::global();
                    trace.record(
                        obs::EventType::FaultInjected, task.tag.group,
                        task.tag.inputBegin, task.tag.inputEnd,
                        _pool.clockSeconds(), trace.threadTrack(),
                        static_cast<std::int64_t>(
                            replay::FaultKind::StalledWorker));
                }
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(stall));
            }
        }
        const double begin = _pool.clockSeconds();
        task.run();
        if (traced) {
            // Track = this worker thread; recorded before the
            // serialized onComplete so engine instants sequence
            // after the span that triggered them.
            obs::Trace &trace = obs::Trace::global();
            trace.recordSpan(task.tag, begin, _pool.clockSeconds(),
                             trace.threadTrack());
        }
    } else if (traced) {
        obs::Trace::global().record(
            obs::EventType::TaskCancelled, task.tag.group,
            task.tag.inputBegin, task.tag.inputEnd,
            _pool.clockSeconds(), obs::kFrontierTrack, task.tag.arg);
    }
    if (!task.onComplete) {
        releaseRecord(rec); // Pure execution: completes lock-free.
        return;
    }
    if (!task.serialCompletion) {
        task.onComplete();
        releaseRecord(rec);
        return;
    }
    commitEnqueue(rec);
}

/**
 * The commit lane: the speculation engine's commit protocol relies
 * on at-most-one serialized callback running at a time. Instead of a
 * mutex, finishing workers push their record onto a Treiber stack
 * (one CAS) and exactly one of them — the *drainer* — runs the
 * queued callbacks in arrival order. A worker that loses the drainer
 * election returns to scheduling immediately; its callback is
 * guaranteed to run because the drainer re-checks the stack after
 * releasing the active flag (all lane accesses are seq_cst, so in
 * the single total order either the drainer's re-check sees the late
 * push, or the pusher's election sees the drainer gone and wins).
 *
 * drain()/waitIdle still implies lane-empty: a drainer runs inside
 * some task's pool closure, whose pending count is not retired until
 * the closure returns — so the pool cannot report idle while any
 * callback is queued or running (docs/INTERNALS.md §4).
 */
void
ThreadExecutor::commitEnqueue(TaskRecord *rec)
{
    _laneEnqueues.fetch_add(1, std::memory_order_relaxed);
    const bool traced =
        obs::traceActive() && rec->task.tag.kind != obs::TaskKind::None;
    const obs::TaskTag tag = rec->task.tag; // rec may die in drainLane.
    TaskRecord *head = _laneHead.load(std::memory_order_relaxed);
    do {
        rec->next.store(head, std::memory_order_relaxed);
    } while (!_laneHead.compare_exchange_weak(
        head, rec, std::memory_order_seq_cst,
        std::memory_order_relaxed));
    const bool drained = drainLane();
    if (!drained)
        _laneDeferred.fetch_add(1, std::memory_order_relaxed);
    if (traced) {
        obs::Trace &trace = obs::Trace::global();
        trace.record(obs::EventType::CommitLaneEnqueue, tag.group,
                     tag.inputBegin, tag.inputEnd,
                     _pool.clockSeconds(), trace.threadTrack(),
                     drained ? 1 : 0);
    }
}

/** Try to become the lane drainer; returns true when this call ran
 * the queued callbacks (its own included). */
bool
ThreadExecutor::drainLane()
{
    bool drained = false;
    for (;;) {
        if (_laneActive.exchange(true, std::memory_order_seq_cst))
            return drained; // An active drainer owns the lane.
        drained = true;
        // Drain everything visible. The stack pops newest-first, so
        // reverse each grab to run callbacks in arrival order.
        while (TaskRecord *chain =
                   _laneHead.exchange(nullptr,
                                      std::memory_order_seq_cst)) {
            TaskRecord *ordered = nullptr;
            while (chain) {
                TaskRecord *next =
                    chain->next.load(std::memory_order_relaxed);
                chain->next.store(ordered, std::memory_order_relaxed);
                ordered = chain;
                chain = next;
            }
            while (ordered) {
                TaskRecord *next =
                    ordered->next.load(std::memory_order_relaxed);
                ordered->task.onComplete();
                releaseRecord(ordered);
                ordered = next;
            }
        }
        _laneActive.store(false, std::memory_order_seq_cst);
        // Release-recheck: a record pushed between the last grab and
        // the release above would otherwise strand until the next
        // enqueue. Seq_cst makes the race two-sided — either we see
        // it here (and re-elect ourselves), or its pusher saw the
        // lane inactive and became the drainer.
        if (_laneHead.load(std::memory_order_seq_cst) == nullptr)
            return drained;
    }
}

void
ThreadExecutor::submit(Task task)
{
    _pool.submit(wrap(std::move(task)));
}

void
ThreadExecutor::submitBatch(std::vector<Task> tasks)
{
    std::vector<threading::PoolTask> pooled;
    pooled.reserve(tasks.size());
    for (auto &task : tasks)
        pooled.push_back(wrap(std::move(task)));
    _pool.submitBatch(std::move(pooled));
}

void
ThreadExecutor::drain()
{
    _pool.waitIdle();
}

double
ThreadExecutor::now() const
{
    return _pool.clockSeconds();
}

int
ThreadExecutor::concurrency() const
{
    return _pool.threadCount();
}

ThreadExecutor::CommitStats
ThreadExecutor::commitStats() const
{
    CommitStats stats;
    stats.laneEnqueues =
        _laneEnqueues.load(std::memory_order_relaxed);
    stats.laneDeferred =
        _laneDeferred.load(std::memory_order_relaxed);
    stats.recordAllocs =
        _recordAllocs.load(std::memory_order_relaxed);
    stats.recordReuses =
        _recordReuses.load(std::memory_order_relaxed);
    return stats;
}

} // namespace stats::exec
