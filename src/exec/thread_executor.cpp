#include "exec/thread_executor.hpp"

#include <chrono>
#include <thread>

#include "observability/trace.hpp"
#include "replay/session.hpp"

namespace stats::exec {

ThreadExecutor::ThreadExecutor(int threads) : _pool(threads) {}

/**
 * Adapt an exec::Task to a pool task. The Task is moved into the
 * closure once — the submit path is move-only end to end — and the
 * cancel token is shared with the pool so cancellation is checked
 * before dispatch (a cancelled task never occupies a worker with
 * real work; the pool hands us `cancelled` so onComplete still fires).
 */
threading::PoolTask
ThreadExecutor::wrap(Task task)
{
    threading::PoolTask pooled;
    pooled.cancel = task.cancel;
    pooled.run = [this, task = std::move(task)](bool cancelled) mutable {
        runTask(task, cancelled);
    };
    return pooled;
}

void
ThreadExecutor::runTask(Task &task, bool cancelled)
{
    const bool traced =
        obs::traceActive() && task.tag.kind != obs::TaskKind::None;
    if (!cancelled) {
        // StalledWorker fault: delay the task on its worker before
        // dispatch. Timing-only — the stall is deliberately NOT part
        // of the record log, so a stalled recording replays cleanly
        // without the plan (stalls perturb interleaving, not the
        // engine's decision sequence; see docs/REPLAY.md §4).
        if (replay::sessionEngaged() &&
            task.tag.kind != obs::TaskKind::None) {
            auto &session = replay::ReplaySession::global();
            const double stall = session.taskStallSeconds(
                static_cast<int>(task.tag.kind), task.tag.group);
            if (stall > 0.0) {
                session.countExternalFault(
                    replay::FaultKind::StalledWorker);
                if (traced) {
                    obs::Trace &trace = obs::Trace::global();
                    trace.record(
                        obs::EventType::FaultInjected, task.tag.group,
                        task.tag.inputBegin, task.tag.inputEnd,
                        _pool.clockSeconds(), trace.threadTrack(),
                        static_cast<std::int64_t>(
                            replay::FaultKind::StalledWorker));
                }
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(stall));
            }
        }
        const double begin = _pool.clockSeconds();
        task.run();
        if (traced) {
            // Track = this worker thread; recorded before the
            // serialized onComplete so engine instants sequence
            // after the span that triggered them.
            obs::Trace &trace = obs::Trace::global();
            trace.recordSpan(task.tag, begin, _pool.clockSeconds(),
                             trace.threadTrack());
        }
    } else if (traced) {
        obs::Trace::global().record(
            obs::EventType::TaskCancelled, task.tag.group,
            task.tag.inputBegin, task.tag.inputEnd,
            _pool.clockSeconds(), obs::kFrontierTrack, task.tag.arg);
    }
    if (!task.onComplete)
        return; // Pure execution: completes lock-free.
    if (task.serialCompletion) {
        // The commit lane: the speculation engine's commit protocol
        // relies on at-most-one of these running at a time.
        std::lock_guard<std::mutex> lock(_commitMutex);
        task.onComplete();
    } else {
        task.onComplete();
    }
}

void
ThreadExecutor::submit(Task task)
{
    _pool.submit(wrap(std::move(task)));
}

void
ThreadExecutor::submitBatch(std::vector<Task> tasks)
{
    std::vector<threading::PoolTask> pooled;
    pooled.reserve(tasks.size());
    for (auto &task : tasks)
        pooled.push_back(wrap(std::move(task)));
    _pool.submitBatch(std::move(pooled));
}

void
ThreadExecutor::drain()
{
    _pool.waitIdle();
}

double
ThreadExecutor::now() const
{
    return _pool.clockSeconds();
}

int
ThreadExecutor::concurrency() const
{
    return _pool.threadCount();
}

} // namespace stats::exec
