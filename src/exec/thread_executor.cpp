#include "exec/thread_executor.hpp"

#include "observability/trace.hpp"

namespace stats::exec {

ThreadExecutor::ThreadExecutor(int threads) : _pool(threads) {}

void
ThreadExecutor::submit(Task task)
{
    {
        std::lock_guard<std::mutex> lock(_pendingMutex);
        ++_pending;
    }
    _pool.submit([this, task = std::move(task)]() mutable {
        const bool cancelled = task.cancel && task.cancel->load();
        const bool traced = obs::traceActive() &&
                            task.tag.kind != obs::TaskKind::None;
        if (!cancelled) {
            const double begin = _clock.elapsedSeconds();
            task.run();
            if (traced) {
                // Track = this worker thread; recorded before the
                // serialized onComplete so engine instants sequence
                // after the span that triggered them.
                obs::Trace &trace = obs::Trace::global();
                trace.recordSpan(task.tag, begin,
                                 _clock.elapsedSeconds(),
                                 trace.threadTrack());
            }
        } else if (traced) {
            obs::Trace::global().record(
                obs::EventType::TaskCancelled, task.tag.group,
                task.tag.inputBegin, task.tag.inputEnd,
                _clock.elapsedSeconds(), obs::kFrontierTrack,
                task.tag.arg);
        }
        {
            // Serialize completion callbacks: the speculation engine's
            // commit protocol relies on this for lock-free bookkeeping.
            std::lock_guard<std::mutex> lock(_completionMutex);
            if (task.onComplete)
                task.onComplete();
        }
        {
            std::lock_guard<std::mutex> lock(_pendingMutex);
            --_pending;
            if (_pending == 0)
                _pendingCv.notify_all();
        }
    });
}

void
ThreadExecutor::drain()
{
    std::unique_lock<std::mutex> lock(_pendingMutex);
    _pendingCv.wait(lock, [this] { return _pending == 0; });
}

double
ThreadExecutor::now() const
{
    return _clock.elapsedSeconds();
}

int
ThreadExecutor::concurrency() const
{
    return _pool.threadCount();
}

} // namespace stats::exec
