#include "exec/task.hpp"

namespace stats::exec {

CancelToken
makeCancelToken()
{
    return std::make_shared<std::atomic<bool>>(false);
}

} // namespace stats::exec
