/**
 * @file
 * The front-end compiler (paper section 3.4, "Generating standard
 * C++ code").
 *
 * Translates C++ extended with the SDI and TI constructs (paper
 * Figures 8-10) into standard C++ plus a tradeoff-description header
 * (paper Figure 11). Like the paper's Racket implementation, it only
 * *partially* parses C++: it scans for
 *
 *   - `tradeoff <name> { { <OptionsClass> } ; };` declarations,
 *   - `class <X> : [public] Tradeoff_options { ... };` (and the
 *     `Tradeoff_type_options` / `Tradeoff_function_options` variants
 *     whose getValue selects from a `choices` list),
 *   - `StateDependence<I, S, O> var(&inputs, &state, fn);`
 *     instantiations, and
 *   - `doesSpecStateMatchAny` definitions (for Table 1 accounting),
 *
 * leaving the rest of the program untouched. Placeholder functions
 * are given generated `T_<id>` names "to avoid conflicts with the
 * rest of the code" (paper footnote 2).
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace stats::frontend {

/** One parsed `tradeoff` declaration joined with its options class. */
struct TradeoffDecl
{
    std::string name;         ///< e.g. "TO_numAnnealingLayers".
    std::string optionsClass; ///< e.g. "AnnealingLayers_options".
    int id = 0;               ///< Generated T_<id> identity.
    ir::TradeoffKind kind = ir::TradeoffKind::Constant;

    std::string getValueBody;
    std::string getMaxIndexBody;
    std::string getDefaultIndexBody;
    std::vector<std::string> choices; ///< Type/function kinds.

    /** Lines the developer wrote for this tradeoff (Table 1). */
    std::size_t declaredLoc = 0;
};

/** One parsed SDI instantiation. */
struct StateDepDecl
{
    std::string variable;
    std::string inputType;
    std::string stateType;
    std::string outputType;
    std::string computeFunction;
};

/** Output of one front-end run. */
struct FrontendResult
{
    std::string unitName;
    std::vector<TradeoffDecl> tradeoffs;
    std::vector<StateDepDecl> stateDeps;

    /** The Figure 11-style standard C++ header. */
    std::string generatedHeader;

    /** Input with extension constructs removed, header included. */
    std::string rewrittenSource;

    /** Metadata lines in the mini-IR's textual format. */
    std::string irMetadata;

    // Table 1 accounting.
    std::size_t originalLoc = 0;        ///< LOC of the input program.
    std::size_t generatedLoc = 0;       ///< LOC the compiler emitted.
    std::size_t stateComparisonLoc = 0; ///< doesSpecStateMatchAny LOC.
};

/**
 * Compile one extended-C++ translation unit.
 * Panics with a description on malformed extension constructs.
 */
FrontendResult compileExtendedSource(const std::string &source,
                                     const std::string &unit_name);

} // namespace stats::frontend
