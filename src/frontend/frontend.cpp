#include "frontend/frontend.hpp"

#include <cctype>
#include <sstream>

#include "support/log.hpp"
#include "support/string_utils.hpp"

namespace stats::frontend {

namespace {

using support::countLines;
using support::trim;

/** First generated tradeoff id (matches the paper's running example). */
constexpr int kFirstTradeoffId = 42;

/** Position after the matching close brace for `open_pos` ('{'). */
std::size_t
matchBrace(const std::string &source, std::size_t open_pos)
{
    if (source[open_pos] != '{')
        support::panic("frontend: matchBrace not at '{'");
    int depth = 0;
    for (std::size_t i = open_pos; i < source.size(); ++i) {
        if (source[i] == '{')
            ++depth;
        else if (source[i] == '}' && --depth == 0)
            return i + 1;
    }
    support::panic("frontend: unbalanced braces");
}

/** Next non-whitespace position at or after `pos`. */
std::size_t
skipSpace(const std::string &source, std::size_t pos)
{
    while (pos < source.size() &&
           std::isspace(static_cast<unsigned char>(source[pos]))) {
        ++pos;
    }
    return pos;
}

/** Read an identifier at `pos`; empty when none. */
std::string
readIdentifier(const std::string &source, std::size_t pos)
{
    std::string out;
    while (pos < source.size() &&
           (std::isalnum(static_cast<unsigned char>(source[pos])) ||
            source[pos] == '_')) {
        out += source[pos++];
    }
    return out;
}

/** True if position `pos` starts a whole-word match of `word`. */
bool
wordAt(const std::string &source, std::size_t pos,
       const std::string &word)
{
    if (source.compare(pos, word.size(), word) != 0)
        return false;
    const auto is_ident = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    if (pos > 0 && is_ident(source[pos - 1]))
        return false;
    const std::size_t end = pos + word.size();
    return end >= source.size() || !is_ident(source[end]);
}

/** Extract the body of `method` inside a class body; "" if absent. */
std::string
extractMethodBody(const std::string &class_body,
                  const std::string &method)
{
    std::size_t pos = 0;
    while ((pos = class_body.find(method, pos)) != std::string::npos) {
        if (!wordAt(class_body, pos, method)) {
            pos += method.size();
            continue;
        }
        const std::size_t paren = class_body.find('(', pos);
        if (paren == std::string::npos)
            return "";
        const std::size_t open = class_body.find('{', paren);
        if (open == std::string::npos)
            return "";
        const std::size_t end = matchBrace(class_body, open);
        return trim(class_body.substr(open + 1, end - open - 2));
    }
    return "";
}

/** Parse `{"a", "b", ...}` initializer lists for choices. */
std::vector<std::string>
extractChoices(const std::string &class_body)
{
    std::vector<std::string> choices;
    const std::size_t pos = class_body.find("choices");
    if (pos == std::string::npos)
        return choices;
    const std::size_t open = class_body.find('{', pos);
    if (open == std::string::npos)
        return choices;
    const std::size_t end = matchBrace(class_body, open);
    std::string inner = class_body.substr(open + 1, end - open - 2);
    for (auto &part : support::split(inner, ',')) {
        part = trim(part);
        if (part.size() >= 2 && part.front() == '"')
            part = part.substr(1, part.size() - 2);
        if (!part.empty())
            choices.push_back(part);
    }
    return choices;
}

struct OptionsClass
{
    std::string name;
    ir::TradeoffKind kind;
    std::string body;
    std::size_t loc;
};

/** All `class X : ... Tradeoff*_options { ... };` definitions. */
std::vector<OptionsClass>
extractOptionsClasses(const std::string &source)
{
    std::vector<OptionsClass> classes;
    std::size_t pos = 0;
    while ((pos = source.find("class", pos)) != std::string::npos) {
        if (!wordAt(source, pos, "class")) {
            ++pos;
            continue;
        }
        std::size_t cursor = skipSpace(source, pos + 5);
        const std::string name = readIdentifier(source, cursor);
        cursor = source.find('{', cursor);
        const std::size_t colon = source.find(':', pos);
        if (cursor == std::string::npos || colon == std::string::npos ||
            colon > cursor) {
            pos += 5;
            continue;
        }
        const std::string bases =
            source.substr(colon + 1, cursor - colon - 1);
        ir::TradeoffKind kind;
        if (bases.find("Tradeoff_type_options") != std::string::npos) {
            kind = ir::TradeoffKind::DataType;
        } else if (bases.find("Tradeoff_function_options") !=
                   std::string::npos) {
            kind = ir::TradeoffKind::FunctionChoice;
        } else if (bases.find("Tradeoff_options") != std::string::npos) {
            kind = ir::TradeoffKind::Constant;
        } else {
            pos += 5;
            continue;
        }
        const std::size_t end = matchBrace(source, cursor);
        OptionsClass cls;
        cls.name = name;
        cls.kind = kind;
        cls.body = source.substr(cursor + 1, end - cursor - 2);
        std::size_t decl_end = end;
        if (decl_end < source.size() && source[decl_end] == ';')
            ++decl_end;
        cls.loc = countLines(source.substr(pos, decl_end - pos));
        classes.push_back(std::move(cls));
        pos = end;
    }
    return classes;
}

struct RawTradeoff
{
    std::string name;
    std::string optionsClass;
    std::size_t begin;
    std::size_t end;
    std::size_t loc;
};

/** All `tradeoff NAME { { Options } ; };` declarations. */
std::vector<RawTradeoff>
extractTradeoffDecls(const std::string &source)
{
    std::vector<RawTradeoff> decls;
    std::size_t pos = 0;
    while ((pos = source.find("tradeoff", pos)) != std::string::npos) {
        if (!wordAt(source, pos, "tradeoff")) {
            pos += 8;
            continue;
        }
        std::size_t cursor = skipSpace(source, pos + 8);
        const std::string name = readIdentifier(source, cursor);
        if (name.empty()) {
            pos += 8;
            continue;
        }
        cursor = skipSpace(source, cursor + name.size());
        if (cursor >= source.size() || source[cursor] != '{') {
            pos += 8;
            continue;
        }
        const std::size_t end_brace = matchBrace(source, cursor);
        std::string inner =
            source.substr(cursor + 1, end_brace - cursor - 2);
        // inner: `{ OptionsClass } ;`
        std::string options;
        const std::size_t inner_open = inner.find('{');
        if (inner_open != std::string::npos) {
            const std::size_t inner_end = matchBrace(inner, inner_open);
            options = trim(
                inner.substr(inner_open + 1, inner_end - inner_open - 2));
        }
        std::size_t decl_end = end_brace;
        if (decl_end < source.size() && source[decl_end] == ';')
            ++decl_end;

        RawTradeoff decl;
        decl.name = name;
        decl.optionsClass = options;
        decl.begin = pos;
        decl.end = decl_end;
        decl.loc = countLines(source.substr(pos, decl_end - pos));
        decls.push_back(std::move(decl));
        pos = decl_end;
    }
    return decls;
}

/** All `StateDependence<I, S, O> var(... , fn);` instantiations. */
std::vector<StateDepDecl>
extractStateDeps(const std::string &source)
{
    std::vector<StateDepDecl> deps;
    std::size_t pos = 0;
    while ((pos = source.find("StateDependence", pos)) !=
           std::string::npos) {
        if (!wordAt(source, pos, "StateDependence")) {
            pos += 15;
            continue;
        }
        std::size_t cursor = skipSpace(source, pos + 15);
        if (cursor >= source.size() || source[cursor] != '<') {
            pos += 15;
            continue;
        }
        const std::size_t close = source.find('>', cursor);
        if (close == std::string::npos)
            support::panic("frontend: unterminated StateDependence<...>");
        const auto args =
            support::split(source.substr(cursor + 1, close - cursor - 1),
                           ',');
        if (args.size() != 3)
            support::panic(
                "frontend: StateDependence needs 3 template args");

        cursor = skipSpace(source, close + 1);
        const std::string variable = readIdentifier(source, cursor);
        const std::size_t paren = source.find('(', cursor);
        const std::size_t semi = source.find(';', cursor);
        if (variable.empty() || paren == std::string::npos ||
            semi == std::string::npos || paren > semi) {
            pos = close;
            continue; // A declaration (e.g. the template itself).
        }
        const auto ctor_args =
            support::split(source.substr(paren + 1, semi - paren - 2),
                           ',');
        StateDepDecl dep;
        dep.variable = variable;
        dep.inputType = trim(args[0]);
        dep.stateType = trim(args[1]);
        dep.outputType = trim(args[2]);
        dep.computeFunction =
            ctor_args.empty() ? "" : trim(ctor_args.back());
        deps.push_back(std::move(dep));
        pos = semi;
    }
    return deps;
}

} // namespace

FrontendResult
compileExtendedSource(const std::string &source,
                      const std::string &unit_name)
{
    FrontendResult result;
    result.unitName = unit_name;

    const auto options_classes = extractOptionsClasses(source);
    const auto raw_tradeoffs = extractTradeoffDecls(source);
    result.stateDeps = extractStateDeps(source);

    // Join declarations with their options classes.
    int next_id = kFirstTradeoffId;
    for (const auto &raw : raw_tradeoffs) {
        const OptionsClass *options = nullptr;
        for (const auto &cls : options_classes) {
            if (cls.name == raw.optionsClass)
                options = &cls;
        }
        if (!options)
            support::panic("frontend: tradeoff '", raw.name,
                           "' references unknown options class '",
                           raw.optionsClass, "'");
        TradeoffDecl decl;
        decl.name = raw.name;
        decl.optionsClass = raw.optionsClass;
        decl.id = next_id++;
        decl.kind = options->kind;
        decl.getValueBody = extractMethodBody(options->body, "getValue");
        decl.getMaxIndexBody =
            extractMethodBody(options->body, "getMaxIndex");
        decl.getDefaultIndexBody =
            extractMethodBody(options->body, "getDefaultIndex");
        decl.choices = extractChoices(options->body);
        decl.declaredLoc = raw.loc + options->loc;
        if (decl.kind != ir::TradeoffKind::Constant &&
            decl.choices.empty()) {
            support::panic("frontend: type/function tradeoff '",
                           raw.name, "' has no choices list");
        }
        result.tradeoffs.push_back(std::move(decl));
    }

    // --- Generated header (paper Figure 11 shape). --------------------
    std::ostringstream header;
    header << "#pragma once\n";
    header << "// Generated by the STATS front-end from " << unit_name
           << " - do not edit.\n";
    header << "#include <cstdint>\n\n";
    std::ostringstream registry;
    for (const auto &decl : result.tradeoffs) {
        const std::string t = "T_" + std::to_string(decl.id);
        header << "// tradeoff " << decl.name << " ("
               << ir::tradeoffKindName(decl.kind) << ", from "
               << decl.optionsClass << ")\n";
        header << "inline int64_t " << t
               << "(int64_t p) { return p; }\n";
        header << "#define " << decl.name << " " << t << "(" << decl.id
               << ")\n";
        if (!decl.getValueBody.empty()) {
            header << "inline auto " << t << "_getValue(int64_t i) { "
                   << decl.getValueBody << " }\n";
        }
        if (!decl.getMaxIndexBody.empty()) {
            header << "inline int64_t " << t << "_size() { "
                   << decl.getMaxIndexBody << " }\n";
        }
        if (!decl.getDefaultIndexBody.empty()) {
            header << "inline int64_t " << t << "_getDefaultIndex() { "
                   << decl.getDefaultIndexBody << " }\n";
        }
        header << "\n";
        registry << (registry.tellp() > 0 ? " " : "") << t
                 << "_getValue " << t << "_size " << t
                 << "_getDefaultIndex " << t;
    }
    header << "inline const char *TO[] = { \"" << registry.str()
           << "\" };\n";
    result.generatedHeader = header.str();

    // --- Rewritten source: extensions removed. ------------------------
    std::string rewritten = source;
    // Erase tradeoff declarations back-to-front (positions stay valid).
    for (auto it = raw_tradeoffs.rbegin(); it != raw_tradeoffs.rend();
         ++it) {
        rewritten.erase(it->begin, it->end - it->begin);
    }
    result.rewrittenSource = "#include \"" + unit_name +
                             "_tradeoffs.hpp\"\n" + rewritten;

    // --- Mini-IR metadata. ---------------------------------------------
    std::ostringstream meta;
    for (const auto &decl : result.tradeoffs) {
        const std::string t = "T_" + std::to_string(decl.id);
        meta << "tradeoff " << t << " kind="
             << ir::tradeoffKindName(decl.kind) << " placeholder=@" << t
             << " getValue=@" << t << "_getValue size=@" << t
             << "_size default=@" << t << "_getDefaultIndex";
        if (!decl.choices.empty()) {
            meta << " choices=";
            for (std::size_t i = 0; i < decl.choices.size(); ++i)
                meta << (i ? "," : "") << decl.choices[i];
        }
        meta << "\n";
    }
    for (std::size_t i = 0; i < result.stateDeps.size(); ++i) {
        meta << "statedep SD" << i << " compute=@"
             << result.stateDeps[i].computeFunction << "\n";
    }
    result.irMetadata = meta.str();

    // --- Table 1 accounting. --------------------------------------------
    result.originalLoc = countLines(source);
    result.generatedLoc = countLines(result.generatedHeader);
    const std::string compare_body =
        extractMethodBody(source, "doesSpecStateMatchAny");
    result.stateComparisonLoc =
        compare_body.empty() ? 0 : countLines(compare_body) + 2;
    return result;
}

} // namespace stats::frontend
