/**
 * @file
 * Chrome-tracing exporter: turns a collected event list into the
 * Trace Event Format JSON that chrome://tracing / Perfetto load.
 *
 * Layout: one track (tid) per executor track that ran tagged tasks —
 * simulated logical cores under SimExecutor, worker threads under
 * ThreadExecutor — plus a "frontier" track (tid 0) carrying the
 * engine's semantic instants (validations, rollbacks, commits,
 * squashes). Span pairs become complete ("X") events; instants
 * become instant ("i") events. Timestamps are converted from the
 * executor clock (seconds, virtual or wall) to microseconds.
 */

#pragma once

#include <ostream>
#include <vector>

#include "observability/trace.hpp"

namespace stats::obs {

/**
 * Write `events` (seq-sorted, as returned by Trace::collect()) as a
 * Chrome Trace Event Format JSON object.
 */
void writeChromeTrace(std::ostream &out, const std::vector<Event> &events);

} // namespace stats::obs
