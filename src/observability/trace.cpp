#include "observability/trace.hpp"

#include <algorithm>

#include "support/log.hpp"

namespace stats::obs {

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::AuxStart:         return "AuxStart";
      case EventType::AuxEnd:           return "AuxEnd";
      case EventType::BodyStart:        return "BodyStart";
      case EventType::BodyEnd:          return "BodyEnd";
      case EventType::ReExecStart:      return "ReExecStart";
      case EventType::ReExecEnd:        return "ReExecEnd";
      case EventType::RecoveryStart:    return "RecoveryStart";
      case EventType::RecoveryEnd:      return "RecoveryEnd";
      case EventType::ValidateMatch:    return "ValidateMatch";
      case EventType::ValidateMismatch: return "ValidateMismatch";
      case EventType::Rollback:         return "Rollback";
      case EventType::Commit:           return "Commit";
      case EventType::Squash:           return "Squash";
      case EventType::Abort:            return "Abort";
      case EventType::FrontierAdvance:  return "FrontierAdvance";
      case EventType::TaskCancelled:    return "TaskCancelled";
      case EventType::TaskStolen:       return "TaskStolen";
      case EventType::WorkerPark:       return "WorkerPark";
      case EventType::WorkerUnpark:     return "WorkerUnpark";
      case EventType::QueueDepth:       return "QueueDepth";
      case EventType::ReplayDivergence: return "ReplayDivergence";
      case EventType::FaultInjected:    return "FaultInjected";
      case EventType::ArenaRefill:      return "ArenaRefill";
      case EventType::CommitLaneEnqueue:
        return "CommitLaneEnqueue";
      case EventType::RequestAdmitted:  return "RequestAdmitted";
      case EventType::RequestRejected:  return "RequestRejected";
      case EventType::PlanEnqueued:     return "PlanEnqueued";
      case EventType::PlanDispatched:   return "PlanDispatched";
      case EventType::BatchFormed:      return "BatchFormed";
      case EventType::TenantThrottled:  return "TenantThrottled";
      case EventType::CacheHit:         return "CacheHit";
    }
    support::panic("eventTypeName: unknown event type ",
                   static_cast<int>(type));
}

bool
isSpanStart(EventType type)
{
    switch (type) {
      case EventType::AuxStart:
      case EventType::BodyStart:
      case EventType::ReExecStart:
      case EventType::RecoveryStart:
        return true;
      default:
        return false;
    }
}

bool
isSpanEnd(EventType type)
{
    switch (type) {
      case EventType::AuxEnd:
      case EventType::BodyEnd:
      case EventType::ReExecEnd:
      case EventType::RecoveryEnd:
        return true;
      default:
        return false;
    }
}

bool
isSchedulerEvent(EventType type)
{
    switch (type) {
      case EventType::TaskStolen:
      case EventType::WorkerPark:
      case EventType::WorkerUnpark:
      case EventType::QueueDepth:
      case EventType::ArenaRefill:
      case EventType::CommitLaneEnqueue:
        return true;
      default:
        return false;
    }
}

bool
isServingEvent(EventType type)
{
    switch (type) {
      case EventType::RequestAdmitted:
      case EventType::RequestRejected:
      case EventType::PlanEnqueued:
      case EventType::PlanDispatched:
      case EventType::BatchFormed:
      case EventType::TenantThrottled:
      case EventType::CacheHit:
        return true;
      default:
        return false;
    }
}

EventType
spanStartEvent(TaskKind kind)
{
    switch (kind) {
      case TaskKind::Aux:      return EventType::AuxStart;
      case TaskKind::Body:     return EventType::BodyStart;
      case TaskKind::ReExec:   return EventType::ReExecStart;
      case TaskKind::Recovery: return EventType::RecoveryStart;
      case TaskKind::None:     break;
    }
    support::panic("spanStartEvent: untagged task");
}

EventType
spanEndEvent(TaskKind kind)
{
    switch (kind) {
      case TaskKind::Aux:      return EventType::AuxEnd;
      case TaskKind::Body:     return EventType::BodyEnd;
      case TaskKind::ReExec:   return EventType::ReExecEnd;
      case TaskKind::Recovery: return EventType::RecoveryEnd;
      case TaskKind::None:     break;
    }
    support::panic("spanEndEvent: untagged task");
}

Trace::Trace()
{
#if defined(STATS_OBS_FORCE) && STATS_OBS_FORCE
    enable();
#endif
}

Trace &
Trace::global()
{
    static Trace instance;
    return instance;
}

void
Trace::enable(std::size_t per_thread_capacity)
{
    std::lock_guard<std::mutex> lock(_registryMutex);
    _capacity = std::max<std::size_t>(16, per_thread_capacity);
    _enabled.store(true, std::memory_order_relaxed);
}

void
Trace::disable()
{
    _enabled.store(false, std::memory_order_relaxed);
}

namespace {

/** Per-thread sink cache, invalidated when the epoch moves. */
struct ThreadSlot
{
    void *sink = nullptr;
    std::uint64_t epoch = ~0ull;
    std::int32_t track = -1;
};

thread_local ThreadSlot t_slot;

} // namespace

Trace::Sink &
Trace::sinkForThisThread()
{
    if (t_slot.sink == nullptr ||
        t_slot.epoch != _epoch.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(_registryMutex);
        auto sink = std::make_unique<Sink>();
        sink->ring.resize(_capacity);
        t_slot.sink = sink.get();
        t_slot.epoch = _epoch.load(std::memory_order_relaxed);
        if (t_slot.track < 0)
            t_slot.track =
                _nextTrack.fetch_add(1, std::memory_order_relaxed);
        _sinks.push_back(std::move(sink));
    }
    return *static_cast<Sink *>(t_slot.sink);
}

std::int32_t
Trace::threadTrack()
{
    sinkForThisThread();
    return t_slot.track;
}

void
Trace::push(Sink &sink, const Event &event)
{
    std::lock_guard<std::mutex> lock(sink.mutex);
    sink.ring[sink.head] = event;
    sink.head = (sink.head + 1) % sink.ring.size();
    ++sink.written;
}

void
Trace::record(EventType type, std::int32_t group,
              std::int64_t input_begin, std::int64_t input_end,
              double ts, std::int32_t track, std::int64_t arg)
{
    if (!enabled())
        return;
    Event event;
    event.seq = _nextSeq.fetch_add(1, std::memory_order_relaxed);
    event.type = type;
    event.group = group;
    event.inputBegin = input_begin;
    event.inputEnd = input_end;
    event.ts = ts;
    event.track = track;
    event.arg = arg;
    push(sinkForThisThread(), event);
}

void
Trace::recordSpan(const TaskTag &tag, double begin_ts, double end_ts,
                  std::int32_t track)
{
    if (!enabled() || tag.kind == TaskKind::None)
        return;
    Sink &sink = sinkForThisThread();
    const std::uint64_t seq =
        _nextSeq.fetch_add(2, std::memory_order_relaxed);

    Event event;
    event.seq = seq;
    event.type = spanStartEvent(tag.kind);
    event.group = tag.group;
    event.inputBegin = tag.inputBegin;
    event.inputEnd = tag.inputEnd;
    event.ts = begin_ts;
    event.track = track;
    event.arg = tag.arg;
    push(sink, event);

    event.seq = seq + 1;
    event.type = spanEndEvent(tag.kind);
    event.ts = end_ts;
    push(sink, event);
}

std::vector<Event>
Trace::collect() const
{
    std::lock_guard<std::mutex> lock(_registryMutex);
    std::vector<Event> events;
    for (const auto &sink : _sinks) {
        std::lock_guard<std::mutex> sink_lock(sink->mutex);
        const std::size_t capacity = sink->ring.size();
        const std::size_t count =
            std::min<std::uint64_t>(sink->written, capacity);
        // Oldest surviving event first.
        std::size_t pos =
            sink->written > capacity ? sink->head : 0;
        for (std::size_t i = 0; i < count; ++i) {
            events.push_back(sink->ring[pos]);
            pos = (pos + 1) % capacity;
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) { return a.seq < b.seq; });
    return events;
}

void
Trace::clear()
{
    std::lock_guard<std::mutex> lock(_registryMutex);
    _sinks.clear();
    // Invalidates every thread's cached sink.
    _epoch.fetch_add(1, std::memory_order_relaxed);
    _nextSeq.store(1, std::memory_order_relaxed);
}

std::uint64_t
Trace::dropped() const
{
    std::lock_guard<std::mutex> lock(_registryMutex);
    std::uint64_t dropped = 0;
    for (const auto &sink : _sinks) {
        std::lock_guard<std::mutex> sink_lock(sink->mutex);
        if (sink->written > sink->ring.size())
            dropped += sink->written - sink->ring.size();
    }
    return dropped;
}

} // namespace stats::obs
