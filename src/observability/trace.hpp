/**
 * @file
 * Structured speculation-event tracing (the observability layer's
 * event sink).
 *
 * The speculation engine and both executors record typed events —
 * task spans (auxiliary / body / re-execution / recovery runs) and
 * semantic instants (validations, rollbacks, commits, squashes) —
 * into per-thread ring buffers. The canonical schema, including every
 * event type's fields and its ordering guarantees relative to the
 * engine's group status machine, is docs/OBSERVABILITY.md; keep the
 * two in lockstep (tests/observability_test.cpp cross-checks them).
 *
 * Cost model:
 *  - compiled out entirely when STATS_OBS_ENABLED is 0 (the
 *    `traceActive()` gate folds to `false` and every instrumentation
 *    branch dies);
 *  - when compiled in but runtime-disabled, an instrumentation site
 *    costs one relaxed atomic load;
 *  - when enabled, recording is lock-light: one relaxed fetch_add on
 *    the global sequence counter plus a store into the caller's
 *    thread-local ring buffer. The only lock is taken once per
 *    thread per enable() epoch, to register the thread's sink.
 *
 * collect(), clear(), and disable() are *quiescent-time* operations:
 * call them only when no recording task is in flight (e.g. after
 * Executor::drain()/SpecEngine::join()).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

/** Compile-time switch: 0 removes the layer entirely. */
#ifndef STATS_OBS_ENABLED
#define STATS_OBS_ENABLED 1
#endif

namespace stats::obs {

/**
 * Every event type the runtime emits. The schema is versioned by
 * kSchemaVersion; any change here must be mirrored in
 * docs/OBSERVABILITY.md and eventTypeName().
 */
enum class EventType : std::uint8_t
{
    // Task spans (recorded by the executors from task tags; Start/End
    // are emitted as one atomic pair with adjacent sequence numbers).
    AuxStart,      ///< Auxiliary run began (arg: 0).
    AuxEnd,        ///< Auxiliary run finished.
    BodyStart,     ///< Group body run began.
    BodyEnd,       ///< Group body run finished.
    ReExecStart,   ///< Producer re-execution began (arg: attempt #).
    ReExecEnd,     ///< Producer re-execution finished.
    RecoveryStart, ///< Sequential squash-recovery run began.
    RecoveryEnd,   ///< Sequential squash-recovery run finished.

    // Semantic instants (recorded by the engine inside serialized
    // completion callbacks; they land on the frontier track).
    ValidateMatch,    ///< Spec start accepted (arg: matched original).
    ValidateMismatch, ///< Spec start rejected (arg: re-execs done).
    Rollback,         ///< Producer rolled back (arg: attempt #).
    Commit,           ///< Group committed (arg: 0).
    Squash,           ///< Group squashed (arg: aborting group).
    Abort,            ///< Speculation aborted (arg: first squashed).
    FrontierAdvance,  ///< Commit frontier moved (arg: new frontier).
    TaskCancelled,    ///< Tagged task skipped via its cancel token.

    // Scheduler instants (recorded by the work-stealing thread pool
    // on the emitting worker's own track; group is always -1).
    TaskStolen,   ///< Task stolen from another worker (arg: victim).
    WorkerPark,   ///< Worker blocked after its spin phase (arg: 0).
    WorkerUnpark, ///< Parked worker woke up (arg: 0).
    QueueDepth,   ///< Pre-park snapshot: inputBegin = own deque depth,
                  ///< inputEnd = shared-queue depth, arg = pool pending.

    // Record/replay instants (recorded by the engine and executors
    // when the replay session or a fault plan is engaged; see
    // docs/REPLAY.md).
    ReplayDivergence, ///< Replay left the recorded path (arg: epoch).
    FaultInjected,    ///< Fault-plan injection fired (arg: FaultKind).

    // Allocation/commit-pipeline instants (schema v4).
    ArenaRefill, ///< Task arena switched blocks: inputBegin = block
                 ///< bytes, inputEnd = 1 when the block came from the
                 ///< heap / 0 when recycled, arg = arena epoch.
    CommitLaneEnqueue, ///< Serialized completion entered the commit
                       ///< lane (arg: 1 when the pushing worker became
                       ///< the drainer, 0 when handed off).

    // Serving-plane instants (schema v5; recorded by the statsd
    // control plane and plan scheduler, docs/SERVING.md). group is
    // always -1; inputBegin carries the request id when one exists.
    RequestAdmitted, ///< Request passed admission (arg: queue depth).
    RequestRejected, ///< Request rejected (arg: RejectReason ordinal).
    PlanEnqueued,    ///< Plan entered its tenant queue (arg: depth).
    PlanDispatched,  ///< Plan left a queue for execution (arg: batch
                     ///< size it was dispatched in; 1 = solo).
    BatchFormed,     ///< Compatible plans fused for one callBatch
                     ///< dispatch: inputBegin = lanes, arg = distinct
                     ///< tenants in the batch.
    TenantThrottled, ///< Tenant hit quota/queue bound (arg:
                     ///< RejectReason ordinal).
    CacheHit,        ///< (schema v6) Request served from the (plan,
                     ///< seed) result cache without executing
                     ///< (inputBegin: request id, arg: resident
                     ///< cache entries after the hit).
};

inline constexpr int kEventTypeCount = 31;
inline constexpr int kSchemaVersion = 6;

/** Stable name of an event type (as documented in the schema). */
const char *eventTypeName(EventType type);

/** True for the *Start half of a span pair. */
bool isSpanStart(EventType type);
/** True for the *End half of a span pair. */
bool isSpanEnd(EventType type);
/** True for events emitted by the scheduler rather than the engine. */
bool isSchedulerEvent(EventType type);
/** True for events emitted by the serving plane (statsd). */
bool isServingEvent(EventType type);

/** Track id carried by engine-emitted instants ("frontier" track). */
inline constexpr std::int32_t kFrontierTrack = -1;

/** One recorded event. Field semantics: docs/OBSERVABILITY.md. */
struct Event
{
    /** Global monotonic sequence number (total order across threads). */
    std::uint64_t seq = 0;

    EventType type = EventType::Commit;

    /** Group index, or -1 when not group-scoped. */
    std::int32_t group = -1;

    /** Input range [inputBegin, inputEnd) the event concerns; -1 n/a. */
    std::int64_t inputBegin = -1;
    std::int64_t inputEnd = -1;

    /** Executor clock, seconds: virtual (sim) or wall (threads). */
    double ts = 0.0;

    /**
     * Executor track: the first simulated logical core (SimExecutor)
     * or the worker-thread index (ThreadExecutor) the task ran on;
     * kFrontierTrack for engine-emitted instants.
     */
    std::int32_t track = kFrontierTrack;

    /** Type-specific argument (see the per-type docs above). */
    std::int64_t arg = 0;
};

/**
 * What kind of engine work a task performs; the executors turn a
 * non-None tag into the matching span pair (or TaskCancelled).
 */
enum class TaskKind : std::uint8_t
{
    None,
    Aux,
    Body,
    ReExec,
    Recovery,
};

/** Trace annotation the engine attaches to its tasks. */
struct TaskTag
{
    TaskKind kind = TaskKind::None;
    std::int32_t group = -1;
    std::int64_t inputBegin = -1;
    std::int64_t inputEnd = -1;
    /** Type-specific argument copied into both span events. */
    std::int64_t arg = 0;
};

/** Span event pair of a task kind (kind must not be None). */
EventType spanStartEvent(TaskKind kind);
EventType spanEndEvent(TaskKind kind);

/**
 * The process-wide trace: per-thread ring-buffer sinks behind one
 * enable/disable gate.
 */
class Trace
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1u << 16;

    static Trace &global();

    /**
     * Start recording. Each recording thread gets a ring buffer of
     * `per_thread_capacity` events; when a ring is full the oldest
     * events are overwritten and counted in dropped().
     */
    void enable(std::size_t per_thread_capacity = kDefaultCapacity);

    /** Stop recording (buffers are kept until clear()). */
    void disable();

    bool enabled() const
    {
        return _enabled.load(std::memory_order_relaxed);
    }

    /** Record one instant event. No-op while disabled. */
    void record(EventType type, std::int32_t group,
                std::int64_t input_begin, std::int64_t input_end,
                double ts, std::int32_t track, std::int64_t arg = 0);

    /**
     * Record a Start/End span pair for a tagged task. The pair gets
     * adjacent sequence numbers, so exporters can rely on End
     * directly following Start in the collected order.
     */
    void recordSpan(const TaskTag &tag, double begin_ts, double end_ts,
                    std::int32_t track);

    /** Register the calling thread and return a stable track id. */
    std::int32_t threadTrack();

    /** All recorded events, merged and sorted by seq. Quiescent-time. */
    std::vector<Event> collect() const;

    /** Drop all recorded events (and the drop counter). Quiescent. */
    void clear();

    /** Events lost to ring-buffer wrap since enable()/clear(). */
    std::uint64_t dropped() const;

  private:
    struct Sink
    {
        /** Guards ring/head/written: the owning thread writes, any
         *  thread may collect()/dropped() concurrently. Uncontended
         *  on the record hot path. */
        mutable std::mutex mutex;
        std::vector<Event> ring; ///< Fixed capacity, overwritten FIFO.
        std::size_t head = 0;    ///< Next write position.
        std::uint64_t written = 0;
    };

    Trace();
    Sink &sinkForThisThread();
    void push(Sink &sink, const Event &event);

    mutable std::mutex _registryMutex;
    std::vector<std::unique_ptr<Sink>> _sinks;
    std::atomic<bool> _enabled{false};
    std::atomic<std::uint64_t> _nextSeq{1};
    std::atomic<std::int32_t> _nextTrack{0};
    std::atomic<std::uint64_t> _epoch{0};
    std::size_t _capacity = kDefaultCapacity;
};

/**
 * The gate every instrumentation site checks. Compiled out to `false`
 * when STATS_OBS_ENABLED is 0; otherwise one relaxed load.
 * Building with -DSTATS_OBS_FORCE=1 force-enables recording at
 * process start (used by the CI job that runs the whole suite with
 * the layer active).
 */
#if STATS_OBS_ENABLED
inline bool
traceActive()
{
    return Trace::global().enabled();
}
#else
constexpr bool
traceActive()
{
    return false;
}
#endif

} // namespace stats::obs
