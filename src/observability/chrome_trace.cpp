#include "observability/chrome_trace.hpp"

#include <set>
#include <string>

#include "support/json.hpp"

namespace stats::obs {

namespace {

constexpr double kSecondsToMicros = 1e6;

/** Chrome tid: frontier track first, executor tracks shifted by 1. */
std::int64_t
chromeTid(std::int32_t track)
{
    return track == kFrontierTrack ? 0 : track + 1;
}

/** Short span label ("aux", "body", ...) from its Start type. */
const char *
spanLabel(EventType type)
{
    switch (type) {
      case EventType::AuxStart:      return "aux";
      case EventType::BodyStart:     return "body";
      case EventType::ReExecStart:   return "reexec";
      case EventType::RecoveryStart: return "recovery";
      default:                       return eventTypeName(type);
    }
}

void
writeArgs(support::JsonWriter &json, const Event &event)
{
    json.key("args").beginObject();
    json.field("group", event.group)
        .field("inputBegin", event.inputBegin)
        .field("inputEnd", event.inputEnd)
        .field("arg", event.arg)
        .field("seq", static_cast<std::int64_t>(event.seq));
    json.endObject();
}

} // namespace

void
writeChromeTrace(std::ostream &out, const std::vector<Event> &events)
{
    support::JsonWriter json(out, false);
    json.beginObject();
    json.field("displayTimeUnit", "ms");
    json.key("traceEvents").beginArray();

    // Track-name metadata: the frontier plus every track that appears.
    std::set<std::int32_t> tracks;
    for (const Event &event : events)
        tracks.insert(event.track);
    tracks.insert(kFrontierTrack);
    for (std::int32_t track : tracks) {
        json.beginObject()
            .field("ph", "M")
            .field("pid", 0)
            .field("tid", chromeTid(track))
            .field("name", "thread_name");
        json.key("args").beginObject();
        json.field("name", track == kFrontierTrack
                               ? std::string("frontier")
                               : "exec " + std::to_string(track));
        json.endObject();
        json.endObject();
    }

    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event &event = events[i];
        if (isSpanEnd(event.type))
            continue; // Folded into its Start below.

        if (isSpanStart(event.type)) {
            // recordSpan() emits the pair with adjacent seq numbers,
            // so the matching End directly follows in sorted order.
            const Event *end = nullptr;
            if (i + 1 < events.size() &&
                events[i + 1].seq == event.seq + 1 &&
                isSpanEnd(events[i + 1].type) &&
                events[i + 1].track == event.track) {
                end = &events[i + 1];
            }
            json.beginObject()
                .field("ph", "X")
                .field("name", std::string(spanLabel(event.type)) +
                                   " g" + std::to_string(event.group))
                .field("cat", "task")
                .field("pid", 0)
                .field("tid", chromeTid(event.track))
                .field("ts", event.ts * kSecondsToMicros)
                .field("dur", end ? (end->ts - event.ts) * kSecondsToMicros
                                  : 0.0);
            writeArgs(json, event);
            json.endObject();
            continue;
        }

        json.beginObject()
            .field("ph", "i")
            .field("name", eventTypeName(event.type))
            .field("cat", isServingEvent(event.type)    ? "serving"
                          : isSchedulerEvent(event.type) ? "scheduler"
                                                         : "engine")
            .field("s", "t")
            .field("pid", 0)
            .field("tid", chromeTid(event.track))
            .field("ts", event.ts * kSecondsToMicros);
        writeArgs(json, event);
        json.endObject();
    }

    json.endArray();
    json.endObject();
    out << "\n";
}

} // namespace stats::obs
