/**
 * @file
 * The metrics registry of the observability layer: named counters,
 * gauges, and histograms, queryable programmatically and dumped as
 * JSON or a plain-text table.
 *
 * Counters and gauges are single relaxed atomics; histograms take a
 * per-histogram mutex (they are updated off the engine's hot path —
 * by the profiler, the autotuner, and trace summarization — never
 * from inside the engine's callback-serialized transitions).
 *
 * Metric handles returned by the registry are stable for the
 * registry's lifetime, so callers hoist the lookup out of loops.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace stats::obs {

/** Monotonic integer counter. */
class Counter
{
  public:
    void add(std::int64_t delta = 1)
    {
        _value.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { _value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> _value{0};
};

/** Last-write-wins floating-point gauge. */
class Gauge
{
  public:
    void set(double v) { _value.store(v, std::memory_order_relaxed); }

    double value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { set(0.0); }

  private:
    std::atomic<double> _value{0.0};
};

/**
 * Streaming histogram over base-10 log buckets (9 per decade), plus
 * exact count/sum/min/max. Suited to latencies and work amounts that
 * span orders of magnitude.
 */
class Histogram
{
  public:
    struct Snapshot
    {
        std::int64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        /** (bucket upper bound, count) pairs, ascending, non-empty
         *  buckets only. */
        std::vector<std::pair<double, std::int64_t>> buckets;

        double mean() const { return count > 0 ? sum / count : 0.0; }
    };

    void observe(double v);
    Snapshot snapshot() const;
    void reset();

  private:
    mutable std::mutex _mutex;
    std::int64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    std::map<int, std::int64_t> _buckets; ///< Keyed by bucket index.
};

/**
 * Named metric registry. Lookup-or-create is mutex-guarded;
 * returned references remain valid until clear().
 */
class MetricsRegistry
{
  public:
    /** The process-wide default registry. */
    static MetricsRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Look up without creating; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /**
     * Dump every metric as one JSON object:
     * {"counters": {...}, "gauges": {...}, "histograms": {...}}.
     */
    void writeJson(std::ostream &out, bool pretty = true) const;

    /** Plain-text summary table (support::TextTable layout). */
    void printTable(std::ostream &out) const;

    /** Remove every metric (invalidates previously returned refs). */
    void clear();

    /** Zero every metric, keeping registrations (and refs) alive. */
    void resetValues();

  private:
    mutable std::mutex _mutex;
    std::map<std::string, std::unique_ptr<Counter>> _counters;
    std::map<std::string, std::unique_ptr<Gauge>> _gauges;
    std::map<std::string, std::unique_ptr<Histogram>> _histograms;
};

} // namespace stats::obs
