#include "observability/metrics.hpp"

#include <cmath>
#include <limits>

#include "support/json.hpp"
#include "support/table.hpp"

namespace stats::obs {

namespace {

/** Base-10 log bucketing, 9 buckets per decade (1,2,..,9,10,20,..). */
int
bucketIndex(double v)
{
    if (v <= 0.0)
        return std::numeric_limits<int>::min() / 2;
    const double exponent = std::floor(std::log10(v));
    const double base = std::pow(10.0, exponent);
    int mantissa = static_cast<int>(std::ceil(v / base - 1e-12));
    if (mantissa > 9) { // Rounding pushed us into the next decade.
        mantissa = 1;
        return static_cast<int>(exponent + 1) * 9 + (mantissa - 1);
    }
    return static_cast<int>(exponent) * 9 + (mantissa - 1);
}

/** Upper bound of a bucket index (inverse of bucketIndex). */
double
bucketUpperBound(int index)
{
    if (index == std::numeric_limits<int>::min() / 2)
        return 0.0;
    const int decade = index >= 0 ? index / 9
                                  : -((-index + 8) / 9);
    const int mantissa = index - decade * 9 + 1;
    return mantissa * std::pow(10.0, decade);
}

} // namespace

void
Histogram::observe(double v)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_count == 0) {
        _min = v;
        _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    ++_count;
    _sum += v;
    ++_buckets[bucketIndex(v)];
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Snapshot snap;
    snap.count = _count;
    snap.sum = _sum;
    snap.min = _min;
    snap.max = _max;
    for (const auto &[index, count] : _buckets)
        snap.buckets.emplace_back(bucketUpperBound(index), count);
    return snap;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _count = 0;
    _sum = 0.0;
    _min = 0.0;
    _max = 0.0;
    _buckets.clear();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry instance;
    return instance;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto &slot = _gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _counters.find(name);
    return it == _counters.end() ? nullptr : it->second.get();
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _gauges.find(name);
    return it == _gauges.end() ? nullptr : it->second.get();
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _histograms.find(name);
    return it == _histograms.end() ? nullptr : it->second.get();
}

void
MetricsRegistry::writeJson(std::ostream &out, bool pretty) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    support::JsonWriter json(out, pretty);
    json.beginObject();
    json.field("schemaVersion", 1);

    json.key("counters").beginObject();
    for (const auto &[name, counter] : _counters)
        json.field(name, counter->value());
    json.endObject();

    json.key("gauges").beginObject();
    for (const auto &[name, gauge] : _gauges)
        json.field(name, gauge->value());
    json.endObject();

    json.key("histograms").beginObject();
    for (const auto &[name, histogram] : _histograms) {
        const auto snap = histogram->snapshot();
        json.key(name).beginObject();
        json.field("count", snap.count)
            .field("sum", snap.sum)
            .field("min", snap.min)
            .field("max", snap.max)
            .field("mean", snap.mean());
        json.key("buckets").beginArray();
        for (const auto &[bound, count] : snap.buckets) {
            json.beginObject()
                .field("le", bound)
                .field("count", count)
                .endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endObject();

    json.endObject();
    out << "\n";
}

void
MetricsRegistry::printTable(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    support::TextTable table({"metric", "kind", "value"});
    for (const auto &[name, counter] : _counters)
        table.addRow({name, "counter", std::to_string(counter->value())});
    for (const auto &[name, gauge] : _gauges) {
        table.addRow({name, "gauge",
                      support::TextTable::formatDouble(gauge->value(), 6)});
    }
    for (const auto &[name, histogram] : _histograms) {
        const auto snap = histogram->snapshot();
        table.addRow(
            {name, "histogram",
             "n=" + std::to_string(snap.count) +
                 " mean=" + support::TextTable::formatDouble(snap.mean(), 6) +
                 " max=" + support::TextTable::formatDouble(snap.max, 6)});
    }
    table.print(out);
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _counters.clear();
    _gauges.clear();
    _histograms.clear();
}

void
MetricsRegistry::resetValues()
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (auto &[name, counter] : _counters)
        counter->reset();
    for (auto &[name, gauge] : _gauges)
        gauge->reset();
    for (auto &[name, histogram] : _histograms)
        histogram->reset();
}

} // namespace stats::obs
