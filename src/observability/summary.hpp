/**
 * @file
 * Aggregation of a collected trace into the speculation metrics the
 * evaluation cares about: commit/squash rates, re-executions per
 * group, frontier stall time, validation latency, and per-kind work
 * time. The same numbers can be pushed into a MetricsRegistry,
 * dumped as JSON (the `--metrics` file), or printed as a table.
 *
 * Every derived quantity is defined in docs/OBSERVABILITY.md
 * ("Derived metrics"); tests reconcile the counts against the
 * engine's own EngineStats counters.
 */

#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <vector>

#include "observability/metrics.hpp"
#include "observability/trace.hpp"

namespace stats::obs {

/** Metrics derived from one collected trace. */
struct TraceSummary
{
    /** Event count per EventType (indexed by the enum value). */
    std::array<std::int64_t, kEventTypeCount> counts{};

    /** Distinct group indices seen in group-scoped events. */
    std::int64_t groupsSeen = 0;

    /** Commits / (commits + squashes): the commit rate. */
    double commitRate = 1.0;

    /** Squashes / (commits + squashes). */
    double squashRate = 0.0;

    /** Re-executions per group seen. */
    double reexecsPerGroup = 0.0;

    /**
     * Sum over committed groups of (commit time - the group's last
     * body/re-execution end): time the commit frontier sat on a
     * finished body waiting for validation.
     */
    double frontierStallSeconds = 0.0;

    /**
     * Per consumer group: time from the producer's Commit to the
     * consumer's ValidateMatch (covers waiting on auxiliary results
     * and producer re-executions).
     */
    double validationLatencyTotal = 0.0;
    double validationLatencyMax = 0.0;
    std::int64_t validationLatencyCount = 0;

    /** Span time per task kind, seconds (virtual or wall). */
    double auxSeconds = 0.0;
    double bodySeconds = 0.0;
    double reexecSeconds = 0.0;
    double recoverySeconds = 0.0;

    /** Ring-buffer overwrites at collection time. */
    std::uint64_t droppedEvents = 0;

    std::int64_t count(EventType type) const
    {
        return counts[static_cast<std::size_t>(type)];
    }

    double
    validationLatencyMean() const
    {
        return validationLatencyCount > 0
                   ? validationLatencyTotal / validationLatencyCount
                   : 0.0;
    }
};

/** Aggregate a seq-sorted event list (as returned by collect()). */
TraceSummary summarizeTrace(const std::vector<Event> &events,
                            std::uint64_t dropped_events = 0);

/** Push the summary into a registry under the "spec." prefix. */
void fillRegistry(const TraceSummary &summary, MetricsRegistry &registry);

/** The `--metrics` JSON document: summary + per-type counts. */
void writeSummaryJson(std::ostream &out, const TraceSummary &summary,
                      bool pretty = true);

/** Plain-text summary (support::TextTable layout). */
void printSummaryTable(std::ostream &out, const TraceSummary &summary);

} // namespace stats::obs
