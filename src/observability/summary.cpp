#include "observability/summary.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/json.hpp"
#include "support/table.hpp"

namespace stats::obs {

TraceSummary
summarizeTrace(const std::vector<Event> &events,
               std::uint64_t dropped_events)
{
    TraceSummary summary;
    summary.droppedEvents = dropped_events;

    std::set<std::int32_t> groups;
    // Last body-or-reexec end time per group (for frontier stall).
    std::map<std::int32_t, double> last_body_end;
    // Commit time per group (for validation latency of group + 1).
    std::map<std::int32_t, double> commit_ts;

    std::map<std::int32_t, double> span_begin; // Keyed by track.

    for (const Event &event : events) {
        ++summary.counts[static_cast<std::size_t>(event.type)];
        if (event.group >= 0)
            groups.insert(event.group);

        if (isSpanStart(event.type)) {
            span_begin[event.track] = event.ts;
            continue;
        }
        if (isSpanEnd(event.type)) {
            const auto it = span_begin.find(event.track);
            const double duration =
                it != span_begin.end() ? event.ts - it->second : 0.0;
            switch (event.type) {
              case EventType::AuxEnd:
                summary.auxSeconds += duration;
                break;
              case EventType::BodyEnd:
                summary.bodySeconds += duration;
                last_body_end[event.group] = event.ts;
                break;
              case EventType::ReExecEnd:
                summary.reexecSeconds += duration;
                last_body_end[event.group] = event.ts;
                break;
              case EventType::RecoveryEnd:
                summary.recoverySeconds += duration;
                break;
              default:
                break;
            }
            continue;
        }

        switch (event.type) {
          case EventType::Commit: {
            commit_ts[event.group] = event.ts;
            const auto body = last_body_end.find(event.group);
            if (body != last_body_end.end())
                summary.frontierStallSeconds +=
                    std::max(0.0, event.ts - body->second);
            break;
          }
          case EventType::ValidateMatch: {
            const auto producer = commit_ts.find(event.group - 1);
            if (producer != commit_ts.end()) {
                const double latency =
                    std::max(0.0, event.ts - producer->second);
                summary.validationLatencyTotal += latency;
                summary.validationLatencyMax =
                    std::max(summary.validationLatencyMax, latency);
                ++summary.validationLatencyCount;
            }
            break;
          }
          default:
            break;
        }
    }

    summary.groupsSeen = static_cast<std::int64_t>(groups.size());

    const double commits =
        static_cast<double>(summary.count(EventType::Commit));
    const double squashes =
        static_cast<double>(summary.count(EventType::Squash));
    if (commits + squashes > 0.0) {
        summary.commitRate = commits / (commits + squashes);
        summary.squashRate = squashes / (commits + squashes);
    }
    if (summary.groupsSeen > 0) {
        summary.reexecsPerGroup =
            static_cast<double>(summary.count(EventType::ReExecStart)) /
            static_cast<double>(summary.groupsSeen);
    }
    return summary;
}

void
fillRegistry(const TraceSummary &summary, MetricsRegistry &registry)
{
    for (int i = 0; i < kEventTypeCount; ++i) {
        const auto type = static_cast<EventType>(i);
        auto &counter = registry.counter(std::string("spec.events.") +
                                         eventTypeName(type));
        counter.add(summary.count(type) - counter.value());
    }
    registry.gauge("spec.commitRate").set(summary.commitRate);
    registry.gauge("spec.squashRate").set(summary.squashRate);
    registry.gauge("spec.reexecsPerGroup").set(summary.reexecsPerGroup);
    registry.gauge("spec.frontierStallSeconds")
        .set(summary.frontierStallSeconds);
    registry.gauge("spec.validationLatencyMeanSeconds")
        .set(summary.validationLatencyMean());
    registry.gauge("spec.validationLatencyMaxSeconds")
        .set(summary.validationLatencyMax);
    registry.gauge("spec.auxSeconds").set(summary.auxSeconds);
    registry.gauge("spec.bodySeconds").set(summary.bodySeconds);
    registry.gauge("spec.reexecSeconds").set(summary.reexecSeconds);
    registry.gauge("spec.recoverySeconds").set(summary.recoverySeconds);
}

void
writeSummaryJson(std::ostream &out, const TraceSummary &summary,
                 bool pretty)
{
    support::JsonWriter json(out, pretty);
    json.beginObject();
    json.field("schemaVersion", kSchemaVersion);

    json.key("events").beginObject();
    for (int i = 0; i < kEventTypeCount; ++i) {
        const auto type = static_cast<EventType>(i);
        json.field(eventTypeName(type), summary.count(type));
    }
    json.endObject();

    json.field("groupsSeen", summary.groupsSeen)
        .field("commits", summary.count(EventType::Commit))
        .field("squashes", summary.count(EventType::Squash))
        .field("commitRate", summary.commitRate)
        .field("squashRate", summary.squashRate)
        .field("reexecsPerGroup", summary.reexecsPerGroup)
        .field("frontierStallSeconds", summary.frontierStallSeconds)
        .field("validationLatencyMeanSeconds",
               summary.validationLatencyMean())
        .field("validationLatencyMaxSeconds", summary.validationLatencyMax)
        .field("auxSeconds", summary.auxSeconds)
        .field("bodySeconds", summary.bodySeconds)
        .field("reexecSeconds", summary.reexecSeconds)
        .field("recoverySeconds", summary.recoverySeconds)
        .field("droppedEvents",
               static_cast<std::int64_t>(summary.droppedEvents));
    json.endObject();
    out << "\n";
}

void
printSummaryTable(std::ostream &out, const TraceSummary &summary)
{
    support::TextTable table({"metric", "value"});
    const auto fmt = [](double v) {
        return support::TextTable::formatDouble(v, 6);
    };
    table.addRow({"groups seen", std::to_string(summary.groupsSeen)});
    table.addRow({"commits",
                  std::to_string(summary.count(EventType::Commit))});
    table.addRow({"squashes",
                  std::to_string(summary.count(EventType::Squash))});
    table.addRow({"validate matches",
                  std::to_string(summary.count(EventType::ValidateMatch))});
    table.addRow(
        {"validate mismatches",
         std::to_string(summary.count(EventType::ValidateMismatch))});
    table.addRow({"re-executions",
                  std::to_string(summary.count(EventType::ReExecStart))});
    table.addRow({"aborts",
                  std::to_string(summary.count(EventType::Abort))});
    table.addRow({"commit rate", fmt(summary.commitRate)});
    table.addRow({"squash rate", fmt(summary.squashRate)});
    table.addRow({"re-execs / group", fmt(summary.reexecsPerGroup)});
    table.addRow({"frontier stall (s)", fmt(summary.frontierStallSeconds)});
    table.addRow({"validation latency mean (s)",
                  fmt(summary.validationLatencyMean())});
    table.addRow({"validation latency max (s)",
                  fmt(summary.validationLatencyMax)});
    table.addRow({"aux time (s)", fmt(summary.auxSeconds)});
    table.addRow({"body time (s)", fmt(summary.bodySeconds)});
    table.addRow({"re-exec time (s)", fmt(summary.reexecSeconds)});
    table.addRow({"recovery time (s)", fmt(summary.recoverySeconds)});
    table.addRow({"tasks stolen",
                  std::to_string(summary.count(EventType::TaskStolen))});
    table.addRow({"worker parks",
                  std::to_string(summary.count(EventType::WorkerPark))});
    table.addRow({"worker unparks",
                  std::to_string(summary.count(EventType::WorkerUnpark))});
    table.addRow({"dropped events",
                  std::to_string(summary.droppedEvents)});
    table.print(out);
}

} // namespace stats::obs
