/**
 * @file
 * The middle-end compiler (paper section 3.4, "Generating IR with
 * auxiliary code").
 *
 * For each state dependence the middle-end deep-clones its
 * computeOutput() and links the clone to the dependence's metadata.
 * Cloning follows the call graph bottom-up: a callee is cloned only
 * if it (or one of its callees) includes a tradeoff, and cloning
 * stops at a maximum number of instructions per clone. The included
 * tradeoffs are cloned too (new metadata entries), so STATS can
 * control the auxiliary code's quality independently. Finally, the
 * middle-end sets the tradeoffs outside auxiliary code to their
 * default value and deletes their metadata entries — the resulting
 * IR "includes only tradeoffs that are part of auxiliary code".
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace stats::midend {

/** What the auxiliary-code generation did. */
struct CloneReport
{
    std::vector<std::string> clonedFunctions;
    std::vector<std::string> clonedTradeoffs;
    std::size_t instructionsAdded = 0;
    bool budgetReached = false;
};

/**
 * Generate auxiliary code for every state dependence without one.
 *
 * @param max_instructions cloning budget per computeOutput clone
 */
CloneReport generateAuxiliaryCode(ir::Module &module,
                                  std::size_t max_instructions = 4096);

/**
 * Freeze every non-auxiliary tradeoff to its default value (constant
 * folding / type setting / callee setting) and delete its metadata.
 *
 * @return names of the frozen tradeoffs.
 */
std::vector<std::string> freezeDefaultTradeoffs(ir::Module &module);

/** Full middle-end pipeline: clone, then freeze. */
CloneReport runMiddleEnd(ir::Module &module,
                         std::size_t max_instructions = 4096);

} // namespace stats::midend
