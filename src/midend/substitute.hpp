/**
 * @file
 * Tradeoff substitution: the "setting a tradeoff" machinery of paper
 * section 3.4, shared by the middle-end (freezing defaults) and the
 * back-end (instantiating an autotuner configuration).
 *
 * A tradeoff reference in the IR is a call to the tradeoff's
 * placeholder function. Setting the tradeoff:
 *  - constant: the placeholder call is replaced with the constant;
 *  - data type: the referenced variable is retyped and casts are
 *    inserted according to its uses (a round-trip through the chosen
 *    narrower type);
 *  - function: the placeholder call's callee is replaced.
 *
 * The value identified by an index is fetched by *executing* the
 * tradeoff's getValue() IR function (the paper JITs it with LLVM; we
 * interpret it).
 */

#pragma once

#include <cstdint>
#include <string>

#include "ir/interpreter.hpp"
#include "ir/ir.hpp"

namespace stats::midend {

/** A fetched tradeoff value, ready to be set. */
struct ChosenValue
{
    ir::TradeoffKind kind = ir::TradeoffKind::Constant;
    ir::RtValue constant;  ///< Constant kind.
    std::string name;      ///< Type or function name otherwise.
};

/** Run the tradeoff's defaultIndex function. */
std::int64_t defaultIndexOf(const ir::Module &module,
                            const ir::TradeoffMeta &meta);

/** Run the tradeoff's size function (number of values). */
std::int64_t sizeOf(const ir::Module &module,
                    const ir::TradeoffMeta &meta);

/** Fetch the value at `index` (compile-time getValue execution). */
ChosenValue evaluateTradeoffValue(const ir::Module &module,
                                  const ir::TradeoffMeta &meta,
                                  std::int64_t index);

/**
 * Replace every reference to the tradeoff's placeholder in the
 * module according to the chosen value.
 *
 * @return number of call sites rewritten.
 */
std::size_t applyTradeoff(ir::Module &module,
                          const ir::TradeoffMeta &meta,
                          const ChosenValue &value);

} // namespace stats::midend
