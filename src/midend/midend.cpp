#include "midend/midend.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "ir/call_graph.hpp"
#include "midend/substitute.hpp"
#include "support/log.hpp"

namespace stats::midend {

namespace {

/** Suffix for clones belonging to state dependence `ordinal`. */
std::string
auxSuffix(std::size_t ordinal)
{
    return "__aux" + std::to_string(ordinal);
}

} // namespace

CloneReport
generateAuxiliaryCode(ir::Module &module, std::size_t max_instructions)
{
    CloneReport report;
    const ir::CallGraph graph(module);
    const auto carriers = graph.tradeoffCarriers();

    for (std::size_t d = 0; d < module.stateDeps.size(); ++d) {
        ir::StateDepMeta &dep = module.stateDeps[d];
        if (!dep.auxFn.empty())
            continue;
        const ir::Function *compute = module.findFunction(dep.computeFn);
        if (!compute)
            support::panic("middle-end: statedep ", dep.name,
                           " has no computeOutput @", dep.computeFn);

        // Decide what to clone: computeOutput always; its reachable
        // callees only when they carry a tradeoff (bottom-up
        // analysis), stopping at the instruction budget.
        std::vector<std::string> to_clone{dep.computeFn};
        std::size_t budget = compute->instructionCount();
        bool dep_truncated = false;
        for (const auto &callee : graph.reachableFrom(dep.computeFn)) {
            if (callee == dep.computeFn || !carriers.count(callee))
                continue;
            const ir::Function *fn = module.findFunction(callee);
            if (budget + fn->instructionCount() > max_instructions) {
                report.budgetReached = true;
                dep_truncated = true;
                continue;
            }
            budget += fn->instructionCount();
            to_clone.push_back(callee);
        }

        // Tradeoffs included in the cloned code get cloned metadata
        // (one new entry per cloned tradeoff) so auxiliary quality is
        // controlled independently.
        std::set<std::string> cloned_set(to_clone.begin(),
                                         to_clone.end());
        std::map<std::string, std::string> placeholder_map;
        std::vector<ir::TradeoffMeta> new_tradeoffs;
        for (const auto &meta : module.tradeoffs) {
            if (meta.auxClone)
                continue;
            bool referenced = false;
            for (const auto &fn_name : to_clone) {
                const ir::Function *fn = module.findFunction(fn_name);
                for (const auto &block : fn->blocks) {
                    for (const auto &inst : block.instructions) {
                        if (inst.op == ir::Opcode::Call &&
                            inst.callee == meta.placeholder) {
                            referenced = true;
                        }
                    }
                }
            }
            if (!referenced)
                continue;

            ir::TradeoffMeta clone = meta;
            clone.name = "aux::" + meta.name;
            clone.placeholder = meta.placeholder + auxSuffix(d);
            clone.auxClone = true;
            clone.origin = meta.name;
            placeholder_map[meta.placeholder] = clone.placeholder;
            report.clonedTradeoffs.push_back(clone.name);
            new_tradeoffs.push_back(std::move(clone));

            // Clone the placeholder function itself.
            if (const ir::Function *ph =
                    module.findFunction(meta.placeholder)) {
                ir::Function ph_clone = *ph;
                ph_clone.name = meta.placeholder + auxSuffix(d);
                module.auxClones.push_back(
                    {ph_clone.name, meta.placeholder, dep.name, 0});
                module.functions.push_back(std::move(ph_clone));
            }
        }

        // Deep-clone the selected functions, rewriting internal calls
        // to cloned functions and tradeoff placeholders.
        for (const auto &fn_name : to_clone) {
            ir::Function clone = *module.findFunction(fn_name);
            clone.name = fn_name + auxSuffix(d);
            for (auto &block : clone.blocks) {
                for (auto &inst : block.instructions) {
                    if (inst.op != ir::Opcode::Call)
                        continue;
                    auto mapped = placeholder_map.find(inst.callee);
                    if (mapped != placeholder_map.end()) {
                        inst.callee = mapped->second;
                    } else if (cloned_set.count(inst.callee)) {
                        inst.callee = inst.callee + auxSuffix(d);
                    }
                }
            }
            report.instructionsAdded += clone.instructionCount();
            report.clonedFunctions.push_back(clone.name);
            // Origin-of-clone metadata: the static aux-clone auditor
            // (src/analysis/clone_audit.*) needs the provenance to
            // prove the clone faithful to its origin.
            module.auxClones.push_back(
                {clone.name, fn_name, dep.name, 0});
            module.functions.push_back(std::move(clone));
        }

        for (auto &meta : new_tradeoffs)
            module.tradeoffs.push_back(std::move(meta));
        ir::StateDepMeta *linked = module.findStateDep(dep.name);
        linked->auxFn = dep.computeFn + auxSuffix(d);
        linked->truncated = dep_truncated;
    }
    return report;
}

std::vector<std::string>
freezeDefaultTradeoffs(ir::Module &module)
{
    std::vector<std::string> frozen;
    // Snapshot names first: applyTradeoff mutates the module.
    std::vector<std::string> originals;
    for (const auto &meta : module.tradeoffs) {
        if (!meta.auxClone)
            originals.push_back(meta.name);
    }

    for (const auto &name : originals) {
        const ir::TradeoffMeta meta = *module.findTradeoff(name);
        const std::int64_t index = defaultIndexOf(module, meta);
        const ChosenValue value =
            evaluateTradeoffValue(module, meta, index);
        applyTradeoff(module, meta, value);
        frozen.push_back(name);
    }

    // Delete the frozen entries: the middle-end's output "includes
    // only tradeoffs that are part of auxiliary code".
    module.tradeoffs.erase(
        std::remove_if(module.tradeoffs.begin(), module.tradeoffs.end(),
                       [](const ir::TradeoffMeta &meta) {
                           return !meta.auxClone;
                       }),
        module.tradeoffs.end());
    return frozen;
}

CloneReport
runMiddleEnd(ir::Module &module, std::size_t max_instructions)
{
    CloneReport report = generateAuxiliaryCode(module, max_instructions);
    freezeDefaultTradeoffs(module);
    return report;
}

} // namespace stats::midend
