#include "midend/substitute.hpp"

#include "ir/exec_tier.hpp"
#include "support/log.hpp"

namespace stats::midend {

std::int64_t
defaultIndexOf(const ir::Module &module, const ir::TradeoffMeta &meta)
{
    ir::ExecutableModule exec(module);
    return exec.call(meta.defaultIndexFn, {}).asInt();
}

std::int64_t
sizeOf(const ir::Module &module, const ir::TradeoffMeta &meta)
{
    ir::ExecutableModule exec(module);
    return exec.call(meta.sizeFn, {}).asInt();
}

ChosenValue
evaluateTradeoffValue(const ir::Module &module,
                      const ir::TradeoffMeta &meta, std::int64_t index)
{
    ChosenValue value;
    value.kind = meta.kind;
    if (meta.kind == ir::TradeoffKind::Constant) {
        ir::ExecutableModule exec(module);
        value.constant =
            exec.call(meta.getValueFn, {ir::RtValue::ofInt(index)});
        return value;
    }
    if (index < 0 ||
        index >= static_cast<std::int64_t>(meta.nameChoices.size())) {
        support::panic("tradeoff ", meta.name, ": choice index ", index,
                       " out of range");
    }
    value.name = meta.nameChoices[static_cast<std::size_t>(index)];
    return value;
}

namespace {

ir::Type
typeFromName(const std::string &name)
{
    if (name == "f32")
        return ir::Type::F32;
    if (name == "f64")
        return ir::Type::F64;
    if (name == "i64")
        return ir::Type::I64;
    support::panic("unknown type-tradeoff choice '", name, "'");
}

} // namespace

std::size_t
applyTradeoff(ir::Module &module, const ir::TradeoffMeta &meta,
              const ChosenValue &value)
{
    std::size_t rewritten = 0;
    for (auto &fn : module.functions) {
        for (auto &block : fn.blocks) {
            for (std::size_t i = 0; i < block.instructions.size(); ++i) {
                ir::Instruction &inst = block.instructions[i];
                if (inst.op != ir::Opcode::Call ||
                    inst.callee != meta.placeholder) {
                    continue;
                }
                ++rewritten;

                switch (value.kind) {
                  case ir::TradeoffKind::Constant: {
                    // Replace the call with the constant value.
                    ir::Instruction replacement;
                    replacement.op = ir::Opcode::Cast;
                    replacement.type = inst.type;
                    replacement.result = inst.result;
                    if (ir::isFloating(inst.type)) {
                        replacement.operands.push_back(
                            ir::Operand::constFloat(
                                value.constant.asFloat()));
                    } else {
                        replacement.operands.push_back(
                            ir::Operand::constInt(
                                value.constant.asInt()));
                    }
                    inst = std::move(replacement);
                    break;
                  }
                  case ir::TradeoffKind::DataType: {
                    // Retype the variable: round-trip the operand
                    // through the chosen type, inserting extra casts
                    // according to the use (the original result type).
                    const ir::Type chosen = typeFromName(value.name);
                    if (inst.operands.size() != 1) {
                        support::panic(
                            "type tradeoff placeholder @",
                            meta.placeholder,
                            " must take exactly one operand");
                    }
                    if (chosen == inst.type) {
                        ir::Instruction identity;
                        identity.op = ir::Opcode::Cast;
                        identity.type = inst.type;
                        identity.result = inst.result;
                        identity.operands = inst.operands;
                        inst = std::move(identity);
                    } else {
                        ir::Instruction narrow;
                        narrow.op = ir::Opcode::Cast;
                        narrow.type = chosen;
                        narrow.result = inst.result + "__narrow";
                        narrow.operands = inst.operands;

                        ir::Instruction widen;
                        widen.op = ir::Opcode::Cast;
                        widen.type = inst.type;
                        widen.result = inst.result;
                        widen.operands.push_back(
                            ir::Operand::temp(narrow.result));

                        inst = widen;
                        block.instructions.insert(
                            block.instructions.begin() +
                                static_cast<std::ptrdiff_t>(i),
                            std::move(narrow));
                        ++i; // Skip over the pair we just created.
                    }
                    break;
                  }
                  case ir::TradeoffKind::FunctionChoice:
                    // Replace the callee with the chosen function.
                    inst.callee = value.name;
                    break;
                }
            }
        }
    }
    return rewritten;
}

} // namespace stats::midend
