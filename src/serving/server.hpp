/**
 * @file
 * The in-process serving core behind statsd (docs/SERVING.md §§3-5):
 * admission → tenant queues → WDRR dispatch → plan runner, plus the
 * request registry `status`/`result`/`replay-fetch` read from.
 *
 * The daemon (daemon.hpp) is a thin socket front-end over this class;
 * tests drive it directly. A pool of *execution workers*
 * (`Options.executionWorkers`) pulls fused batches from the
 * scheduler; record/replay state is scoped per run (each execution
 * installs its own thread-local ReplaySession), so independent plans
 * execute concurrently without mode-flip races. A compatibility-aware
 * in-flight limit keeps two batchable same-key dispatches from
 * running at once — late same-key arrivals accumulate into one
 * bigger fusion instead.
 *
 * Results of cacheable plans land in a bounded LRU **result cache**
 * keyed by (plan fingerprint, root seed): a later submission of the
 * same work completes at admission time, byte-identical to a
 * recompute (replay-fetch bytes included). Plans opt out with
 * `noCache` (`stats-cli submit --no-cache`).
 *
 * Request lifecycle: Queued → Running → Done | Failed; a rejected
 * request never enters the registry (the verdict travels back in the
 * submit response). Finished entries evicted by the registry bound
 * answer Expired; ids never issued answer Unknown.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serving/admission.hpp"
#include "serving/execution_plan.hpp"
#include "serving/runner.hpp"
#include "serving/scheduler.hpp"

namespace stats::serving {

enum class RequestState : std::uint8_t
{
    Queued,
    Running,
    Done,
    Failed,
    Unknown, ///< No such request id was ever issued.
    Expired, ///< Finished, then aged out of the bounded registry.
};

const char *requestStateName(RequestState state);

/** What submit() decided. */
struct SubmitOutcome
{
    /** Valid when admitted (verdict.reason == None). */
    std::uint64_t requestId = 0;
    AdmissionVerdict verdict;

    bool admitted() const { return verdict.admitted(); }
};

/** Registry snapshot of one request. */
struct RequestStatus
{
    RequestState state = RequestState::Unknown;
    std::string tenant;
    /** Valid in Done/Failed states. */
    PlanResult result;
};

class Server
{
  public:
    struct Options
    {
        TenantQuota defaultQuota;
        /** Run the speculation-safety lint at admission. */
        bool runAnalysis = true;
        /** WDRR quantum (plan units granted per tenant visit). */
        double quantum = 1.0;
        /**
         * Finished requests kept for status/result/replay-fetch.
         * Beyond this, the oldest finished entries are evicted (their
         * ids then answer Expired), so a long-lived daemon's registry
         * stays bounded. 0 means keep everything.
         */
        std::size_t maxRetainedResults = 4096;
        /**
         * Execution worker threads pulling batches from the
         * scheduler. 0 picks the default: half the hardware
         * concurrency, at least 1.
         */
        std::size_t executionWorkers = 0;
        /**
         * Bound on resident (plan fingerprint, root seed) result-
         * cache entries, evicted LRU. 0 disables the cache.
         */
        std::size_t resultCacheCapacity = 256;
        /** Monotonic seconds; injectable for deterministic tests. */
        std::function<double()> clock;
    };

    Server();
    explicit Server(Options options);
    /** Drains in-flight work, then stops the workers. */
    ~Server();

    /** Configure one tenant (quota + scheduler weight). */
    void setQuota(const std::string &tenant, TenantQuota quota);

    /** Admit binary plan bytes (the wire form). */
    SubmitOutcome submit(const std::string &plan_bytes);

    /** Admit an already-decoded plan. */
    SubmitOutcome submitPlan(const ExecutionPlan &plan);

    /** Registry lookup (Unknown/Expired state for a bad id). */
    RequestStatus status(std::uint64_t request_id) const;

    /** Serialized RecordLog of a finished request; "" when absent. */
    std::string replayLog(std::uint64_t request_id) const;

    /**
     * Stop admitting (new submits reject with Draining), run every
     * queued plan, and return the number of requests completed over
     * the server's lifetime.
     */
    std::uint64_t drain();

    bool draining() const;

    /** Queued-but-not-dispatched plans right now. */
    std::size_t queueDepth() const;

    std::uint64_t completedCount() const;

    /** Worker threads actually running (for tests/diagnostics). */
    std::size_t workerCount() const { return _workers.size(); }

    /** Resident result-cache entries. */
    std::size_t resultCacheSize() const;

    /** Requests answered from the result cache so far. */
    std::uint64_t resultCacheHits() const;

  private:
    struct Request
    {
        RequestState state = RequestState::Queued;
        std::shared_ptr<const ExecutionPlan> plan;
        PlanResult result;
    };

    using CacheList = std::list<std::pair<std::string, PlanResult>>;

    void workerLoop();
    /** Registry bookkeeping for one finished request (lock held). */
    void finishRequest(std::uint64_t request_id, PlanResult result);
    /** LRU lookup; nullptr on miss (lock held). */
    const PlanResult *cacheLookup(const std::string &key);
    /** LRU insert/update + eviction (lock held). */
    void cacheStore(const std::string &key, const PlanResult &result);

    Options _options;
    mutable std::mutex _mutex;
    std::condition_variable _wake;     ///< Worker wake-up.
    std::condition_variable _idle;     ///< drain() waits here.
    AdmissionController _admission;
    PlanScheduler _scheduler;
    PlanRunner _runner;
    std::map<std::uint64_t, Request> _requests;
    /** Finished ids, oldest first — the eviction order. */
    std::deque<std::uint64_t> _finishedOrder;

    /** MRU-first result cache + index into it. */
    CacheList _cacheLru;
    std::unordered_map<std::string, CacheList::iterator> _cacheIndex;
    std::uint64_t _cacheHits = 0;

    /** Compatibility keys of in-flight *batchable* dispatches. */
    std::set<std::uint64_t> _inFlightKeys;

    std::uint64_t _nextRequestId = 1;
    std::uint64_t _completed = 0;
    std::size_t _runningPlans = 0;
    bool _draining = false;
    bool _stop = false;
    std::vector<std::thread> _workers;
};

} // namespace stats::serving
