/**
 * @file
 * The in-process serving core behind statsd (docs/SERVING.md §§3-5):
 * admission → tenant queues → WDRR dispatch → plan runner, plus the
 * request registry `status`/`result`/`replay-fetch` read from.
 *
 * The daemon (daemon.hpp) is a thin socket front-end over this class;
 * tests drive it directly. One background *dispatcher thread* owns
 * all plan execution, which keeps the global ReplaySession's
 * quiescent-time contract: served engine runs are serialized, each
 * wrapped in its own record scope.
 *
 * Request lifecycle: Queued → Running → Done | Failed; a rejected
 * request never enters the registry (the verdict travels back in the
 * submit response).
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serving/admission.hpp"
#include "serving/execution_plan.hpp"
#include "serving/runner.hpp"
#include "serving/scheduler.hpp"

namespace stats::serving {

enum class RequestState : std::uint8_t
{
    Queued,
    Running,
    Done,
    Failed,
    Unknown, ///< No such request id.
};

const char *requestStateName(RequestState state);

/** What submit() decided. */
struct SubmitOutcome
{
    /** Valid when admitted (verdict.reason == None). */
    std::uint64_t requestId = 0;
    AdmissionVerdict verdict;

    bool admitted() const { return verdict.admitted(); }
};

/** Registry snapshot of one request. */
struct RequestStatus
{
    RequestState state = RequestState::Unknown;
    std::string tenant;
    /** Valid in Done/Failed states. */
    PlanResult result;
};

class Server
{
  public:
    struct Options
    {
        TenantQuota defaultQuota;
        /** Run the speculation-safety lint at admission. */
        bool runAnalysis = true;
        /** WDRR quantum (plan units granted per tenant visit). */
        double quantum = 1.0;
        /**
         * Finished requests kept for status/result/replay-fetch.
         * Beyond this, the oldest finished entries are evicted (their
         * ids then answer Unknown), so a long-lived daemon's registry
         * stays bounded. 0 means keep everything.
         */
        std::size_t maxRetainedResults = 4096;
        /** Monotonic seconds; injectable for deterministic tests. */
        std::function<double()> clock;
    };

    Server();
    explicit Server(Options options);
    /** Drains in-flight work, then stops the dispatcher. */
    ~Server();

    /** Configure one tenant (quota + scheduler weight). */
    void setQuota(const std::string &tenant, TenantQuota quota);

    /** Admit binary plan bytes (the wire form). */
    SubmitOutcome submit(const std::string &plan_bytes);

    /** Admit an already-decoded plan. */
    SubmitOutcome submitPlan(const ExecutionPlan &plan);

    /** Registry lookup (Unknown state for a bad id). */
    RequestStatus status(std::uint64_t request_id) const;

    /** Serialized RecordLog of a finished request; "" when absent. */
    std::string replayLog(std::uint64_t request_id) const;

    /**
     * Stop admitting (new submits reject with Draining), run every
     * queued plan, and return the number of requests completed over
     * the server's lifetime.
     */
    std::uint64_t drain();

    bool draining() const;

    /** Queued-but-not-dispatched plans right now. */
    std::size_t queueDepth() const;

    std::uint64_t completedCount() const;

  private:
    struct Request
    {
        RequestState state = RequestState::Queued;
        std::shared_ptr<const ExecutionPlan> plan;
        PlanResult result;
    };

    void dispatchLoop();

    Options _options;
    mutable std::mutex _mutex;
    std::condition_variable _wake;     ///< Dispatcher wake-up.
    std::condition_variable _idle;     ///< drain() waits here.
    AdmissionController _admission;
    PlanScheduler _scheduler;
    PlanRunner _runner;
    std::map<std::uint64_t, Request> _requests;
    /** Finished ids, oldest first — the eviction order. */
    std::deque<std::uint64_t> _finishedOrder;
    std::uint64_t _nextRequestId = 1;
    std::uint64_t _completed = 0;
    std::size_t _running = 0;
    bool _draining = false;
    bool _stop = false;
    std::thread _dispatcher;
};

} // namespace stats::serving
