/**
 * @file
 * Shared entry point behind the `statsd` binary and `statscc serve`:
 * option parsing for the daemon's knobs, the listen loop, and the
 * shutdown report (docs/SERVING.md §7).
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "serving/admission.hpp"

namespace stats::serving {

struct ServeArgs
{
    std::string socketPath = "statsd.sock";
    /** Run the speculation-safety lint at admission. */
    bool runAnalysis = true;
    /** WDRR quantum (plan units per tenant visit). */
    double quantum = 1.0;
    /** Default quota spec: "rate:burst:maxQueued:weight"; "" keeps
     *  the built-in TenantQuota defaults. */
    std::string defaultQuotaSpec;
    /** Per-tenant specs: "tenant:rate:burst:maxQueued:weight". */
    std::vector<std::string> quotaSpecs;
    /** Execution worker threads; 0 = hw_concurrency/2 (min 1). */
    std::size_t executionWorkers = 0;
    /** Enable the trace layer and dump serving metrics on exit. */
    std::string metricsPath;
    bool trace = false;
};

/**
 * Parse "rate:burst:maxQueued:weight" (the `tenant:`-less form).
 * Returns false and sets `error` on a malformed spec.
 */
bool parseQuotaSpec(const std::string &spec, TenantQuota &quota,
                    std::string &error);

/**
 * Run the daemon until `stats-cli drain` (or a fatal error). Returns
 * the process exit code.
 */
int serveMain(const ServeArgs &args);

} // namespace stats::serving
