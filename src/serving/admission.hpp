/**
 * @file
 * Per-tenant admission control for the serving control plane
 * (docs/SERVING.md §3).
 *
 * Two layers, both applied *before* a request becomes a plan in a
 * queue, so overload produces a graceful `RejectedBackpressure`
 * response instead of unbounded queue growth:
 *
 *  - **validation** — the request must decode (schema-versioned),
 *    pass the plan's structural checks, and its program must pass the
 *    same gates `statscc` applies: IR parse + verifier + middle-end +
 *    speculation-safety lint + post-regalloc bytecode verifier for
 *    inline-IR plans (docs/ANALYSIS.md), a known benchmark name for
 *    benchmark plans;
 *  - **quota** — a token bucket per tenant (ratePerSec, burst) plus a
 *    bounded per-tenant queue. A request that finds the bucket empty
 *    or the queue full is rejected with a retry-after hint.
 *
 * The clock is injected so tests drive quota refill deterministically.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "serving/execution_plan.hpp"

namespace stats::serving {

/** Why a request was not admitted. Names are part of the wire
 *  protocol and of docs/SERVING.md §3; keep all three in lockstep. */
enum class RejectReason : std::uint8_t
{
    None,          ///< Admitted.
    MalformedPlan, ///< Undecodable bytes or failed structural checks.
    VersionSkew,   ///< Plan schema version this build does not speak.
    ParseError,    ///< Inline IR did not parse.
    VerifyError,   ///< IR verifier rejected the module.
    AnalysisError, ///< Speculation-safety lint found errors.
    UnknownModule, ///< Benchmark plan names no known benchmark.
    QuotaExceeded, ///< Tenant token bucket empty (backpressure).
    QueueFull,     ///< Tenant queue at capacity (backpressure).
    Draining,      ///< Server is draining; no new work accepted.
};

inline constexpr int kRejectReasonCount = 10;

const char *rejectReasonName(RejectReason reason);

/** True for the load-shedding reasons (the RejectedBackpressure
 *  family): the request was fine, the system is protecting itself. */
bool isBackpressure(RejectReason reason);

/** Per-tenant quota configuration. */
struct TenantQuota
{
    /** Token-bucket refill rate, requests per second. */
    double ratePerSec = 50.0;
    /** Token-bucket capacity (burst size). */
    double burst = 20.0;
    /** Bound on the tenant's queued-but-not-dispatched plans. */
    std::size_t maxQueued = 64;
    /** Weighted-deficit-round-robin share (scheduler.hpp). */
    int weight = 1;
};

/** The admission verdict for one request. */
struct AdmissionVerdict
{
    RejectReason reason = RejectReason::None;
    std::string detail;
    /** Backpressure rejections: seconds until a retry may succeed. */
    double retryAfterSeconds = 0.0;

    bool admitted() const { return reason == RejectReason::None; }
};

/**
 * The admission controller. Not internally synchronized: the server
 * calls it under its own lock (admission is off the execution hot
 * path — it runs once per request, not per input).
 */
class AdmissionController
{
  public:
    using Clock = std::function<double()>;

    /**
     * `defaultQuota` applies to tenants not explicitly configured
     * (every tenant is known; quotas are how tenants differ).
     * `clock` returns monotonic seconds.
     */
    AdmissionController(TenantQuota default_quota, Clock clock);

    /** Configure one tenant's quota explicitly. */
    void setQuota(const std::string &tenant, TenantQuota quota);

    /** The quota in effect for `tenant`. */
    const TenantQuota &quotaFor(const std::string &tenant) const;

    /**
     * Quota gate only (validation is the server's job, since it owns
     * the compile cache): spend one token and check the queue bound.
     * `queued` is the tenant's current queue depth.
     */
    AdmissionVerdict admitQuota(const std::string &tenant,
                                std::size_t queued);

    /**
     * Full semantic validation of a structurally valid plan: IR
     * pipeline gates or benchmark-name check. Pure (no quota spend).
     * `runAnalysis` gates the lint stage (statsd --no-analysis).
     */
    static AdmissionVerdict validate(const ExecutionPlan &plan,
                                     bool run_analysis);

  private:
    struct Bucket
    {
        double tokens = 0.0;
        double lastRefill = 0.0;
        bool primed = false; ///< First sight: start at full burst.
    };

    TenantQuota _defaultQuota;
    Clock _clock;
    std::map<std::string, TenantQuota> _quotas;
    std::map<std::string, Bucket> _buckets;
};

} // namespace stats::serving
