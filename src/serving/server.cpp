#include "serving/server.hpp"

#include <chrono>

#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "support/string_utils.hpp"

namespace stats::serving {

namespace {

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
countRejection(std::uint64_t request_id, const AdmissionVerdict &v,
               double now)
{
    auto &metrics = obs::MetricsRegistry::global();
    metrics.counter("serving.requests_rejected").add();
    metrics
        .counter(std::string("serving.rejected.") +
                 rejectReasonName(v.reason))
        .add();
    if (obs::traceActive()) {
        obs::Trace::global().record(
            obs::EventType::RequestRejected, -1,
            static_cast<std::int64_t>(request_id), -1, now,
            obs::kFrontierTrack,
            static_cast<std::int64_t>(v.reason));
        if (isBackpressure(v.reason))
            obs::Trace::global().record(
                obs::EventType::TenantThrottled, -1,
                static_cast<std::int64_t>(request_id), -1, now,
                obs::kFrontierTrack,
                static_cast<std::int64_t>(v.reason));
    }
}

} // namespace

const char *
requestStateName(RequestState state)
{
    switch (state) {
      case RequestState::Queued:  return "queued";
      case RequestState::Running: return "running";
      case RequestState::Done:    return "done";
      case RequestState::Failed:  return "failed";
      case RequestState::Unknown: return "unknown";
    }
    return "?";
}

Server::Server() : Server(Options{}) {}

Server::Server(Options options)
    : _options(std::move(options)),
      _admission(_options.defaultQuota,
                 _options.clock ? _options.clock
                                : std::function<double()>(steadySeconds)),
      _scheduler(_options.quantum,
                 _options.clock ? _options.clock
                                : std::function<double()>(steadySeconds))
{
    _dispatcher = std::thread([this] { dispatchLoop(); });
}

Server::~Server()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _draining = true;
        _stop = true;
    }
    _wake.notify_all();
    if (_dispatcher.joinable())
        _dispatcher.join();
}

void
Server::setQuota(const std::string &tenant, TenantQuota quota)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _admission.setQuota(tenant, quota);
    _scheduler.setWeight(tenant, quota.weight);
}

SubmitOutcome
Server::submit(const std::string &plan_bytes)
{
    SubmitOutcome outcome;
    std::string error;
    const auto plan = ExecutionPlan::load(plan_bytes, error);
    if (!plan) {
        outcome.verdict.reason =
            support::startsWith(error, "unsupported plan schema")
                ? RejectReason::VersionSkew
                : RejectReason::MalformedPlan;
        outcome.verdict.detail = error;
        const double now = _options.clock ? _options.clock()
                                          : steadySeconds();
        countRejection(0, outcome.verdict, now);
        return outcome;
    }
    return submitPlan(*plan);
}

SubmitOutcome
Server::submitPlan(const ExecutionPlan &plan)
{
    SubmitOutcome outcome;
    const double now =
        _options.clock ? _options.clock() : steadySeconds();

    // Semantic validation runs outside the lock — it parses and lints
    // the module, by far the heaviest admission stage.
    bool draining_snapshot;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        draining_snapshot = _draining;
    }
    if (draining_snapshot) {
        outcome.verdict.reason = RejectReason::Draining;
        outcome.verdict.detail = "server is draining";
        countRejection(0, outcome.verdict, now);
        return outcome;
    }
    outcome.verdict =
        AdmissionController::validate(plan, _options.runAnalysis);
    if (!outcome.verdict.admitted()) {
        countRejection(0, outcome.verdict, now);
        return outcome;
    }

    std::uint64_t request_id = 0;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_draining) {
            outcome.verdict.reason = RejectReason::Draining;
            outcome.verdict.detail = "server is draining";
        } else {
            outcome.verdict = _admission.admitQuota(
                plan.tenant, _scheduler.queuedFor(plan.tenant));
        }
        if (outcome.verdict.admitted()) {
            request_id = _nextRequestId++;
            auto shared =
                std::make_shared<const ExecutionPlan>(plan);
            Request request;
            request.state = RequestState::Queued;
            request.plan = shared;
            _requests.emplace(request_id, std::move(request));
            _scheduler.enqueue(request_id, std::move(shared));
            obs::MetricsRegistry::global()
                .gauge("serving.queue_depth")
                .set(static_cast<double>(_scheduler.totalQueued()));
        }
    }
    if (!outcome.verdict.admitted()) {
        countRejection(0, outcome.verdict, now);
        return outcome;
    }

    outcome.requestId = request_id;
    obs::MetricsRegistry::global()
        .counter("serving.requests_admitted")
        .add();
    if (obs::traceActive())
        obs::Trace::global().record(
            obs::EventType::RequestAdmitted, -1,
            static_cast<std::int64_t>(request_id), -1, now,
            obs::kFrontierTrack,
            static_cast<std::int64_t>(queueDepth()));
    _wake.notify_all();
    return outcome;
}

RequestStatus
Server::status(std::uint64_t request_id) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    RequestStatus status;
    const auto it = _requests.find(request_id);
    if (it == _requests.end())
        return status;
    status.state = it->second.state;
    status.tenant = it->second.plan->tenant;
    if (status.state == RequestState::Done ||
        status.state == RequestState::Failed)
        status.result = it->second.result;
    return status;
}

std::string
Server::replayLog(std::uint64_t request_id) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _requests.find(request_id);
    return it == _requests.end() ? "" : it->second.result.recordLog;
}

std::uint64_t
Server::drain()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _draining = true;
    _wake.notify_all();
    _idle.wait(lock, [this] {
        return _scheduler.empty() && _running == 0;
    });
    return _completed;
}

bool
Server::draining() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _draining;
}

std::size_t
Server::queueDepth() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _scheduler.totalQueued();
}

std::uint64_t
Server::completedCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _completed;
}

void
Server::dispatchLoop()
{
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        _wake.wait(lock, [this] {
            return _stop || !_scheduler.empty();
        });
        if (_scheduler.empty()) {
            if (_stop)
                return;
            continue;
        }
        std::vector<QueuedPlan> batch = _scheduler.nextBatch();
        for (const auto &member : batch)
            _requests.at(member.requestId).state =
                RequestState::Running;
        _running = batch.size();
        obs::MetricsRegistry::global()
            .gauge("serving.queue_depth")
            .set(static_cast<double>(_scheduler.totalQueued()));

        // Execute outside the lock: submits and status reads stay
        // responsive while the (single) dispatcher runs plans.
        lock.unlock();
        std::vector<PlanResult> results = _runner.runBatch(batch);
        lock.lock();

        for (std::size_t i = 0; i < batch.size(); ++i) {
            Request &request = _requests.at(batch[i].requestId);
            request.result = std::move(results[i]);
            request.state = request.result.ok ? RequestState::Done
                                              : RequestState::Failed;
            ++_completed;
            _finishedOrder.push_back(batch[i].requestId);
        }
        if (_options.maxRetainedResults > 0)
            while (_finishedOrder.size() >
                   _options.maxRetainedResults) {
                _requests.erase(_finishedOrder.front());
                _finishedOrder.pop_front();
            }
        _running = 0;
        obs::MetricsRegistry::global()
            .counter("serving.requests_completed")
            .add(static_cast<std::int64_t>(batch.size()));
        if (_scheduler.empty())
            _idle.notify_all();
    }
}

} // namespace stats::serving
