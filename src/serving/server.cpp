#include "serving/server.hpp"

#include <chrono>

#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "support/string_utils.hpp"

namespace stats::serving {

namespace {

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
countRejection(std::uint64_t request_id, const AdmissionVerdict &v,
               double now)
{
    auto &metrics = obs::MetricsRegistry::global();
    metrics.counter("serving.requests_rejected").add();
    metrics
        .counter(std::string("serving.rejected.") +
                 rejectReasonName(v.reason))
        .add();
    if (obs::traceActive()) {
        obs::Trace::global().record(
            obs::EventType::RequestRejected, -1,
            static_cast<std::int64_t>(request_id), -1, now,
            obs::kFrontierTrack,
            static_cast<std::int64_t>(v.reason));
        if (isBackpressure(v.reason))
            obs::Trace::global().record(
                obs::EventType::TenantThrottled, -1,
                static_cast<std::int64_t>(request_id), -1, now,
                obs::kFrontierTrack,
                static_cast<std::int64_t>(v.reason));
    }
}

std::size_t
defaultWorkerCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 2 ? hw / 2 : 1;
}

} // namespace

const char *
requestStateName(RequestState state)
{
    switch (state) {
      case RequestState::Queued:  return "queued";
      case RequestState::Running: return "running";
      case RequestState::Done:    return "done";
      case RequestState::Failed:  return "failed";
      case RequestState::Unknown: return "unknown";
      case RequestState::Expired: return "expired";
    }
    return "?";
}

Server::Server() : Server(Options{}) {}

Server::Server(Options options)
    : _options(std::move(options)),
      _admission(_options.defaultQuota,
                 _options.clock ? _options.clock
                                : std::function<double()>(steadySeconds)),
      _scheduler(_options.quantum,
                 _options.clock ? _options.clock
                                : std::function<double()>(steadySeconds))
{
    const std::size_t workers = _options.executionWorkers > 0
                                    ? _options.executionWorkers
                                    : defaultWorkerCount();
    _workers.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

Server::~Server()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _draining = true;
        _stop = true;
    }
    _wake.notify_all();
    for (auto &worker : _workers)
        if (worker.joinable())
            worker.join();
}

void
Server::setQuota(const std::string &tenant, TenantQuota quota)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _admission.setQuota(tenant, quota);
    _scheduler.setWeight(tenant, quota.weight);
}

SubmitOutcome
Server::submit(const std::string &plan_bytes)
{
    SubmitOutcome outcome;
    std::string error;
    const auto plan = ExecutionPlan::load(plan_bytes, error);
    if (!plan) {
        outcome.verdict.reason =
            support::startsWith(error, "unsupported plan schema")
                ? RejectReason::VersionSkew
                : RejectReason::MalformedPlan;
        outcome.verdict.detail = error;
        const double now = _options.clock ? _options.clock()
                                          : steadySeconds();
        countRejection(0, outcome.verdict, now);
        return outcome;
    }
    return submitPlan(*plan);
}

SubmitOutcome
Server::submitPlan(const ExecutionPlan &plan)
{
    SubmitOutcome outcome;
    const double now =
        _options.clock ? _options.clock() : steadySeconds();

    // Semantic validation runs outside the lock — it parses and lints
    // the module, by far the heaviest admission stage.
    bool draining_snapshot;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        draining_snapshot = _draining;
    }
    if (draining_snapshot) {
        outcome.verdict.reason = RejectReason::Draining;
        outcome.verdict.detail = "server is draining";
        countRejection(0, outcome.verdict, now);
        return outcome;
    }
    outcome.verdict =
        AdmissionController::validate(plan, _options.runAnalysis);
    if (!outcome.verdict.admitted()) {
        countRejection(0, outcome.verdict, now);
        return outcome;
    }

    // The cache key is computed outside the lock too (it serializes
    // the plan); it is only consulted for cacheable plans.
    const bool cacheable =
        !plan.noCache && _options.resultCacheCapacity > 0;
    std::string cache_key;
    if (cacheable)
        cache_key = plan.resultCacheKey();

    std::uint64_t request_id = 0;
    bool cache_hit = false;
    std::size_t cache_entries = 0;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_draining) {
            outcome.verdict.reason = RejectReason::Draining;
            outcome.verdict.detail = "server is draining";
        } else {
            outcome.verdict = _admission.admitQuota(
                plan.tenant, _scheduler.queuedFor(plan.tenant));
        }
        if (outcome.verdict.admitted()) {
            request_id = _nextRequestId++;
            auto shared =
                std::make_shared<const ExecutionPlan>(plan);
            if (cacheable) {
                if (const PlanResult *hit = cacheLookup(cache_key)) {
                    // Served from cache: the request completes at
                    // admission time, byte-identical to a recompute
                    // (the cached entry holds result and RecordLog
                    // bytes of an actual execution).
                    Request request;
                    request.plan = shared;
                    _requests.emplace(request_id,
                                      std::move(request));
                    finishRequest(request_id, *hit);
                    cache_hit = true;
                    ++_cacheHits;
                    cache_entries = _cacheLru.size();
                }
            }
            if (!cache_hit) {
                Request request;
                request.state = RequestState::Queued;
                request.plan = shared;
                _requests.emplace(request_id, std::move(request));
                _scheduler.enqueue(request_id, std::move(shared));
                obs::MetricsRegistry::global()
                    .gauge("serving.queue_depth")
                    .set(static_cast<double>(
                        _scheduler.totalQueued()));
            }
        }
    }
    if (!outcome.verdict.admitted()) {
        countRejection(0, outcome.verdict, now);
        return outcome;
    }

    outcome.requestId = request_id;
    auto &metrics = obs::MetricsRegistry::global();
    metrics.counter("serving.requests_admitted").add();
    if (cacheable)
        metrics
            .counter(cache_hit ? "serving.cache.hits"
                               : "serving.cache.misses")
            .add();
    if (obs::traceActive()) {
        obs::Trace::global().record(
            obs::EventType::RequestAdmitted, -1,
            static_cast<std::int64_t>(request_id), -1, now,
            obs::kFrontierTrack,
            static_cast<std::int64_t>(queueDepth()));
        if (cache_hit)
            obs::Trace::global().record(
                obs::EventType::CacheHit, -1,
                static_cast<std::int64_t>(request_id), -1, now,
                obs::kFrontierTrack,
                static_cast<std::int64_t>(cache_entries));
    }
    if (!cache_hit)
        _wake.notify_all();
    return outcome;
}

RequestStatus
Server::status(std::uint64_t request_id) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    RequestStatus status;
    const auto it = _requests.find(request_id);
    if (it == _requests.end()) {
        // Every issued id enters the registry at admission and only
        // leaves by FIFO eviction, so an absent id below the
        // allocation watermark was necessarily evicted.
        if (request_id >= 1 && request_id < _nextRequestId)
            status.state = RequestState::Expired;
        return status;
    }
    status.state = it->second.state;
    status.tenant = it->second.plan->tenant;
    if (status.state == RequestState::Done ||
        status.state == RequestState::Failed)
        status.result = it->second.result;
    return status;
}

std::string
Server::replayLog(std::uint64_t request_id) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _requests.find(request_id);
    return it == _requests.end() ? "" : it->second.result.recordLog;
}

std::uint64_t
Server::drain()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _draining = true;
    _wake.notify_all();
    _idle.wait(lock, [this] {
        return _scheduler.empty() && _runningPlans == 0;
    });
    return _completed;
}

bool
Server::draining() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _draining;
}

std::size_t
Server::queueDepth() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _scheduler.totalQueued();
}

std::uint64_t
Server::completedCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _completed;
}

std::size_t
Server::resultCacheSize() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _cacheLru.size();
}

std::uint64_t
Server::resultCacheHits() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _cacheHits;
}

const PlanResult *
Server::cacheLookup(const std::string &key)
{
    const auto it = _cacheIndex.find(key);
    if (it == _cacheIndex.end())
        return nullptr;
    _cacheLru.splice(_cacheLru.begin(), _cacheLru, it->second);
    return &it->second->second;
}

void
Server::cacheStore(const std::string &key, const PlanResult &result)
{
    if (const auto it = _cacheIndex.find(key);
        it != _cacheIndex.end()) {
        // A concurrent worker (or an earlier lane of this batch)
        // already filled the entry; results are deterministic, so
        // just refresh recency.
        _cacheLru.splice(_cacheLru.begin(), _cacheLru, it->second);
        return;
    }
    _cacheLru.emplace_front(key, result);
    _cacheIndex.emplace(key, _cacheLru.begin());
    while (_cacheLru.size() > _options.resultCacheCapacity) {
        _cacheIndex.erase(_cacheLru.back().first);
        _cacheLru.pop_back();
        obs::MetricsRegistry::global()
            .counter("serving.cache.evictions")
            .add();
    }
    obs::MetricsRegistry::global()
        .gauge("serving.cache.size")
        .set(static_cast<double>(_cacheLru.size()));
}

void
Server::finishRequest(std::uint64_t request_id, PlanResult result)
{
    Request &request = _requests.at(request_id);
    request.result = std::move(result);
    request.state = request.result.ok ? RequestState::Done
                                      : RequestState::Failed;
    ++_completed;
    _finishedOrder.push_back(request_id);
    if (_options.maxRetainedResults > 0)
        while (_finishedOrder.size() > _options.maxRetainedResults) {
            _requests.erase(_finishedOrder.front());
            _finishedOrder.pop_front();
        }
}

void
Server::workerLoop()
{
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        _wake.wait(lock, [this] {
            return (_stop && _scheduler.empty()) ||
                   _scheduler.dispatchable(_inFlightKeys);
        });
        if (_scheduler.empty()) {
            if (_stop)
                return;
            continue;
        }
        std::vector<QueuedPlan> batch =
            _scheduler.nextBatch(_inFlightKeys);
        if (batch.empty())
            continue; // Lost a race to another worker; re-wait.
        for (const auto &member : batch)
            _requests.at(member.requestId).state =
                RequestState::Running;
        const ExecutionPlan &head = *batch.front().plan;
        const bool key_held = head.canBatchWith(head);
        const std::uint64_t key =
            key_held ? head.compatibilityKey() : 0;
        if (key_held)
            _inFlightKeys.insert(key);
        _runningPlans += batch.size();
        obs::MetricsRegistry::global()
            .gauge("serving.queue_depth")
            .set(static_cast<double>(_scheduler.totalQueued()));

        // Execute outside the lock: submits, status reads, and the
        // other workers stay live while this batch runs.
        lock.unlock();
        std::vector<PlanResult> results = _runner.runBatch(batch);
        lock.lock();

        if (key_held)
            _inFlightKeys.erase(key);
        _runningPlans -= batch.size();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const ExecutionPlan &plan = *batch[i].plan;
            if (results[i].ok && !plan.noCache &&
                _options.resultCacheCapacity > 0)
                cacheStore(plan.resultCacheKey(), results[i]);
            finishRequest(batch[i].requestId,
                          std::move(results[i]));
        }
        obs::MetricsRegistry::global()
            .counter("serving.requests_completed")
            .add(static_cast<std::int64_t>(batch.size()));
        if (_scheduler.empty() && _runningPlans == 0)
            _idle.notify_all();
        // Finishing released this batch's key (and possibly the last
        // obstacle before _stop): re-arm the other workers.
        _wake.notify_all();
    }
}

} // namespace stats::serving
