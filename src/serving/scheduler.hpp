/**
 * @file
 * The plan scheduler: weighted deficit round-robin across tenant
 * queues, with cross-request batch formation (docs/SERVING.md §4).
 *
 * Admitted plans land in per-tenant queues ordered by
 * (priority desc, admission order). Dispatch walks the tenants in a
 * fixed rotation; each tenant accumulates `quantum × weight` deficit
 * when its turn starts and spends one unit per plan dispatched, so
 * over time tenants receive service proportional to their quota
 * weights regardless of how fast they submit.
 *
 * When the plan at the head of the selected queue is batchable
 * (sequential kind, `batchLanes > 1`), the scheduler scans *all*
 * queues — the owning tenant's first, then the rotation — for plans
 * with the same compatibility key and fuses up to
 * `min(batchLanes)` of them into one dispatch unit, which the runner
 * executes as the lanes of a single `ExecutableModule::callBatch`
 * loop. Cross-tenant members are charged against their own tenant's
 * deficit (it may go briefly negative: they were served early).
 *
 * Multi-worker dispatch: `nextBatch` takes the set of compatibility
 * keys currently in flight on other workers. A *batchable* head whose
 * key is already running is skipped — letting same-key arrivals
 * accumulate into one bigger fusion instead of racing it — while
 * plans under other keys (and all non-batchable plans) dispatch
 * normally. A skip never charges the tenant's deficit.
 *
 * Not internally synchronized — the server owns the lock (the
 * scheduler runs on the server's worker threads plus, for enqueue,
 * the connection threads, never on the engine's hot path).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "serving/execution_plan.hpp"

namespace stats::serving {

/** One admitted plan waiting for (or selected for) dispatch. */
struct QueuedPlan
{
    std::uint64_t requestId = 0;
    std::shared_ptr<const ExecutionPlan> plan;
    /** Admission order, for FIFO within a priority level. */
    std::uint64_t seq = 0;
};

class PlanScheduler
{
  public:
    using Clock = std::function<double()>;

    /**
     * `quantum` is the deficit added per tenant visit (in plan
     * units); `clock` stamps the trace events this class emits.
     */
    explicit PlanScheduler(
        double quantum = 1.0, Clock clock = [] { return 0.0; });

    /** WDRR share for `tenant` (default 1; must be >= 1). */
    void setWeight(const std::string &tenant, int weight);

    /** Queue an admitted plan (emits PlanEnqueued). */
    void enqueue(std::uint64_t request_id,
                 std::shared_ptr<const ExecutionPlan> plan);

    /** Plans currently queued for `tenant`. */
    std::size_t queuedFor(const std::string &tenant) const;

    /** Plans currently queued across all tenants. */
    std::size_t totalQueued() const;

    bool empty() const { return totalQueued() == 0; }

    /**
     * Select the next dispatch unit: one plan, or several compatible
     * sequential plans fused into a batch (emits PlanDispatched per
     * member and BatchFormed when fusion happened). Batchable plans
     * whose compatibility key appears in `blocked_keys` are passed
     * over (see the file comment). Empty when nothing is
     * dispatchable right now.
     */
    std::vector<QueuedPlan>
    nextBatch(const std::set<std::uint64_t> &blocked_keys = {});

    /** Would nextBatch(blocked_keys) return a non-empty unit? */
    bool
    dispatchable(const std::set<std::uint64_t> &blocked_keys) const;

  private:
    /** True when `plan` must yield to an in-flight same-key batch. */
    static bool isBlocked(const ExecutionPlan &plan,
                          const std::set<std::uint64_t> &blocked_keys);
    struct TenantState
    {
        std::deque<QueuedPlan> queue;
        double deficit = 0.0;
        int weight = 1;
        /** Deficit already granted for the in-progress visit. */
        bool charged = false;
    };

    TenantState &stateFor(const std::string &tenant);
    void insertByPriority(TenantState &state, QueuedPlan item);

    double _quantum;
    Clock _clock;
    std::map<std::string, TenantState> _tenants;
    /** Fixed rotation order (first-seen order of tenants). */
    std::vector<std::string> _rotation;
    std::size_t _rrIndex = 0;
    std::uint64_t _nextSeq = 0;
};

} // namespace stats::serving
