#include "serving/daemon.hpp"

#include <cerrno>
#include <cstring>
#include <exception>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "replay/record_log.hpp"
#include "serving/protocol.hpp"
#include "support/log.hpp"

namespace stats::serving {

Daemon::Daemon(std::string socket_path, Server::Options options)
    : _socketPath(std::move(socket_path)),
      _server(std::make_unique<Server>(std::move(options)))
{
    if (_socketPath.empty())
        support::panic("statsd: empty socket path");

    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (_socketPath.size() >= sizeof(address.sun_path))
        support::panic("statsd: socket path too long: ",
                       _socketPath);
    std::strncpy(address.sun_path, _socketPath.c_str(),
                 sizeof(address.sun_path) - 1);

    const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0)
        support::panic("statsd: socket(): ", std::strerror(errno));
    ::unlink(_socketPath.c_str()); // Replace a stale socket file.
    if (::bind(listen_fd,
               reinterpret_cast<const sockaddr *>(&address),
               sizeof(address)) != 0)
        support::panic("statsd: bind('", _socketPath,
                       "'): ", std::strerror(errno));
    if (::listen(listen_fd, 64) != 0)
        support::panic("statsd: listen(): ", std::strerror(errno));
    _listenFd.store(listen_fd);
}

Daemon::~Daemon()
{
    stop();
    {
        // Connection threads are detached; wait for every one to
        // retire before the Server (which they call into) goes away.
        std::unique_lock<std::mutex> lock(_workersMutex);
        _workersIdle.wait(lock,
                          [this] { return _activeWorkers == 0; });
    }
    ::unlink(_socketPath.c_str());
}

void
Daemon::stop()
{
    if (_stopping.exchange(true))
        return;
    const int fd = _listenFd.exchange(-1);
    if (fd >= 0) {
        // Unblock accept().
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
}

void
Daemon::serveForever()
{
    while (!_stopping.load(std::memory_order_relaxed)) {
        const int listen_fd = _listenFd.load();
        if (listen_fd < 0)
            break;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // Listener closed (stop()) or fatal.
        }
        {
            std::lock_guard<std::mutex> lock(_workersMutex);
            ++_activeWorkers;
        }
        try {
            std::thread([this, fd] {
                handleConnection(fd);
                // notify under the lock: the destructor may destroy
                // the condition variable as soon as the count hits 0.
                std::lock_guard<std::mutex> lock(_workersMutex);
                --_activeWorkers;
                _workersIdle.notify_all();
            }).detach();
        } catch (...) {
            ::close(fd);
            std::lock_guard<std::mutex> lock(_workersMutex);
            --_activeWorkers;
            _workersIdle.notify_all();
        }
    }
}

Frame
Daemon::handleFrame(const Frame &frame, bool &drain_requested)
{
    Frame reply;
    switch (frame.type) {
      case MsgType::SubmitReq: {
        const SubmitOutcome outcome =
            _server->submit(frame.body);
        if (outcome.admitted()) {
            reply.type = MsgType::SubmitOk;
            reply.body = encodeRequestId(outcome.requestId);
        } else {
            reply.type = MsgType::SubmitRejected;
            reply.body = encodeSubmitRejected(outcome.verdict);
        }
        break;
      }
      case MsgType::StatusReq: {
        std::uint64_t request_id = 0;
        if (!decodeRequestId(frame.body, request_id)) {
            reply.type = MsgType::ErrorResp;
            reply.body = "malformed status request";
            break;
        }
        reply.type = MsgType::StatusResp;
        reply.body = encodeStatus(_server->status(request_id));
        break;
      }
      case MsgType::ResultReq: {
        std::uint64_t request_id = 0;
        if (!decodeRequestId(frame.body, request_id)) {
            reply.type = MsgType::ErrorResp;
            reply.body = "malformed result request";
            break;
        }
        reply.type = MsgType::ResultResp;
        reply.body = encodeResult(_server->status(request_id));
        break;
      }
      case MsgType::ReplayFetchReq: {
        std::uint64_t request_id = 0;
        if (!decodeRequestId(frame.body, request_id)) {
            reply.type = MsgType::ErrorResp;
            reply.body = "malformed replay-fetch request";
            break;
        }
        reply.type = MsgType::ReplayFetchResp;
        reply.body = _server->replayLog(request_id);
        break;
      }
      case MsgType::DrainReq: {
        const std::uint64_t completed = _server->drain();
        reply.type = MsgType::DrainResp;
        reply.body.clear();
        replay::putVarint(reply.body, completed);
        drain_requested = true;
        break;
      }
      default:
        reply.type = MsgType::ErrorResp;
        reply.body = "unexpected message type";
        break;
    }
    return reply;
}

void
Daemon::handleConnection(int fd)
{
    while (auto frame = readFrame(fd)) {
        Frame reply;
        bool drain_requested = false;
        try {
            reply = handleFrame(*frame, drain_requested);
        } catch (const std::exception &failure) {
            // Untrusted bytes must never take the daemon down: any
            // exception a request leaks becomes an error reply.
            reply.type = MsgType::ErrorResp;
            reply.body =
                std::string("internal error: ") + failure.what();
        } catch (...) {
            reply.type = MsgType::ErrorResp;
            reply.body = "internal error";
        }
        if (!writeFrame(fd, reply))
            break;
        if (drain_requested) {
            stop();
            break;
        }
    }
    ::close(fd);
}

} // namespace stats::serving
