#include "serving/client.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "replay/record_log.hpp"

namespace stats::serving {

Client::Client(const std::string &socket_path, std::string &error)
{
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (socket_path.empty() ||
        socket_path.size() >= sizeof(address.sun_path)) {
        error = "bad socket path '" + socket_path + "'";
        return;
    }
    std::strncpy(address.sun_path, socket_path.c_str(),
                 sizeof(address.sun_path) - 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket(): ") + std::strerror(errno);
        return;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&address),
                  sizeof(address)) != 0) {
        error = "connect('" + socket_path +
                "'): " + std::strerror(errno);
        ::close(fd);
        return;
    }
    _fd = fd;
}

Client::~Client()
{
    if (_fd >= 0)
        ::close(_fd);
}

std::optional<Frame>
Client::roundTrip(const Frame &request, std::string &error)
{
    if (_fd < 0) {
        error = "not connected";
        return std::nullopt;
    }
    if (!writeFrame(_fd, request)) {
        error = "connection lost while sending";
        return std::nullopt;
    }
    auto reply = readFrame(_fd);
    if (!reply) {
        error = "connection lost while waiting for the reply";
        return std::nullopt;
    }
    if (reply->type == MsgType::ErrorResp) {
        error = "daemon error: " + reply->body;
        return std::nullopt;
    }
    return reply;
}

std::optional<std::uint64_t>
Client::submit(const std::string &plan_bytes,
               AdmissionVerdict &verdict, std::string &error)
{
    Frame request;
    request.type = MsgType::SubmitReq;
    request.body = plan_bytes;
    const auto reply = roundTrip(request, error);
    if (!reply)
        return std::nullopt;
    if (reply->type == MsgType::SubmitRejected) {
        if (!decodeSubmitRejected(reply->body, verdict))
            error = "malformed rejection response";
        return std::nullopt;
    }
    std::uint64_t request_id = 0;
    if (reply->type != MsgType::SubmitOk ||
        !decodeRequestId(reply->body, request_id)) {
        error = "malformed submit response";
        return std::nullopt;
    }
    return request_id;
}

std::optional<RequestState>
Client::status(std::uint64_t request_id, std::string &tenant,
               std::string &error)
{
    Frame request;
    request.type = MsgType::StatusReq;
    request.body = encodeRequestId(request_id);
    const auto reply = roundTrip(request, error);
    if (!reply)
        return std::nullopt;
    RequestState state = RequestState::Unknown;
    if (reply->type != MsgType::StatusResp ||
        !decodeStatus(reply->body, state, tenant)) {
        error = "malformed status response";
        return std::nullopt;
    }
    return state;
}

std::optional<RequestStatus>
Client::result(std::uint64_t request_id, std::string &error)
{
    Frame request;
    request.type = MsgType::ResultReq;
    request.body = encodeRequestId(request_id);
    const auto reply = roundTrip(request, error);
    if (!reply)
        return std::nullopt;
    RequestStatus status;
    if (reply->type != MsgType::ResultResp ||
        !decodeResult(reply->body, status)) {
        error = "malformed result response";
        return std::nullopt;
    }
    return status;
}

std::optional<std::string>
Client::replayFetch(std::uint64_t request_id, std::string &error)
{
    Frame request;
    request.type = MsgType::ReplayFetchReq;
    request.body = encodeRequestId(request_id);
    const auto reply = roundTrip(request, error);
    if (!reply)
        return std::nullopt;
    if (reply->type != MsgType::ReplayFetchResp) {
        error = "malformed replay-fetch response";
        return std::nullopt;
    }
    return reply->body;
}

std::optional<std::uint64_t>
Client::drain(std::string &error)
{
    Frame request;
    request.type = MsgType::DrainReq;
    const auto reply = roundTrip(request, error);
    if (!reply)
        return std::nullopt;
    std::uint64_t completed = 0;
    std::size_t pos = 0;
    if (reply->type != MsgType::DrainResp ||
        !replay::getVarint(reply->body, pos, completed)) {
        error = "malformed drain response";
        return std::nullopt;
    }
    return completed;
}

} // namespace stats::serving
