#include "serving/serve_main.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "serving/daemon.hpp"
#include "support/log.hpp"

namespace stats::serving {

namespace {

std::vector<std::string>
splitColons(const std::string &spec)
{
    std::vector<std::string> parts;
    std::stringstream stream(spec);
    std::string part;
    while (std::getline(stream, part, ':'))
        parts.push_back(part);
    return parts;
}

bool
parseQuotaParts(const std::vector<std::string> &parts,
                TenantQuota &quota, std::string &error)
{
    if (parts.size() != 4) {
        error = "want rate:burst:maxQueued:weight";
        return false;
    }
    try {
        quota.ratePerSec = std::stod(parts[0]);
        quota.burst = std::stod(parts[1]);
        quota.maxQueued =
            static_cast<std::size_t>(std::stoull(parts[2]));
        quota.weight = std::stoi(parts[3]);
    } catch (const std::exception &) {
        error = "malformed number in quota spec";
        return false;
    }
    if (quota.ratePerSec <= 0.0 || quota.burst < 1.0 ||
        quota.maxQueued < 1 || quota.weight < 1) {
        error = "quota values out of range";
        return false;
    }
    return true;
}

} // namespace

bool
parseQuotaSpec(const std::string &spec, TenantQuota &quota,
               std::string &error)
{
    return parseQuotaParts(splitColons(spec), quota, error);
}

int
serveMain(const ServeArgs &args)
{
    if (args.trace) {
        obs::Trace::global().enable();
        if (!obs::traceActive())
            support::fatal("--trace needs tracing compiled in "
                           "(built with STATS_OBS_DISABLE)");
    }

    if (!(args.quantum > 0.0))
        support::fatal("quantum must be positive, got ",
                       args.quantum);

    Server::Options options;
    options.runAnalysis = args.runAnalysis;
    options.quantum = args.quantum;
    options.executionWorkers = args.executionWorkers;
    if (!args.defaultQuotaSpec.empty()) {
        std::string error;
        if (!parseQuotaSpec(args.defaultQuotaSpec,
                            options.defaultQuota, error))
            support::fatal("--default-quota: ", error);
    }

    Daemon daemon(args.socketPath, std::move(options));
    for (const auto &spec : args.quotaSpecs) {
        const auto colon = spec.find(':');
        std::string error;
        TenantQuota quota;
        if (colon == std::string::npos || colon == 0 ||
            !parseQuotaSpec(spec.substr(colon + 1), quota, error))
            support::fatal("--quota '", spec, "': ",
                           error.empty() ? "want tenant:rate:burst:"
                                           "maxQueued:weight"
                                         : error);
        daemon.server().setQuota(spec.substr(0, colon), quota);
    }

    std::cout << "statsd: serving on " << daemon.socketPath()
              << " (analysis "
              << (args.runAnalysis ? "on" : "off") << ", "
              << daemon.server().workerCount() << " worker(s))\n";
    daemon.serveForever();

    std::cout << "statsd: drained after "
              << daemon.server().completedCount()
              << " completed request(s)\n";
    if (!args.metricsPath.empty()) {
        std::ofstream out(args.metricsPath);
        if (!out)
            support::fatal("cannot open '", args.metricsPath, "'");
        obs::MetricsRegistry::global().writeJson(out);
        std::cout << "statsd: wrote metrics to " << args.metricsPath
                  << "\n";
    }
    return 0;
}

} // namespace stats::serving
