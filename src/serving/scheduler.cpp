#include "serving/scheduler.hpp"

#include <algorithm>
#include <set>

#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "support/log.hpp"

namespace stats::serving {

PlanScheduler::PlanScheduler(double quantum, Clock clock)
    : _quantum(quantum), _clock(std::move(clock))
{
    if (quantum <= 0.0)
        support::panic("PlanScheduler: quantum must be positive");
}

PlanScheduler::TenantState &
PlanScheduler::stateFor(const std::string &tenant)
{
    auto it = _tenants.find(tenant);
    if (it == _tenants.end()) {
        it = _tenants.emplace(tenant, TenantState{}).first;
        _rotation.push_back(tenant);
    }
    return it->second;
}

void
PlanScheduler::setWeight(const std::string &tenant, int weight)
{
    if (weight < 1)
        support::panic("PlanScheduler: weight must be >= 1");
    stateFor(tenant).weight = weight;
}

void
PlanScheduler::insertByPriority(TenantState &state, QueuedPlan item)
{
    // Higher priority first; FIFO (by admission seq) within a level.
    auto pos = std::find_if(
        state.queue.begin(), state.queue.end(),
        [&](const QueuedPlan &queued) {
            return queued.plan->priority < item.plan->priority;
        });
    state.queue.insert(pos, std::move(item));
}

void
PlanScheduler::enqueue(std::uint64_t request_id,
                       std::shared_ptr<const ExecutionPlan> plan)
{
    TenantState &state = stateFor(plan->tenant);
    QueuedPlan item;
    item.requestId = request_id;
    item.plan = std::move(plan);
    item.seq = _nextSeq++;
    insertByPriority(state, std::move(item));
    obs::MetricsRegistry::global()
        .counter("serving.plans_enqueued")
        .add();
    if (obs::traceActive())
        obs::Trace::global().record(
            obs::EventType::PlanEnqueued, -1,
            static_cast<std::int64_t>(request_id), -1, _clock(),
            obs::kFrontierTrack,
            static_cast<std::int64_t>(state.queue.size()));
}

std::size_t
PlanScheduler::queuedFor(const std::string &tenant) const
{
    const auto it = _tenants.find(tenant);
    return it == _tenants.end() ? 0 : it->second.queue.size();
}

std::size_t
PlanScheduler::totalQueued() const
{
    std::size_t total = 0;
    for (const auto &[tenant, state] : _tenants)
        total += state.queue.size();
    return total;
}

bool
PlanScheduler::isBlocked(const ExecutionPlan &plan,
                         const std::set<std::uint64_t> &blocked_keys)
{
    // Only batchable plans yield to an in-flight same-key batch:
    // holding them back lets same-key arrivals accumulate into one
    // bigger fusion. Non-batchable plans run concurrently freely
    // (the runner leases a private ExecutableModule per dispatch).
    return !blocked_keys.empty() && plan.canBatchWith(plan) &&
           blocked_keys.count(plan.compatibilityKey()) != 0;
}

bool
PlanScheduler::dispatchable(
    const std::set<std::uint64_t> &blocked_keys) const
{
    for (const auto &[tenant, state] : _tenants)
        for (const auto &queued : state.queue)
            if (!isBlocked(*queued.plan, blocked_keys))
                return true;
    return false;
}

std::vector<QueuedPlan>
PlanScheduler::nextBatch(const std::set<std::uint64_t> &blocked_keys)
{
    if (!dispatchable(blocked_keys))
        return {};

    // Classical DRR selection with unit plan cost: grant the quantum
    // once per visit, spend one unit per dispatched plan, move on
    // when the deficit runs dry. An idle tenant forfeits its deficit;
    // a tenant whose only work is key-blocked is passed over without
    // forfeiting (it is not idle by choice) and without charge.
    //
    // The loop is unbounded by design: a tenant's deficit can be
    // finitely negative (cross-tenant batch members are charged to
    // their own tenant), but some dispatchable plan exists here and
    // every full pass over the rotation grants quantum * weight >=
    // quantum to its tenant, so a selection is always reached.
    TenantState *selected = nullptr;
    std::deque<QueuedPlan>::iterator selected_plan;
    while (selected == nullptr) {
        TenantState &state = _tenants.at(_rotation[_rrIndex]);
        if (state.queue.empty()) {
            state.deficit = 0.0;
            state.charged = false;
            _rrIndex = (_rrIndex + 1) % _rotation.size();
            continue;
        }
        const auto eligible = std::find_if(
            state.queue.begin(), state.queue.end(),
            [&](const QueuedPlan &queued) {
                return !isBlocked(*queued.plan, blocked_keys);
            });
        if (eligible == state.queue.end()) {
            _rrIndex = (_rrIndex + 1) % _rotation.size();
            continue;
        }
        if (!state.charged) {
            state.deficit += _quantum * state.weight;
            state.charged = true;
        }
        if (state.deficit >= 1.0) {
            selected = &state;
            selected_plan = eligible;
            break;
        }
        state.charged = false;
        _rrIndex = (_rrIndex + 1) % _rotation.size();
    }

    std::vector<QueuedPlan> batch;
    batch.push_back(std::move(*selected_plan));
    selected->queue.erase(selected_plan);
    selected->deficit -= 1.0;

    const ExecutionPlan &head = *batch.front().plan;
    if (head.canBatchWith(head)) {
        // Batchable: fuse compatible plans — the owning tenant's
        // queue first, then the rotation — up to the smallest
        // batchLanes cap among the members.
        int cap = head.batchLanes;
        const auto harvest = [&](TenantState &state) {
            for (auto it = state.queue.begin();
                 it != state.queue.end() &&
                 static_cast<int>(batch.size()) < cap;) {
                // A candidate may only join if the batch, itself
                // included, fits under the smallest lane cap among
                // the members-so-far AND the candidate's own.
                if (head.canBatchWith(*it->plan) &&
                    static_cast<int>(batch.size()) <
                        std::min(cap, it->plan->batchLanes)) {
                    cap = std::min(cap, it->plan->batchLanes);
                    batch.push_back(std::move(*it));
                    it = state.queue.erase(it);
                    state.deficit -= 1.0;
                } else {
                    ++it;
                }
            }
        };
        harvest(*selected);
        for (const auto &tenant : _rotation) {
            if (static_cast<int>(batch.size()) >= cap)
                break;
            TenantState &state = _tenants.at(tenant);
            if (&state != selected)
                harvest(state);
        }
    }

    auto &metrics = obs::MetricsRegistry::global();
    metrics.counter("serving.plans_dispatched")
        .add(static_cast<std::int64_t>(batch.size()));
    const double now = _clock();
    if (batch.size() > 1) {
        metrics.counter("serving.batches_formed").add();
        metrics.histogram("serving.batch_lanes")
            .observe(static_cast<double>(batch.size()));
        if (obs::traceActive()) {
            std::set<std::string> tenants;
            for (const auto &member : batch)
                tenants.insert(member.plan->tenant);
            obs::Trace::global().record(
                obs::EventType::BatchFormed, -1,
                static_cast<std::int64_t>(batch.size()), -1, now,
                obs::kFrontierTrack,
                static_cast<std::int64_t>(tenants.size()));
        }
    }
    if (obs::traceActive())
        for (const auto &member : batch)
            obs::Trace::global().record(
                obs::EventType::PlanDispatched, -1,
                static_cast<std::int64_t>(member.requestId), -1, now,
                obs::kFrontierTrack,
                static_cast<std::int64_t>(batch.size()));
    return batch;
}

} // namespace stats::serving
