#include "serving/admission.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/lint.hpp"
#include "benchmarks/common/benchmark.hpp"
#include "ir/bytecode_verifier.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "midend/midend.hpp"
#include "midend/substitute.hpp"
#include "replay/fault_plan.hpp"

namespace stats::serving {

const char *
rejectReasonName(RejectReason reason)
{
    switch (reason) {
      case RejectReason::None:          return "None";
      case RejectReason::MalformedPlan: return "MalformedPlan";
      case RejectReason::VersionSkew:   return "VersionSkew";
      case RejectReason::ParseError:    return "ParseError";
      case RejectReason::VerifyError:   return "VerifyError";
      case RejectReason::AnalysisError: return "AnalysisError";
      case RejectReason::UnknownModule: return "UnknownModule";
      case RejectReason::QuotaExceeded: return "QuotaExceeded";
      case RejectReason::QueueFull:     return "QueueFull";
      case RejectReason::Draining:      return "Draining";
    }
    return "?";
}

bool
isBackpressure(RejectReason reason)
{
    return reason == RejectReason::QuotaExceeded ||
           reason == RejectReason::QueueFull ||
           reason == RejectReason::Draining;
}

AdmissionController::AdmissionController(TenantQuota default_quota,
                                         Clock clock)
    : _defaultQuota(default_quota), _clock(std::move(clock))
{
}

void
AdmissionController::setQuota(const std::string &tenant,
                              TenantQuota quota)
{
    _quotas[tenant] = quota;
}

const TenantQuota &
AdmissionController::quotaFor(const std::string &tenant) const
{
    const auto it = _quotas.find(tenant);
    return it == _quotas.end() ? _defaultQuota : it->second;
}

AdmissionVerdict
AdmissionController::admitQuota(const std::string &tenant,
                                std::size_t queued)
{
    const TenantQuota &quota = quotaFor(tenant);
    const double now = _clock();
    Bucket &bucket = _buckets[tenant];
    if (!bucket.primed) {
        bucket.tokens = quota.burst;
        bucket.lastRefill = now;
        bucket.primed = true;
    } else {
        const double elapsed = std::max(0.0, now - bucket.lastRefill);
        bucket.tokens = std::min(
            quota.burst, bucket.tokens + elapsed * quota.ratePerSec);
        bucket.lastRefill = now;
    }

    AdmissionVerdict verdict;
    if (queued >= quota.maxQueued) {
        verdict.reason = RejectReason::QueueFull;
        verdict.detail = "tenant '" + tenant + "' has " +
                         std::to_string(queued) +
                         " queued plans (bound " +
                         std::to_string(quota.maxQueued) + ")";
        // The queue drains by being served, not by time; suggest one
        // token interval as the polling cadence.
        verdict.retryAfterSeconds =
            quota.ratePerSec > 0.0 ? 1.0 / quota.ratePerSec : 1.0;
        return verdict;
    }
    if (bucket.tokens < 1.0) {
        verdict.reason = RejectReason::QuotaExceeded;
        verdict.detail = "tenant '" + tenant +
                         "' is over its admission rate";
        verdict.retryAfterSeconds =
            quota.ratePerSec > 0.0
                ? (1.0 - bucket.tokens) / quota.ratePerSec
                : 1.0;
        return verdict;
    }
    bucket.tokens -= 1.0;
    return verdict;
}

AdmissionVerdict
AdmissionController::validate(const ExecutionPlan &plan,
                              bool run_analysis)
{
    AdmissionVerdict verdict;
    if (const std::string problem = plan.validate(); !problem.empty()) {
        verdict.reason = RejectReason::MalformedPlan;
        verdict.detail = problem;
        return verdict;
    }
    // Fault specs are inert for sequential interpretation (no engine
    // choice points), but a spec that cannot parse is a client bug —
    // reject it up front for every kind.
    if (!plan.faults.empty()) {
        std::string fault_error;
        if (!replay::FaultPlan::fromSpec(plan.faults, fault_error)) {
            verdict.reason = RejectReason::MalformedPlan;
            verdict.detail = "fault plan: " + fault_error;
            return verdict;
        }
    }

    if (plan.kind == JobKind::Benchmark) {
        const auto &names = benchmarks::allBenchmarkNames();
        if (std::find(names.begin(), names.end(), plan.moduleRef) ==
            names.end()) {
            verdict.reason = RejectReason::UnknownModule;
            verdict.detail =
                "unknown benchmark '" + plan.moduleRef + "'";
        }
        return verdict;
    }

    // Inline IR: the same gates statscc pipeline applies, reusing the
    // lint registry and the post-regalloc bytecode verifier at
    // admission time — a plan in a queue is already known-good.
    std::string parse_error;
    auto module = ir::tryParseModule(plan.moduleText, parse_error);
    if (!module) {
        verdict.reason = RejectReason::ParseError;
        verdict.detail = parse_error;
        return verdict;
    }
    if (const auto problems = ir::verifyModule(*module);
        !problems.empty()) {
        verdict.reason = RejectReason::VerifyError;
        verdict.detail = problems.front();
        return verdict;
    }
    if (module->stateDeps.empty()) {
        verdict.reason = RejectReason::VerifyError;
        verdict.detail = "module declares no state dependence";
        return verdict;
    }
    midend::runMiddleEnd(*module);
    if (const auto problems = ir::verifyModule(*module);
        !problems.empty()) {
        verdict.reason = RejectReason::VerifyError;
        verdict.detail = "midend: " + problems.front();
        return verdict;
    }
    // The configuration point must bind to real tradeoffs with
    // in-range indices — the back-end treats violations as compiler
    // bugs (panics), so they must never get past admission.
    for (const auto &[name, index] : plan.tradeoffIndices) {
        const auto *meta = module->findTradeoff(name);
        if (meta == nullptr) {
            verdict.reason = RejectReason::VerifyError;
            verdict.detail =
                "configuration point names unknown tradeoff '" +
                name + "'";
            return verdict;
        }
        const std::int64_t size = midend::sizeOf(*module, *meta);
        if (index < 0 || index >= size) {
            verdict.reason = RejectReason::VerifyError;
            verdict.detail = "configuration point index " +
                             std::to_string(index) +
                             " out of range for tradeoff '" + name +
                             "' (size " + std::to_string(size) + ")";
            return verdict;
        }
    }
    if (run_analysis) {
        analysis::LintOptions lint;
        lint.bytecodeVerifier = ir::bc::verifyCompiledModule;
        const auto diagnostics = analysis::runAnalyses(*module, lint);
        if (analysis::hasErrors(diagnostics)) {
            std::ostringstream detail;
            analysis::writeDiagnosticsText(detail, "plan",
                                           diagnostics);
            verdict.reason = RejectReason::AnalysisError;
            verdict.detail = detail.str();
            return verdict;
        }
    }
    return verdict;
}

} // namespace stats::serving
