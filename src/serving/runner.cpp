#include "serving/runner.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <utility>

#include "backend/backend.hpp"
#include "benchmarks/common/benchmark.hpp"
#include "exec/sim_executor.hpp"
#include "ir/parser.hpp"
#include "midend/midend.hpp"
#include "observability/metrics.hpp"
#include "replay/record_log.hpp"
#include "replay/session.hpp"
#include "sdi/spec_engine.hpp"
#include "support/rng.hpp"
#include "support/seed_sequence.hpp"
#include "testing/oracle.hpp"

namespace stats::serving {

namespace {

using testing::noiseFor;
using testing::wrapState;

/** Engine input: a value plus its position (for attempt counting). */
struct In
{
    int pos = 0;
    long long value = 0;
};

/** Engine output: the state observed before the invocation. */
struct Out
{
    int pos = 0;
    long long observed = 0;
};

/** The plan's input stream (a pure function of its root seed). */
std::vector<In>
deriveInputs(const ExecutionPlan &plan)
{
    const support::SeedSequence sequence(plan.rootSeed);
    support::Xoshiro256 rng(sequence.derive("inputs"));
    std::vector<In> inputs;
    for (int p = 0; p < plan.inputs; ++p)
        inputs.push_back({p, rng.uniformInt(0, 999)});
    return inputs;
}

std::uint64_t
noiseSeed(const ExecutionPlan &plan)
{
    return support::SeedSequence(plan.rootSeed).derive("noise");
}

/** Deterministic result bytes: varint count + zigzag states. */
std::string
encodeStates(const std::vector<long long> &states)
{
    std::string out;
    replay::putVarint(out, states.size());
    for (const long long state : states)
        replay::putVarint(out, replay::zigzagEncode(state));
    return out;
}

std::string
encodeSignature(const std::vector<double> &signature)
{
    std::string out;
    replay::putVarint(out, signature.size());
    for (const double value : signature) {
        std::uint64_t bits = 0;
        __builtin_memcpy(&bits, &value, sizeof bits);
        replay::putVarint(out, bits);
    }
    return out;
}

long long
interpStep(ir::ExecutableModule &exec, const std::string &function,
           long long input, long long state)
{
    return exec
        .call(function,
              {ir::RtValue::ofInt(input), ir::RtValue::ofInt(state)})
        .asInt();
}

/**
 * RAII per-run record/replay scope. Owns a *private* ReplaySession —
 * engine, RecordLog, fault plan, and seed streams scoped to this one
 * plan execution — and pins it to the constructing thread, so hooks
 * fired while the plan runs route here instead of the process-global
 * session. Concurrent plans on other worker threads each carry their
 * own scope and never observe each other's mode flips. The captured
 * log is harvested into the PlanResult on destruction.
 *
 * A plan that neither records nor injects faults installs nothing
 * and runs under the thread's ambient session — which lets a caller
 * replay a served log by putting its own session into Replay mode
 * around runPlan (RunnerTest pins this).
 */
class RecordScope
{
  public:
    RecordScope(const ExecutionPlan &plan, PlanResult &result,
                std::string &error)
        : _result(result)
    {
        if (plan.recordChoices || !plan.faults.empty())
            _install.emplace(_session);
        if (!plan.faults.empty()) {
            std::string fault_error;
            auto fault_plan =
                replay::FaultPlan::fromSpec(plan.faults, fault_error);
            if (!fault_plan) {
                error = "fault plan: " + fault_error;
                return;
            }
            _session.setFaultPlan(*fault_plan);
        }
        if (plan.recordChoices) {
            _session.startRecording(plan.rootSeed);
            _session.setMetadata("tenant", plan.tenant);
            _session.setMetadata("kind", jobKindName(plan.kind));
            _session.setMetadata("seed",
                                 std::to_string(plan.rootSeed));
            _recording = true;
        }
        _armed = true;
    }

    bool armed() const { return _armed; }

    /** The scoped session (for extra metadata). */
    replay::ReplaySession &session() { return _session; }

    ~RecordScope()
    {
        if (_recording)
            _result.recordLog =
                _session.finishRecording().saveToString();
    }

  private:
    PlanResult &_result;
    replay::ReplaySession _session;
    std::optional<replay::ScopedSessionInstall> _install;
    bool _recording = false;
    bool _armed = false;
};

} // namespace

/**
 * One compiled configuration, shared by every plan with the same
 * compatibility key. The frozen module is immutable and shared; the
 * ExecutableModules over it are not synchronized, so idle instances
 * sit in a pool and each dispatch leases one exclusively.
 */
struct PlanRunner::Compiled
{
    std::shared_ptr<const ir::Module> module;
    ir::ExecTier execTier = ir::ExecTier::Auto;
    std::uint64_t stepBudget = 0;
    std::string computeFn;
    std::string auxFn;

    std::mutex poolMutex;
    std::vector<std::shared_ptr<ir::ExecutableModule>> pool;
};

/** RAII exclusive lease of one ExecutableModule instance. */
class PlanRunner::ExecLease
{
  public:
    explicit ExecLease(std::shared_ptr<Compiled> entry)
        : _entry(std::move(entry))
    {
        {
            std::lock_guard<std::mutex> lock(_entry->poolMutex);
            if (!_entry->pool.empty()) {
                _exec = std::move(_entry->pool.back());
                _entry->pool.pop_back();
            }
        }
        if (!_exec) {
            // Pool dry: stand up another instance over the shared
            // frozen module (deterministic, so instances are
            // interchangeable).
            _exec = std::make_shared<ir::ExecutableModule>(
                *_entry->module, _entry->execTier);
            _exec->setStepBudget(_entry->stepBudget);
        }
    }

    ~ExecLease()
    {
        std::lock_guard<std::mutex> lock(_entry->poolMutex);
        _entry->pool.push_back(std::move(_exec));
    }

    ExecLease(const ExecLease &) = delete;
    ExecLease &operator=(const ExecLease &) = delete;

    ir::ExecutableModule &operator*() { return *_exec; }

  private:
    std::shared_ptr<Compiled> _entry;
    std::shared_ptr<ir::ExecutableModule> _exec;
};

std::shared_ptr<PlanRunner::Compiled>
PlanRunner::compiled(const ExecutionPlan &plan, std::string &error)
{
    // Compilation is serialized under the cache mutex: the lock is
    // held across parse → middle-end → instantiate so two workers
    // racing on the same key never compile twice. Execution (the
    // expensive part) runs outside any runner lock.
    const std::uint64_t key = plan.compatibilityKey();
    std::lock_guard<std::mutex> lock(_cacheMutex);
    if (const auto it = _cache.find(key); it != _cache.end()) {
        _cacheHits.fetch_add(1, std::memory_order_relaxed);
        obs::MetricsRegistry::global()
            .counter("serving.compile_cache_hits")
            .add();
        return it->second;
    }

    auto module = ir::tryParseModule(plan.moduleText, error);
    if (!module)
        return nullptr;
    midend::runMiddleEnd(*module);
    if (module->stateDeps.empty()) {
        error = "module declares no state dependence";
        return nullptr;
    }

    backend::BackendConfig config;
    config.execTier = plan.execTier;
    // Admission already linted; skip the per-instantiation audit.
    config.auditRanges = false;
    config.tradeoffIndices = plan.tradeoffIndices;
    for (const auto &dep : module->stateDeps)
        if (!dep.auxFn.empty())
            config.auxiliaryDeps.insert(dep.name);

    backend::Executable executable =
        backend::instantiateExecutable(*module, config);
    executable.exec->setStepBudget(plan.stepBudget);

    auto entry = std::make_shared<Compiled>();
    entry->module = executable.module;
    entry->execTier = plan.execTier;
    entry->stepBudget = plan.stepBudget;
    entry->pool.push_back(std::move(executable.exec));
    const ir::StateDepMeta &dep = entry->module->stateDeps.front();
    entry->computeFn = dep.computeFn;
    entry->auxFn = dep.auxFn.empty() ? dep.computeFn : dep.auxFn;

    _cache.emplace(key, entry);
    obs::MetricsRegistry::global()
        .counter("serving.compile_cache_misses")
        .add();
    return entry;
}

PlanResult
PlanRunner::runSequential(const ExecutionPlan &plan)
{
    std::vector<QueuedPlan> solo(1);
    solo[0].plan = std::make_shared<const ExecutionPlan>(plan);
    return std::move(runBatch(solo).front());
}

std::vector<PlanResult>
PlanRunner::runBatch(const std::vector<QueuedPlan> &batch)
{
    std::vector<PlanResult> results(batch.size());
    if (batch.empty())
        return results;
    if (batch.size() == 1 &&
        batch.front().plan->kind != JobKind::IrSequential) {
        results[0] = runPlan(*batch.front().plan);
        return results;
    }

    // Fused sequential lanes: one compiled module (same compatibility
    // key by construction), per-lane seed/noise/state streams, one
    // callBatch dispatch per step. Retired lanes (shorter input
    // streams) drop out; scalar call() is the fallback when batching
    // does not apply to the function.
    std::string error;
    const auto entry = compiled(*batch.front().plan, error);
    if (!entry) {
        for (auto &result : results)
            result.error = error;
        return results;
    }

    ExecLease lease(entry);
    ir::ExecutableModule &exec = *lease;
    const std::string &fn = entry->computeFn;

    const std::size_t lanes = batch.size();
    std::vector<std::vector<In>> inputs(lanes);
    std::vector<std::uint64_t> noise_seeds(lanes);
    std::vector<long long> states(lanes);
    std::vector<std::vector<long long>> observed(lanes);
    int longest = 0;
    for (std::size_t l = 0; l < lanes; ++l) {
        const ExecutionPlan &plan = *batch[l].plan;
        inputs[l] = deriveInputs(plan);
        noise_seeds[l] = noiseSeed(plan);
        states[l] = plan.initialState;
        longest = std::max(longest, plan.inputs);
    }

    std::vector<ir::RtValue> in_col, state_col, stepped;
    std::vector<std::size_t> live;
    for (int step = 0; step < longest; ++step) {
        in_col.clear();
        state_col.clear();
        live.clear();
        for (std::size_t l = 0; l < lanes; ++l) {
            if (step >= batch[l].plan->inputs)
                continue;
            live.push_back(l);
            in_col.push_back(
                ir::RtValue::ofInt(inputs[l][std::size_t(step)].value));
            state_col.push_back(ir::RtValue::ofInt(states[l]));
        }
        if (live.empty())
            continue;
        stepped.assign(live.size(), ir::RtValue());
        const std::vector<const ir::RtValue *> columns = {
            in_col.data(), state_col.data()};
        if (!exec.callBatch(fn, live.size(), columns,
                            stepped.data())) {
            for (std::size_t i = 0; i < live.size(); ++i)
                stepped[i] = ir::RtValue::ofInt(
                    interpStep(exec, fn, in_col[i].i, state_col[i].i));
        }
        for (std::size_t i = 0; i < live.size(); ++i) {
            const std::size_t l = live[i];
            const ExecutionPlan &plan = *batch[l].plan;
            observed[l].push_back(states[l]);
            states[l] = wrapState(
                stepped[i].asInt() +
                noiseFor(noise_seeds[l], step, /*attempt=*/0,
                         plan.noisyPercent, plan.maxNoise));
        }
    }

    for (std::size_t l = 0; l < lanes; ++l) {
        auto all = observed[l];
        all.push_back(states[l]); // Final state closes the chain.
        results[l].ok = true;
        results[l].resultBlob = encodeStates(all);
        results[l].finalState = states[l];
        results[l].invocations = batch[l].plan->inputs;
        results[l].batchedLanes = static_cast<int>(lanes);
        // Sequential interpretation never consults the ReplaySession
        // (no engine choice points, fault specs inert), so a lane's
        // RecordLog is seed + metadata only and can be captured after
        // the fact — byte-identical whether the lane ran fused or
        // solo, which keeps fusion invisible in replay-fetch output.
        if (batch[l].plan->recordChoices) {
            PlanResult scratch;
            std::string record_error;
            {
                RecordScope scope(*batch[l].plan, scratch,
                                  record_error);
            } // ~RecordScope fills scratch.recordLog
            results[l].recordLog = std::move(scratch.recordLog);
        }
    }
    return results;
}

PlanResult
PlanRunner::runSpeculative(const ExecutionPlan &plan)
{
    PlanResult result;
    std::string error;
    const auto entry = compiled(plan, error);
    if (!entry) {
        result.error = error;
        return result;
    }
    ExecLease lease(entry);
    ir::ExecutableModule &exec = *lease;
    const std::string compute_fn = entry->computeFn;
    const std::string aux_fn = entry->auxFn;

    const std::vector<In> inputs = deriveInputs(plan);
    const std::uint64_t noise_seed = noiseSeed(plan);
    const int noisy = plan.noisyPercent;
    const int max_noise = plan.maxNoise;

    // Mirrors the differential oracle's engine harness
    // (src/testing/oracle.cpp): per-(position, attempt) noise draws,
    // a noise-free auxiliary, and a batched auxiliary that is
    // bit-identical to the scalar one.
    auto counters = std::make_shared<std::vector<std::atomic<int>>>(
        inputs.size());

    using Engine = sdi::SpecEngine<In, long long, Out>;
    Engine::ComputeFn compute =
        [&exec, &compute_fn, counters, noise_seed, noisy, max_noise](
            const In &in, long long &state,
            const sdi::ComputeContext &) {
            Out out{in.pos, state};
            const int attempt =
                (*counters)[std::size_t(in.pos)].fetch_add(
                    1, std::memory_order_relaxed);
            state = wrapState(
                interpStep(exec, compute_fn, in.value, state) +
                noiseFor(noise_seed, in.pos, attempt, noisy,
                         max_noise));
            Engine::Invocation inv;
            inv.output = std::make_unique<Out>(out);
            inv.cost = exec::Work{1e-5, 0.2};
            return inv;
        };
    Engine::ComputeFn auxiliary =
        [&exec, &aux_fn](const In &in, long long &state,
                         const sdi::ComputeContext &) {
            Out out{in.pos, state};
            state =
                wrapState(interpStep(exec, aux_fn, in.value, state));
            Engine::Invocation inv;
            inv.output = std::make_unique<Out>(out);
            inv.cost = exec::Work{5e-6, 0.2};
            return inv;
        };
    Engine::MatchFn matcher =
        [](const long long &spec,
           const std::vector<long long> &originals) -> int {
        for (std::size_t i = 0; i < originals.size(); ++i)
            if (originals[i] == spec)
                return int(i);
        return -1;
    };

    RecordScope scope(plan, result, error);
    if (!scope.armed()) {
        result.error = error;
        return result;
    }

    sim::MachineConfig machine;
    machine.dispatchOverhead = 0.0;
    exec::SimExecutor executor(
        machine, std::max(16, plan.limits.sdThreads));
    Engine engine(executor, inputs, (long long)plan.initialState,
                  compute, auxiliary, matcher, plan.limits);
    engine.start();
    engine.join();

    std::vector<long long> states;
    for (const auto &output : engine.outputs())
        states.push_back(output->observed);
    result.ok = true;
    result.resultBlob = encodeStates(states);
    result.finalState = states.empty() ? plan.initialState
                                       : states.back();
    result.invocations = engine.stats().invocations;
    return result;
}

PlanResult
PlanRunner::runBenchmark(const ExecutionPlan &plan)
{
    PlanResult result;
    auto bench = benchmarks::createBenchmark(plan.moduleRef);

    benchmarks::RunRequest request;
    request.mode = plan.benchMode == "original"
                       ? benchmarks::Mode::Original
                   : plan.benchMode == "seq"
                       ? benchmarks::Mode::SeqStats
                       : benchmarks::Mode::ParStats;
    request.threads = plan.benchThreads;
    request.workload =
        plan.benchWorkload == "bad"
            ? benchmarks::WorkloadKind::NonRepresentative
            : benchmarks::WorkloadKind::Representative;
    // One root seed drives every stream (docs/REPLAY.md §1), exactly
    // like `statscc run --seed=N`.
    const support::SeedSequence seeds(plan.rootSeed);
    request.workloadSeed = seeds.derive("workload");
    request.runSeed = seeds.derive("run");

    std::string error;
    RecordScope scope(plan, result, error);
    if (!scope.armed()) {
        result.error = error;
        return result;
    }
    if (plan.recordChoices) {
        auto &session = scope.session();
        session.setMetadata("benchmark", bench->name());
        session.setMetadata("mode", plan.benchMode);
        session.setMetadata("threads",
                            std::to_string(plan.benchThreads));
        session.setMetadata("workload", plan.benchWorkload);
    }

    const benchmarks::RunResult run = bench->run(request);
    result.ok = true;
    result.resultBlob = encodeSignature(run.signature);
    result.virtualSeconds = run.virtualSeconds;
    result.invocations = run.engineStats.invocations;
    result.finalState = run.engineStats.validations;
    return result;
}

PlanResult
PlanRunner::runPlan(const ExecutionPlan &plan)
{
    switch (plan.kind) {
      case JobKind::IrSequential:  return runSequential(plan);
      case JobKind::IrSpeculative: return runSpeculative(plan);
      case JobKind::Benchmark:     return runBenchmark(plan);
    }
    PlanResult result;
    result.error = "unknown job kind";
    return result;
}

} // namespace stats::serving
