/**
 * @file
 * The statsd wire protocol (docs/SERVING.md §6): length-prefixed
 * binary frames over a unix-domain stream socket.
 *
 * Frame layout:
 *
 *     u32-le payload length (type byte + body)
 *     u8     MsgType
 *     bytes  body (message-specific, varint/string coded with the
 *            RecordLog codec: LEB128 varints, length-prefixed strings)
 *
 * Request/response pairing is strict: each request frame yields
 * exactly one response frame on the same connection, in order. An
 * undecodable or unexpected frame yields ErrorResp and the
 * connection stays usable.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serving/admission.hpp"
#include "serving/server.hpp"

namespace stats::serving {

/** Protocol revision; a mismatch rejects the frame. */
inline constexpr std::uint8_t kProtocolVersion = 1;

enum class MsgType : std::uint8_t
{
    // Requests (client -> daemon).
    SubmitReq,      ///< body: plan binary bytes (ExecutionPlan::save).
    StatusReq,      ///< body: varint request id.
    ResultReq,      ///< body: varint request id.
    ReplayFetchReq, ///< body: varint request id.
    DrainReq,       ///< body: empty.

    // Responses (daemon -> client).
    SubmitOk,       ///< body: varint request id.
    SubmitRejected, ///< body: varint reason + varint retry-after ms
                    ///<       + string detail.
    StatusResp,     ///< body: varint RequestState + string tenant.
    ResultResp,     ///< body: varint RequestState + varint ok
                    ///<       + string error + string resultBlob
                    ///<       + varint zigzag finalState
                    ///<       + varint invocations + varint lanes.
    ReplayFetchResp,///< body: string RecordLog bytes ("" = none).
    DrainResp,      ///< body: varint requests completed.
    ErrorResp,      ///< body: string message.
};

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::ErrorResp;
    std::string body;
};

/** Encode a frame into its on-wire bytes. */
std::string encodeFrame(const Frame &frame);

/**
 * Blocking frame I/O on a connected stream socket. readFrame returns
 * nullopt on EOF or a malformed/oversized frame; writeFrame returns
 * false when the peer went away.
 */
std::optional<Frame> readFrame(int fd);
bool writeFrame(int fd, const Frame &frame);

/** Bound on a frame payload (plans and logs are small). */
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

// ------------------------------------------------ body codecs
// (shared by daemon and client; tests exercise round trips)

std::string encodeSubmitRejected(const AdmissionVerdict &verdict);
bool decodeSubmitRejected(const std::string &body,
                          AdmissionVerdict &verdict);

std::string encodeResult(const RequestStatus &status);
bool decodeResult(const std::string &body, RequestStatus &status);

std::string encodeRequestId(std::uint64_t request_id);
bool decodeRequestId(const std::string &body,
                     std::uint64_t &request_id);

std::string encodeStatus(const RequestStatus &status);
bool decodeStatus(const std::string &body, RequestState &state,
                  std::string &tenant);

} // namespace stats::serving
