/**
 * @file
 * Client side of the statsd wire protocol: one blocking connection,
 * one method per request type. `stats-cli` is a thin argv wrapper
 * over this class; tests use it directly against an in-process
 * Daemon.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serving/protocol.hpp"

namespace stats::serving {

class Client
{
  public:
    /** Connect to a statsd socket; sets `error` and stays
     *  disconnected on failure. */
    Client(const std::string &socket_path, std::string &error);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    bool connected() const { return _fd >= 0; }

    /**
     * Submit binary plan bytes. On admission returns the request id;
     * otherwise nullopt with the verdict in `verdict` (or a
     * transport problem in `error`).
     */
    std::optional<std::uint64_t> submit(const std::string &plan_bytes,
                                        AdmissionVerdict &verdict,
                                        std::string &error);

    /** Request state + tenant; Unknown for a bad id. */
    std::optional<RequestState> status(std::uint64_t request_id,
                                       std::string &tenant,
                                       std::string &error);

    /** Full result of a finished request. */
    std::optional<RequestStatus> result(std::uint64_t request_id,
                                        std::string &error);

    /** Serialized RecordLog bytes ("" when none was captured). */
    std::optional<std::string> replayFetch(std::uint64_t request_id,
                                           std::string &error);

    /** Drain the daemon; returns its lifetime completion count. */
    std::optional<std::uint64_t> drain(std::string &error);

  private:
    std::optional<Frame> roundTrip(const Frame &request,
                                   std::string &error);

    int _fd = -1;
};

} // namespace stats::serving
