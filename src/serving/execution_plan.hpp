/**
 * @file
 * The immutable execution plan: everything needed to reproduce one
 * served request (docs/SERVING.md §2 is the canonical schema
 * reference; tests/serving_test.cpp keeps the two in lockstep).
 *
 * The control plane validates an incoming request and emits a plan;
 * from that point on nothing mutates it (the server hands
 * `shared_ptr<const ExecutionPlan>` around). A plan plus the replay
 * subsystem makes every served run reproducible: re-running the same
 * plan yields byte-identical committed state, and the RecordLog
 * captured while serving it replays with zero divergence
 * (docs/REPLAY.md).
 *
 * Two serializations, both round-trippable:
 *  - **binary** (`saveToString`/`load`): magic `STPL`, varint schema
 *    version, fields in fixed order — deterministic bytes, pinned by
 *    a byte-exact golden in tests/golden/;
 *  - **text** (`toText`/`fromText`): `key value` lines with a
 *    heredoc-style inline-module block, the form `stats-cli submit`
 *    reads from disk.
 */

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "ir/exec_tier.hpp"
#include "sdi/spec_config.hpp"

namespace stats::serving {

/** Bumped on any change to the plan fields or their encoding.
 *  v2 added `noCache` (the result-cache escape hatch). */
inline constexpr std::uint64_t kPlanSchemaVersion = 2;

/** What kind of work a plan describes. */
enum class JobKind : std::uint8_t
{
    /**
     * Inline mini-IR module executed as a *sequential* chain of state
     * transitions. The cheap tier: compatible sequential jobs are
     * fused cross-request into the lanes of one
     * `ExecutableModule::callBatch` (docs/SERVING.md §4).
     */
    IrSequential,

    /**
     * Inline mini-IR module executed *speculatively* on the
     * SpecEngine (simulated executor, so committed states are a pure
     * function of the plan). Choice points are recorded for
     * `replay-fetch`.
     */
    IrSpeculative,

    /**
     * One of the six paper benchmarks (`moduleRef` names it), run
     * end-to-end on the engine exactly like `statscc run`.
     */
    Benchmark,
};

inline constexpr int kJobKindCount = 3;

const char *jobKindName(JobKind kind);
std::optional<JobKind> jobKindFromName(const std::string &name);

/**
 * One served request, frozen. Field semantics: docs/SERVING.md §2.
 */
struct ExecutionPlan
{
    // ------------------------------------------------ routing
    std::string tenant = "default";
    /** Intra-tenant ordering: higher first, FIFO within a level. */
    std::int64_t priority = 0;

    // ------------------------------------------------ program
    JobKind kind = JobKind::IrSequential;
    /** Benchmark name (Benchmark kind); "" for inline-IR kinds. */
    std::string moduleRef;
    /** Inline mini-IR text (IR kinds); "" for Benchmark kind. */
    std::string moduleText;

    /** Configuration point: aux tradeoff name -> value index. The map
     *  gives a canonical order, part of both byte formats. */
    std::map<std::string, std::int64_t> tradeoffIndices;

    // ------------------------------------------------ engine limits
    /** SpecConfig for the speculative run (IrSpeculative kind). */
    sdi::SpecConfig limits;
    /** Interpreter step budget per top-level call (IR kinds). */
    std::uint64_t stepBudget = 1'000'000;

    // ------------------------------------------------ execution tier
    ir::ExecTier execTier = ir::ExecTier::Auto;
    /** Cross-request fusion cap: how many compatible sequential jobs
     *  (including this one) may share one callBatch dispatch; 1
     *  disables fusion for this plan. */
    int batchLanes = 8;

    // ------------------------------------------------ run shape
    /** Root of every derived stream (docs/REPLAY.md §1). */
    std::uint64_t rootSeed = 1;
    /** IR kinds: inputs fed to the state dependence. */
    int inputs = 24;
    long long initialState = 0;
    /** Modeled nondeterminism (the fuzzer's noise model): percent of
     *  transitions perturbed, and the perturbation magnitude. */
    int noisyPercent = 0;
    int maxNoise = 3;

    // ------------------------------------------------ benchmark shape
    /** Benchmark kind only: `statscc run` equivalents. */
    std::string benchMode = "par";
    int benchThreads = 8;
    std::string benchWorkload = "rep";

    // ------------------------------------------------ replay & faults
    /** Fault-plan spec (docs/REPLAY.md §4 grammar); "" = none. */
    std::string faults;
    /** Capture a RecordLog while serving (needed by replay-fetch). */
    bool recordChoices = true;

    /** Bypass the server's (plan, seed) result cache for this
     *  request: never serve it from a cached result and never store
     *  its result. The `stats-cli submit --no-cache` escape hatch. */
    bool noCache = false;

    bool operator==(const ExecutionPlan &) const = default;

    /**
     * Structural sanity independent of the program payload; returns
     * "" when the plan is well-formed, else a one-line problem.
     */
    std::string validate() const;

    /**
     * Stable hash of the fields that must agree for two sequential
     * jobs to share one batch (module text, configuration point,
     * tier, step budget). Also the compile-cache key.
     */
    std::uint64_t compatibilityKey() const;

    /** True when this plan and `other` may be fused into one batch. */
    bool canBatchWith(const ExecutionPlan &other) const;

    /**
     * Canonical byte string of every *result-affecting* field plus
     * the root seed: the server's result-cache key. Routing and
     * shaping fields that are invisible in the result bytes (tenant,
     * priority, batchLanes, noCache itself) are excluded, so the same
     * work submitted by different tenants — or at different fusion
     * caps — shares one cache entry. Exact bytes, not a hash: a
     * collision can never serve the wrong result.
     */
    std::string resultCacheKey() const;

    // ------------------------------------------------ serialization
    /** Deterministic binary encoding (schema-versioned). */
    std::string saveToString() const;

    /**
     * Decode the binary form. Returns nullopt and sets `error` on bad
     * magic, an unsupported schema version (version skew is a
     * *rejection*, never a guess), or truncated/corrupt payload.
     */
    static std::optional<ExecutionPlan> load(const std::string &bytes,
                                             std::string &error);

    /** Text encoding (round-trips through fromText). */
    std::string toText() const;
    static std::optional<ExecutionPlan>
    fromText(const std::string &text, std::string &error);
};

} // namespace stats::serving
