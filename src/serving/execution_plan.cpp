#include "serving/execution_plan.hpp"

#include <sstream>

#include "replay/record_log.hpp"
#include "support/string_utils.hpp"

namespace stats::serving {

namespace {

constexpr char kMagic[4] = {'S', 'T', 'P', 'L'};

using replay::getVarint;
using replay::putVarint;
using replay::zigzagDecode;
using replay::zigzagEncode;

void
putString(std::string &out, const std::string &s)
{
    putVarint(out, s.size());
    out += s;
}

bool
getString(const std::string &in, std::size_t &pos, std::string &out)
{
    std::uint64_t size = 0;
    // `size > in.size() - pos` instead of `pos + size > in.size()`:
    // the latter wraps for a huge declared size.
    if (!getVarint(in, pos, size) || size > in.size() - pos)
        return false;
    out = in.substr(pos, size);
    pos += size;
    return true;
}

void
putSigned(std::string &out, std::int64_t value)
{
    putVarint(out, zigzagEncode(value));
}

bool
getSigned(const std::string &in, std::size_t &pos, std::int64_t &value)
{
    std::uint64_t raw = 0;
    if (!getVarint(in, pos, raw))
        return false;
    value = zigzagDecode(raw);
    return true;
}

/** FNV-1a over a byte string: the compatibility/compile-cache key. */
std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const unsigned char c : bytes) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

const char *
tierWord(ir::ExecTier tier)
{
    return ir::execTierName(tier);
}

} // namespace

const char *
jobKindName(JobKind kind)
{
    switch (kind) {
      case JobKind::IrSequential:  return "ir-seq";
      case JobKind::IrSpeculative: return "ir-spec";
      case JobKind::Benchmark:     return "benchmark";
    }
    return "?";
}

std::optional<JobKind>
jobKindFromName(const std::string &name)
{
    for (int i = 0; i < kJobKindCount; ++i) {
        const auto kind = static_cast<JobKind>(i);
        if (name == jobKindName(kind))
            return kind;
    }
    return std::nullopt;
}

std::string
ExecutionPlan::validate() const
{
    if (tenant.empty())
        return "plan has an empty tenant id";
    if (kind == JobKind::Benchmark) {
        if (moduleRef.empty())
            return "benchmark plan names no benchmark (moduleRef)";
        if (!moduleText.empty())
            return "benchmark plan carries inline IR";
        if (benchThreads < 1 || benchThreads > 512)
            return "benchmark threads out of range [1, 512]";
        if (benchMode != "original" && benchMode != "seq" &&
            benchMode != "par")
            return "unknown benchmark mode '" + benchMode + "'";
        if (benchWorkload != "rep" && benchWorkload != "bad")
            return "unknown benchmark workload '" + benchWorkload + "'";
    } else {
        if (moduleText.empty())
            return "inline-IR plan carries no module text";
        if (!moduleRef.empty())
            return "inline-IR plan also names a moduleRef";
        if (inputs < 1 || inputs > 4096)
            return "input count out of range [1, 4096]";
        if (stepBudget < 1)
            return "step budget must be at least 1";
    }
    if (batchLanes < 1 || batchLanes > 64)
        return "batchLanes out of range [1, 64]";
    if (noisyPercent < 0 || noisyPercent > 100)
        return "noisyPercent out of range [0, 100]";
    if (maxNoise < 0)
        return "maxNoise must be non-negative";
    if (limits.groupSize < 1 || limits.auxWindow < 0 ||
        limits.maxReexecutions < 0 || limits.rollbackDepth < 0 ||
        limits.sdThreads < 1 || limits.innerThreads < 1 ||
        limits.auxBatchGroups < 1)
        return "engine limits out of range";
    return "";
}

std::uint64_t
ExecutionPlan::compatibilityKey() const
{
    std::string canon;
    putString(canon, moduleText);
    putVarint(canon, tradeoffIndices.size());
    for (const auto &[name, index] : tradeoffIndices) {
        putString(canon, name);
        putSigned(canon, index);
    }
    putVarint(canon, static_cast<std::uint64_t>(execTier));
    putVarint(canon, stepBudget);
    return fnv1a(canon);
}

bool
ExecutionPlan::canBatchWith(const ExecutionPlan &other) const
{
    return kind == JobKind::IrSequential &&
           other.kind == JobKind::IrSequential && batchLanes > 1 &&
           other.batchLanes > 1 &&
           compatibilityKey() == other.compatibilityKey();
}

std::string
ExecutionPlan::saveToString() const
{
    std::string out(kMagic, sizeof kMagic);
    putVarint(out, kPlanSchemaVersion);
    putString(out, tenant);
    putSigned(out, priority);
    putVarint(out, static_cast<std::uint64_t>(kind));
    putString(out, moduleRef);
    putString(out, moduleText);
    putVarint(out, tradeoffIndices.size());
    for (const auto &[name, index] : tradeoffIndices) {
        putString(out, name);
        putSigned(out, index);
    }
    putVarint(out, limits.useAuxiliary ? 1 : 0);
    putSigned(out, limits.groupSize);
    putSigned(out, limits.auxWindow);
    putSigned(out, limits.maxReexecutions);
    putSigned(out, limits.rollbackDepth);
    putSigned(out, limits.sdThreads);
    putSigned(out, limits.innerThreads);
    putSigned(out, limits.auxBatchGroups);
    // The one floating-point field travels as its bit pattern; the
    // plan stays a pure byte-for-byte round trip.
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t clone_bits = 0;
    __builtin_memcpy(&clone_bits, &limits.stateCloneCost,
                     sizeof clone_bits);
    putVarint(out, clone_bits);
    putVarint(out, stepBudget);
    putVarint(out, static_cast<std::uint64_t>(execTier));
    putSigned(out, batchLanes);
    putVarint(out, rootSeed);
    putSigned(out, inputs);
    putSigned(out, initialState);
    putSigned(out, noisyPercent);
    putSigned(out, maxNoise);
    putString(out, benchMode);
    putSigned(out, benchThreads);
    putString(out, benchWorkload);
    putString(out, faults);
    putVarint(out, recordChoices ? 1 : 0);
    putVarint(out, noCache ? 1 : 0);
    return out;
}

std::string
ExecutionPlan::resultCacheKey() const
{
    // Normalize away the fields that cannot influence the result
    // bytes, then reuse the canonical binary encoding.
    ExecutionPlan canon = *this;
    canon.tenant = "default";
    canon.priority = 0;
    canon.batchLanes = 1;
    canon.noCache = false;
    return canon.saveToString();
}

std::optional<ExecutionPlan>
ExecutionPlan::load(const std::string &bytes, std::string &error)
{
    if (bytes.size() < sizeof kMagic ||
        bytes.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0) {
        error = "not an execution plan (bad magic)";
        return std::nullopt;
    }
    std::size_t pos = sizeof kMagic;
    const auto truncated = [&]() -> std::optional<ExecutionPlan> {
        error = "truncated execution plan";
        return std::nullopt;
    };

    std::uint64_t version = 0;
    if (!getVarint(bytes, pos, version))
        return truncated();
    if (version != kPlanSchemaVersion) {
        error = "unsupported plan schema version " +
                std::to_string(version) + " (this build speaks " +
                std::to_string(kPlanSchemaVersion) + ")";
        return std::nullopt;
    }

    ExecutionPlan plan;
    std::uint64_t u = 0;
    std::int64_t s = 0;
    if (!getString(bytes, pos, plan.tenant))
        return truncated();
    if (!getSigned(bytes, pos, plan.priority))
        return truncated();
    if (!getVarint(bytes, pos, u))
        return truncated();
    if (u >= kJobKindCount) {
        error = "unknown job kind ordinal " + std::to_string(u);
        return std::nullopt;
    }
    plan.kind = static_cast<JobKind>(u);
    if (!getString(bytes, pos, plan.moduleRef) ||
        !getString(bytes, pos, plan.moduleText))
        return truncated();
    if (!getVarint(bytes, pos, u))
        return truncated();
    for (std::uint64_t i = 0; i < u; ++i) {
        std::string name;
        if (!getString(bytes, pos, name) || !getSigned(bytes, pos, s))
            return truncated();
        plan.tradeoffIndices[name] = s;
    }
    if (!getVarint(bytes, pos, u))
        return truncated();
    plan.limits.useAuxiliary = u != 0;
    const auto intField = [&](int &field) {
        if (!getSigned(bytes, pos, s))
            return false;
        field = static_cast<int>(s);
        return true;
    };
    if (!intField(plan.limits.groupSize) ||
        !intField(plan.limits.auxWindow) ||
        !intField(plan.limits.maxReexecutions) ||
        !intField(plan.limits.rollbackDepth) ||
        !intField(plan.limits.sdThreads) ||
        !intField(plan.limits.innerThreads) ||
        !intField(plan.limits.auxBatchGroups))
        return truncated();
    if (!getVarint(bytes, pos, u))
        return truncated();
    __builtin_memcpy(&plan.limits.stateCloneCost, &u,
                     sizeof plan.limits.stateCloneCost);
    if (!getVarint(bytes, pos, plan.stepBudget))
        return truncated();
    if (!getVarint(bytes, pos, u))
        return truncated();
    if (u > static_cast<std::uint64_t>(ir::ExecTier::Auto)) {
        error = "unknown exec tier ordinal " + std::to_string(u);
        return std::nullopt;
    }
    plan.execTier = static_cast<ir::ExecTier>(u);
    if (!intField(plan.batchLanes))
        return truncated();
    if (!getVarint(bytes, pos, plan.rootSeed))
        return truncated();
    if (!intField(plan.inputs))
        return truncated();
    if (!getSigned(bytes, pos, s))
        return truncated();
    plan.initialState = s;
    if (!intField(plan.noisyPercent) || !intField(plan.maxNoise))
        return truncated();
    if (!getString(bytes, pos, plan.benchMode))
        return truncated();
    if (!intField(plan.benchThreads))
        return truncated();
    if (!getString(bytes, pos, plan.benchWorkload) ||
        !getString(bytes, pos, plan.faults))
        return truncated();
    if (!getVarint(bytes, pos, u))
        return truncated();
    plan.recordChoices = u != 0;
    if (!getVarint(bytes, pos, u))
        return truncated();
    plan.noCache = u != 0;
    if (pos != bytes.size()) {
        error = "trailing bytes after the execution plan";
        return std::nullopt;
    }
    return plan;
}

std::string
ExecutionPlan::toText() const
{
    std::ostringstream out;
    out << "plan v" << kPlanSchemaVersion << "\n";
    out << "kind " << jobKindName(kind) << "\n";
    out << "tenant " << tenant << "\n";
    out << "priority " << priority << "\n";
    out << "seed " << rootSeed << "\n";
    out << "exec-tier " << tierWord(execTier) << "\n";
    out << "batch-lanes " << batchLanes << "\n";
    out << "step-budget " << stepBudget << "\n";
    out << "record-choices " << (recordChoices ? 1 : 0) << "\n";
    out << "no-cache " << (noCache ? 1 : 0) << "\n";
    out << "limits aux=" << (limits.useAuxiliary ? 1 : 0)
        << " group=" << limits.groupSize
        << " window=" << limits.auxWindow
        << " reexec=" << limits.maxReexecutions
        << " rollback=" << limits.rollbackDepth
        << " sd-threads=" << limits.sdThreads
        << " inner-threads=" << limits.innerThreads
        << " aux-batch=" << limits.auxBatchGroups << "\n";
    out << "inputs " << inputs << "\n";
    out << "initial-state " << initialState << "\n";
    out << "noisy-percent " << noisyPercent << "\n";
    out << "max-noise " << maxNoise << "\n";
    if (!tradeoffIndices.empty()) {
        out << "config ";
        bool first = true;
        for (const auto &[name, index] : tradeoffIndices) {
            out << (first ? "" : ",") << name << ":" << index;
            first = false;
        }
        out << "\n";
    }
    if (!faults.empty())
        out << "faults " << faults << "\n";
    if (kind == JobKind::Benchmark) {
        out << "benchmark " << moduleRef << "\n";
        out << "bench-mode " << benchMode << "\n";
        out << "bench-threads " << benchThreads << "\n";
        out << "bench-workload " << benchWorkload << "\n";
    } else {
        out << "module <<IR\n" << moduleText;
        if (!moduleText.empty() && moduleText.back() != '\n')
            out << "\n";
        out << "IR\n";
    }
    return out.str();
}

std::optional<ExecutionPlan>
ExecutionPlan::fromText(const std::string &text, std::string &error)
{
    ExecutionPlan plan;
    const auto lines = support::split(text, '\n');
    bool sawHeader = false;
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string line = support::trim(lines[li]);
        if (line.empty() || line[0] == '#')
            continue;
        const auto space = line.find(' ');
        const std::string key =
            space == std::string::npos ? line : line.substr(0, space);
        const std::string value =
            space == std::string::npos
                ? ""
                : support::trim(line.substr(space + 1));
        const auto lineError = [&](const std::string &message) {
            error = "plan text line " + std::to_string(li + 1) + ": " +
                    message;
        };
        try {
            if (key == "plan") {
                if (value != "v" + std::to_string(kPlanSchemaVersion)) {
                    lineError("unsupported plan text version '" +
                              value + "'");
                    return std::nullopt;
                }
                sawHeader = true;
            } else if (key == "kind") {
                const auto kind = jobKindFromName(value);
                if (!kind) {
                    lineError("unknown kind '" + value + "'");
                    return std::nullopt;
                }
                plan.kind = *kind;
            } else if (key == "tenant") {
                plan.tenant = value;
            } else if (key == "priority") {
                plan.priority = std::stoll(value);
            } else if (key == "seed") {
                plan.rootSeed = std::stoull(value);
            } else if (key == "exec-tier") {
                const auto tier = ir::parseExecTier(value);
                if (!tier) {
                    lineError("unknown exec-tier '" + value + "'");
                    return std::nullopt;
                }
                plan.execTier = *tier;
            } else if (key == "batch-lanes") {
                plan.batchLanes = std::stoi(value);
            } else if (key == "step-budget") {
                plan.stepBudget = std::stoull(value);
            } else if (key == "record-choices") {
                plan.recordChoices = value != "0";
            } else if (key == "no-cache") {
                plan.noCache = value != "0";
            } else if (key == "limits") {
                for (const auto &word :
                     support::splitWhitespace(value)) {
                    const auto eq = word.find('=');
                    if (eq == std::string::npos) {
                        lineError("limits wants key=value words");
                        return std::nullopt;
                    }
                    const std::string name = word.substr(0, eq);
                    const int number = std::stoi(word.substr(eq + 1));
                    if (name == "aux")
                        plan.limits.useAuxiliary = number != 0;
                    else if (name == "group")
                        plan.limits.groupSize = number;
                    else if (name == "window")
                        plan.limits.auxWindow = number;
                    else if (name == "reexec")
                        plan.limits.maxReexecutions = number;
                    else if (name == "rollback")
                        plan.limits.rollbackDepth = number;
                    else if (name == "sd-threads")
                        plan.limits.sdThreads = number;
                    else if (name == "inner-threads")
                        plan.limits.innerThreads = number;
                    else if (name == "aux-batch")
                        plan.limits.auxBatchGroups = number;
                    else {
                        lineError("unknown limit '" + name + "'");
                        return std::nullopt;
                    }
                }
            } else if (key == "inputs") {
                plan.inputs = std::stoi(value);
            } else if (key == "initial-state") {
                plan.initialState = std::stoll(value);
            } else if (key == "noisy-percent") {
                plan.noisyPercent = std::stoi(value);
            } else if (key == "max-noise") {
                plan.maxNoise = std::stoi(value);
            } else if (key == "config") {
                for (const auto &pair : support::split(value, ',')) {
                    // Last colon: tradeoff names may themselves be
                    // namespace-qualified (aux::T_42).
                    const auto colon = pair.rfind(':');
                    if (colon == std::string::npos) {
                        lineError("config wants name:index pairs");
                        return std::nullopt;
                    }
                    plan.tradeoffIndices[pair.substr(0, colon)] =
                        std::stoll(pair.substr(colon + 1));
                }
            } else if (key == "faults") {
                plan.faults = value;
            } else if (key == "benchmark") {
                plan.moduleRef = value;
            } else if (key == "bench-mode") {
                plan.benchMode = value;
            } else if (key == "bench-threads") {
                plan.benchThreads = std::stoi(value);
            } else if (key == "bench-workload") {
                plan.benchWorkload = value;
            } else if (key == "module") {
                if (value != "<<IR") {
                    lineError("module wants a <<IR heredoc");
                    return std::nullopt;
                }
                std::ostringstream module_text;
                bool closed = false;
                for (++li; li < lines.size(); ++li) {
                    if (support::trim(lines[li]) == "IR") {
                        closed = true;
                        break;
                    }
                    module_text << lines[li] << "\n";
                }
                if (!closed) {
                    lineError("unterminated module <<IR block");
                    return std::nullopt;
                }
                plan.moduleText = module_text.str();
            } else {
                lineError("unknown plan key '" + key + "'");
                return std::nullopt;
            }
        } catch (const std::exception &) {
            lineError("malformed number in '" + value + "'");
            return std::nullopt;
        }
    }
    if (!sawHeader) {
        error = "plan text is missing the 'plan v" +
                std::to_string(kPlanSchemaVersion) + "' header";
        return std::nullopt;
    }
    return plan;
}

} // namespace stats::serving
