#include "serving/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "replay/record_log.hpp"

namespace stats::serving {

namespace {

void
putString(std::string &out, const std::string &value)
{
    replay::putVarint(out, value.size());
    out += value;
}

bool
getString(const std::string &in, std::size_t &pos, std::string &value)
{
    std::uint64_t length = 0;
    if (!replay::getVarint(in, pos, length))
        return false;
    // Overflow-safe: pos <= in.size() after getVarint, and a huge
    // length must not wrap `pos + length` past the bounds check.
    if (length > in.size() - pos)
        return false;
    value = in.substr(pos, length);
    pos += length;
    return true;
}

bool
readAll(int fd, void *buffer, std::size_t bytes)
{
    auto *cursor = static_cast<char *>(buffer);
    while (bytes > 0) {
        const ssize_t n = ::read(fd, cursor, bytes);
        if (n == 0)
            return false; // EOF.
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        cursor += n;
        bytes -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeAll(int fd, const void *buffer, std::size_t bytes)
{
    const auto *cursor = static_cast<const char *>(buffer);
    while (bytes > 0) {
        const ssize_t n = ::write(fd, cursor, bytes);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        cursor += n;
        bytes -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

std::string
encodeFrame(const Frame &frame)
{
    const std::uint32_t length =
        static_cast<std::uint32_t>(frame.body.size() + 1);
    std::string wire;
    wire.reserve(4 + length);
    for (int shift = 0; shift < 32; shift += 8)
        wire.push_back(
            static_cast<char>((length >> shift) & 0xff));
    wire.push_back(static_cast<char>(frame.type));
    wire += frame.body;
    return wire;
}

std::optional<Frame>
readFrame(int fd)
{
    unsigned char header[4];
    if (!readAll(fd, header, sizeof header))
        return std::nullopt;
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i)
        length |= static_cast<std::uint32_t>(header[i]) << (8 * i);
    if (length < 1 || length > kMaxFrameBytes)
        return std::nullopt;

    Frame frame;
    unsigned char type = 0;
    if (!readAll(fd, &type, 1))
        return std::nullopt;
    frame.type = static_cast<MsgType>(type);
    frame.body.resize(length - 1);
    if (length > 1 && !readAll(fd, frame.body.data(), length - 1))
        return std::nullopt;
    return frame;
}

bool
writeFrame(int fd, const Frame &frame)
{
    const std::string wire = encodeFrame(frame);
    return writeAll(fd, wire.data(), wire.size());
}

std::string
encodeSubmitRejected(const AdmissionVerdict &verdict)
{
    std::string body;
    replay::putVarint(body,
                      static_cast<std::uint64_t>(verdict.reason));
    replay::putVarint(
        body, static_cast<std::uint64_t>(
                  verdict.retryAfterSeconds * 1000.0));
    putString(body, verdict.detail);
    return body;
}

bool
decodeSubmitRejected(const std::string &body,
                     AdmissionVerdict &verdict)
{
    std::size_t pos = 0;
    std::uint64_t reason = 0;
    std::uint64_t retry_ms = 0;
    if (!replay::getVarint(body, pos, reason) ||
        reason >= static_cast<std::uint64_t>(kRejectReasonCount) ||
        !replay::getVarint(body, pos, retry_ms) ||
        !getString(body, pos, verdict.detail))
        return false;
    verdict.reason = static_cast<RejectReason>(reason);
    verdict.retryAfterSeconds =
        static_cast<double>(retry_ms) / 1000.0;
    return pos == body.size();
}

std::string
encodeResult(const RequestStatus &status)
{
    std::string body;
    replay::putVarint(body,
                      static_cast<std::uint64_t>(status.state));
    replay::putVarint(body, status.result.ok ? 1 : 0);
    putString(body, status.result.error);
    putString(body, status.result.resultBlob);
    replay::putVarint(
        body, replay::zigzagEncode(status.result.finalState));
    replay::putVarint(
        body,
        static_cast<std::uint64_t>(status.result.invocations));
    replay::putVarint(
        body,
        static_cast<std::uint64_t>(status.result.batchedLanes));
    return body;
}

bool
decodeResult(const std::string &body, RequestStatus &status)
{
    std::size_t pos = 0;
    std::uint64_t state = 0;
    std::uint64_t ok = 0;
    std::uint64_t final_state = 0;
    std::uint64_t invocations = 0;
    std::uint64_t lanes = 0;
    if (!replay::getVarint(body, pos, state) || state > 5 ||
        !replay::getVarint(body, pos, ok) ||
        !getString(body, pos, status.result.error) ||
        !getString(body, pos, status.result.resultBlob) ||
        !replay::getVarint(body, pos, final_state) ||
        !replay::getVarint(body, pos, invocations) ||
        !replay::getVarint(body, pos, lanes))
        return false;
    status.state = static_cast<RequestState>(state);
    status.result.ok = ok != 0;
    status.result.finalState = replay::zigzagDecode(final_state);
    status.result.invocations =
        static_cast<std::int64_t>(invocations);
    status.result.batchedLanes = static_cast<int>(lanes);
    return pos == body.size();
}

std::string
encodeRequestId(std::uint64_t request_id)
{
    std::string body;
    replay::putVarint(body, request_id);
    return body;
}

bool
decodeRequestId(const std::string &body, std::uint64_t &request_id)
{
    std::size_t pos = 0;
    return replay::getVarint(body, pos, request_id) &&
           pos == body.size();
}

std::string
encodeStatus(const RequestStatus &status)
{
    std::string body;
    replay::putVarint(body,
                      static_cast<std::uint64_t>(status.state));
    putString(body, status.tenant);
    return body;
}

bool
decodeStatus(const std::string &body, RequestState &state,
             std::string &tenant)
{
    std::size_t pos = 0;
    std::uint64_t raw = 0;
    if (!replay::getVarint(body, pos, raw) || raw > 5 ||
        !getString(body, pos, tenant))
        return false;
    state = static_cast<RequestState>(raw);
    return pos == body.size();
}

} // namespace stats::serving
