/**
 * @file
 * The statsd socket front-end: a unix-domain stream listener that
 * speaks the frame protocol (protocol.hpp) and forwards to the
 * in-process Server (server.hpp).
 *
 * One thread per accepted connection; each handles its frames
 * strictly in order. A DrainReq drains the server, answers, and then
 * stops the daemon — that is the clean-shutdown path `stats-cli
 * drain` uses. The socket file is unlinked on close.
 */

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serving/server.hpp"

namespace stats::serving {

class Daemon
{
  public:
    /**
     * Bind and listen on `socket_path` (an existing stale socket
     * file is replaced). Throws nothing: panics on bind errors —
     * statsd treats an unusable socket as fatal at startup.
     */
    Daemon(std::string socket_path, Server::Options options = {});
    ~Daemon();

    /** The wrapped serving core (quota configuration, stats). */
    Server &server() { return *_server; }

    /** Serve until a DrainReq (or stop()) arrives. */
    void serveForever();

    /** Ask the accept loop to exit (thread-safe). */
    void stop();

    const std::string &socketPath() const { return _socketPath; }

  private:
    void handleConnection(int fd);

    std::string _socketPath;
    std::unique_ptr<Server> _server;
    int _listenFd = -1;
    std::atomic<bool> _stopping{false};
    std::mutex _workersMutex;
    std::vector<std::thread> _workers;
};

} // namespace stats::serving
