/**
 * @file
 * The statsd socket front-end: a unix-domain stream listener that
 * speaks the frame protocol (protocol.hpp) and forwards to the
 * in-process Server (server.hpp).
 *
 * One detached thread per accepted connection; each handles its
 * frames strictly in order and retires itself when the peer hangs
 * up, so a long-lived daemon holds no per-finished-connection state.
 * The destructor waits for every live connection thread before
 * tearing the server down. A DrainReq drains the server, answers,
 * and then stops the daemon — that is the clean-shutdown path
 * `stats-cli drain` uses. The socket file is unlinked on close.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>

#include "serving/protocol.hpp"
#include "serving/server.hpp"

namespace stats::serving {

class Daemon
{
  public:
    /**
     * Bind and listen on `socket_path` (an existing stale socket
     * file is replaced). Throws nothing: panics on bind errors —
     * statsd treats an unusable socket as fatal at startup.
     */
    Daemon(std::string socket_path, Server::Options options = {});
    ~Daemon();

    /** The wrapped serving core (quota configuration, stats). */
    Server &server() { return *_server; }

    /** Serve until a DrainReq (or stop()) arrives. */
    void serveForever();

    /** Ask the accept loop to exit (thread-safe). */
    void stop();

    const std::string &socketPath() const { return _socketPath; }

  private:
    void handleConnection(int fd);
    Frame handleFrame(const Frame &frame, bool &drain_requested);

    std::string _socketPath;
    std::unique_ptr<Server> _server;
    std::atomic<int> _listenFd{-1};
    std::atomic<bool> _stopping{false};
    std::mutex _workersMutex;
    std::condition_variable _workersIdle;
    std::size_t _activeWorkers = 0; ///< Guarded by _workersMutex.
};

} // namespace stats::serving
