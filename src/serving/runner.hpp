/**
 * @file
 * The plan runner: turns dispatched ExecutionPlans into deterministic
 * results (docs/SERVING.md §5).
 *
 * Three execution paths, one per JobKind:
 *
 *  - **IrSequential** — one interpreted state-transition chain over
 *    the plan's derived inputs. `runBatch` executes several
 *    compatible plans as the *lanes* of one
 *    `ExecutableModule::callBatch` loop; lane results are
 *    bit-identical to solo execution (each lane keeps its own seed,
 *    inputs, and noise stream), so batching is invisible in the
 *    result bytes — the property the served-determinism test pins.
 *
 *  - **IrSpeculative** — the module runs on the SpecEngine over the
 *    simulated executor (virtual time), mirroring the differential
 *    oracle's harness. When `recordChoices` is set, the engine's
 *    choice points are captured into a RecordLog for `replay-fetch`.
 *
 *  - **Benchmark** — one of the paper benchmarks, exactly like
 *    `statscc run` (virtual time again: the result is a pure
 *    function of the plan).
 *
 * The runner owns a compile cache keyed by the plan compatibility
 * key: parse → middle-end → instantiate happens once per distinct
 * (module text, configuration, tier, budget). Because an
 * ExecutableModule is not internally synchronized, each cache entry
 * keeps a *pool* of instances over the shared frozen module; a
 * worker leases one for the duration of a dispatch and returns it,
 * so same-key plans still execute concurrently.
 *
 * Threading contract: `runPlan`/`runBatch` are safe to call from any
 * number of server worker threads concurrently. Record/replay state
 * is scoped per run — each execution installs its own thread-local
 * ReplaySession (RecordScope), so no global mode flips occur.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sdi/spec_config.hpp"
#include "serving/execution_plan.hpp"
#include "serving/scheduler.hpp"

namespace stats::serving {

/** Outcome of executing one plan. */
struct PlanResult
{
    bool ok = false;
    /** Runtime failure detail ("" when ok). */
    std::string error;

    /**
     * Deterministic result bytes: the per-position observed states
     * (IR kinds) or the benchmark signature (Benchmark kind), varint
     * encoded. Byte-identical across re-runs of the same plan — the
     * serving determinism contract.
     */
    std::string resultBlob;

    /** Serialized RecordLog when the plan asked for choice capture
     *  and the path records (engine runs); "" otherwise. */
    std::string recordLog;

    // Summary numbers for `stats-cli status/result`.
    long long finalState = 0;
    double virtualSeconds = 0.0;
    std::int64_t invocations = 0;
    /** Lanes the plan was fused with (1 = ran solo). */
    int batchedLanes = 1;
};

class PlanRunner
{
  public:
    /** Execute one plan (any kind). */
    PlanResult runPlan(const ExecutionPlan &plan);

    /**
     * Execute a dispatch unit from the scheduler: one plan, or
     * several batch-compatible sequential plans fused lane-parallel.
     * Results are positionally aligned with `batch`.
     */
    std::vector<PlanResult>
    runBatch(const std::vector<QueuedPlan> &batch);

    /** Compile-cache statistics (serving.* metrics mirror these). */
    std::size_t cacheSize() const
    {
        std::lock_guard<std::mutex> lock(_cacheMutex);
        return _cache.size();
    }
    std::uint64_t cacheHits() const
    {
        return _cacheHits.load(std::memory_order_relaxed);
    }

  private:
    struct Compiled;
    class ExecLease;

    std::shared_ptr<Compiled> compiled(const ExecutionPlan &plan,
                                       std::string &error);
    PlanResult runSequential(const ExecutionPlan &plan);
    PlanResult runSpeculative(const ExecutionPlan &plan);
    PlanResult runBenchmark(const ExecutionPlan &plan);

    mutable std::mutex _cacheMutex;
    std::map<std::uint64_t, std::shared_ptr<Compiled>> _cache;
    std::atomic<std::uint64_t> _cacheHits{0};
};

} // namespace stats::serving
