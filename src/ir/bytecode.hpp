/**
 * @file
 * The bytecode execution tier: register-allocated linear bytecode
 * compiled from verified mini-IR functions (docs/INTERPRETER.md).
 *
 * The AST walker in ir/interpreter.cpp resolves every operand through
 * a `std::map<std::string, RtValue>` environment; that cost sits on
 * every speculation hot path (producer runs, auxiliary runs, audit
 * re-derivation, the fuzz oracle). This tier lowers each function
 * once into a flat instruction stream over a small register frame:
 *
 *  - temps are classed statically (integer vs floating) from the SSA
 *    def sites, so registers are raw 8-byte slots with no runtime
 *    type tags and no name lookups;
 *  - register slots are assigned by interval allocation over the
 *    linearized code, with live ranges widened by the block-level
 *    `analysis::Liveness` results so loop-carried values keep their
 *    slot across back edges;
 *  - phis are lowered to parallel-copy sequences on dedicated edge
 *    stubs (cycle-safe, swap problems broken with a scratch);
 *  - adjacent def-use pairs are fused into superinstructions
 *    (`muladd.i` and friends) when the intermediate dies immediately
 *    — the common `S = f(I, S)` chain shape.
 *
 * Functions whose static classes cannot be resolved (e.g. a select
 * with one integer and one floating arm, or a call whose argument
 * class disagrees with the callee's declared parameter) are left to
 * the AST walker; `BcFunction::compiled == false` records why. The
 * speculation-safety analysis (FRZ03) guarantees analysis-clean
 * modules compile fully.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace stats::ir::bc {

/**
 * Core opcodes. X-macro: name, mnemonic, operand format. The
 * mnemonics are the disassembler's vocabulary and are cross-checked
 * against docs/INTERPRETER.md by tests/bytecode_test.cpp.
 */
#define STATS_BC_CORE_OPCODES(X)                                       \
    X(LdcI, "ldc.i", RegPoolI)    /* a = ipool[imm]               */   \
    X(LdcF, "ldc.f", RegPoolF)    /* a = fpool[imm]               */   \
    X(Mov, "mov", TwoReg)         /* a = b (raw copy)             */   \
    X(I2F, "i2f", TwoReg)         /* a.f = double(b.i)            */   \
    X(I2F32, "i2f32", TwoReg)     /* a.f = float(double(b.i))     */   \
    X(F2I, "f2i.sat", TwoReg)     /* a.i = saturating int(b.f)    */   \
    X(F2INc, "f2i.nc", TwoReg)    /* a.i = int(b.f); proven range */   \
    X(F2F32, "f2f32", TwoReg)     /* a.f = float(b.f)             */   \
    X(AddI, "add.i", ThreeReg)    /* a.i = b.i + c.i (wraps)      */   \
    X(SubI, "sub.i", ThreeReg)                                         \
    X(MulI, "mul.i", ThreeReg)                                         \
    X(DivI, "div.i", ThreeReg)    /* panics on 0; MIN/-1 wraps    */   \
    X(DivINc, "div.i.nc", ThreeReg) /* raw b.i/c.i; proven range  */   \
    X(AddF, "add.f", ThreeReg)    /* a.f = b.f + c.f              */   \
    X(SubF, "sub.f", ThreeReg)                                         \
    X(MulF, "mul.f", ThreeReg)                                         \
    X(DivF, "div.f", ThreeReg)                                         \
    X(AddF32, "add.f32", ThreeReg) /* float-rounded result        */   \
    X(SubF32, "sub.f32", ThreeReg)                                     \
    X(MulF32, "mul.f32", ThreeReg)                                     \
    X(DivF32, "div.f32", ThreeReg)                                     \
    X(EqI, "cmpeq.i", ThreeReg)   /* a.i = (b.i == c.i)           */   \
    X(LtI, "cmplt.i", ThreeReg)                                        \
    X(LeI, "cmple.i", ThreeReg)                                        \
    X(EqF, "cmpeq.f", ThreeReg)   /* a.i = (b.f == c.f)           */   \
    X(LtF, "cmplt.f", ThreeReg)                                        \
    X(LeF, "cmple.f", ThreeReg)                                        \
    X(Sel, "sel", FourReg)        /* a = b.i ? c : imm (raw)      */   \
    X(Brnz, "brnz", Branch)       /* if (b.i != 0) goto imm       */   \
    X(Jmp, "jmp", Target)         /* goto imm                     */   \
    X(Call, "call", CallFmt)      /* a = call sites[imm]          */   \
    X(Ret, "ret", RetReg)         /* return a (raw)               */   \
    X(RetV, "ret.void", None)

/**
 * Superinstructions: fused def-use pairs whose intermediate value
 * dies immediately. The float variants keep the unfused double
 * roundings (explicit temporary, -ffp-contract=off), so fusion can
 * never change a result.
 */
#define STATS_BC_SUPER_OPCODES(X)                                      \
    X(MulAddI, "muladd.i", FourReg) /* a.i = b.i*c.i + imm.i      */   \
    X(MulAddF, "muladd.f", FourReg) /* a.f = b.f*c.f + imm.f      */   \
    X(AddAddI, "addadd.i", FourReg) /* a.i = (b.i+c.i) + imm.i    */   \
    X(AddAddF, "addadd.f", FourReg)                                    \
    X(AddMulI, "addmul.i", FourReg) /* a.i = (b.i+c.i) * imm.i    */   \
    X(AddMulF, "addmul.f", FourReg)

#define STATS_BC_OPCODES(X)                                            \
    STATS_BC_CORE_OPCODES(X)                                           \
    STATS_BC_SUPER_OPCODES(X)

enum class BcOp : std::uint8_t
{
#define STATS_BC_ENUM(name, mnemonic, format) name,
    STATS_BC_OPCODES(STATS_BC_ENUM)
#undef STATS_BC_ENUM
};

/** How an instruction's fields are interpreted (drives disasm too). */
enum class BcFormat
{
    RegPoolI, ///< a = dst reg, imm = ipool index
    RegPoolF, ///< a = dst reg, imm = fpool index
    TwoReg,   ///< a = dst reg, b = src reg
    ThreeReg, ///< a = dst reg, b/c = src regs
    FourReg,  ///< a = dst reg, b/c/imm = src regs
    Branch,   ///< b = cond reg, imm = code target
    Target,   ///< imm = code target
    CallFmt,  ///< a = dst reg (kNoReg = none), imm = call-site index
    RetReg,   ///< a = src reg
    None,
};

const char *opcodeMnemonic(BcOp op);
BcFormat opcodeFormat(BcOp op);
bool isSuperinstruction(BcOp op);
std::size_t opcodeCount();

/** "No register" marker for value-less call results. */
constexpr std::uint16_t kNoReg = 0xFFFF;

/** One fixed-width bytecode instruction. */
struct BcInst
{
    BcOp op = BcOp::RetV;
    std::uint16_t a = 0;
    std::uint16_t b = 0;
    std::uint16_t c = 0;
    std::int32_t imm = 0;
};

/**
 * Static value class of a register: integers and floats share the
 * raw 8-byte slot, the class picks the view. F32 values are kept as
 * float-rounded doubles, exactly like RtValue.
 */
enum class RegClass : std::uint8_t
{
    Int,
    Float,
};

/** One lowered call site. */
struct BcCallSite
{
    std::string callee;
    int calleeIndex = -1; ///< BcModule function index; -1 = external.
    /** Argument registers with their static classes (RtValue types). */
    std::vector<std::pair<std::uint16_t, Type>> args;
    /** Static class of the result, for tagging slow-path returns. */
    Type retType = Type::I64;
};

/**
 * Compiler-cooperative metadata for the post-regalloc verifier
 * (src/ir/bytecode_verifier.cpp). The clobber check (BCV03) needs the
 * virtual-register view of the final code: `vcode` is a snapshot
 * taken after branch targets are resolved but before frame slots are
 * substituted, so it is 1:1 with `BcFunction::code` — same opcodes,
 * same targets — with register fields still in vreg numbering.
 */
struct BcVerifyInfo
{
    std::vector<BcInst> vcode;
    /** vreg -> assigned frame slot (kNoReg: never materialized). */
    std::vector<std::uint16_t> slotOf;
    /** Parameter vregs, declaration order (kNoReg: dead parameter). */
    std::vector<std::uint16_t> paramVregs;
    /** Per call site, the argument vregs (1:1 with calls[i].args). */
    std::vector<std::vector<std::uint16_t>> callArgVregs;
};

/** One compiled function. */
struct BcFunction
{
    std::string name;
    bool compiled = false;
    std::string fallbackReason; ///< Why the AST walker keeps this one.

    std::uint16_t numRegs = 0;
    std::vector<std::uint16_t> paramRegs;
    std::vector<RegClass> paramClasses;
    Type retType = Type::Void; ///< Static type of returned values.

    std::vector<BcInst> code;
    std::vector<std::int64_t> ipool;
    std::vector<double> fpool;
    std::vector<BcCallSite> calls;

    /**
     * Batch (SoA) eligibility: one reachable block, no calls, and a
     * value-returning terminator — the straight-line arithmetic shape
     * the SIMD kernels execute lane-parallel.
     */
    bool batchable = false;

    std::size_t sourceInstructions = 0;
    std::size_t fusedCount = 0;   ///< Superinstructions emitted.
    std::size_t foldedBranches = 0; ///< Branches removed by ranges.

    BcVerifyInfo verifyInfo;
};

/** A compiled module. */
struct BcModule
{
    std::vector<BcFunction> functions;
    std::map<std::string, int> index;

    const BcFunction *find(const std::string &name) const;
    std::size_t compiledCount() const;
};

/**
 * Compile every function of `module`. Functions that cannot be
 * statically classed are returned with `compiled == false` and a
 * `fallbackReason`; callers decide whether that is an error (tier
 * `bytecode`) or a per-function AST fallback (tier `auto`).
 *
 * @param external_types  result classes of external (builtin)
 *        functions; unlisted externals default to F64, matching the
 *        Interpreter's builtins.
 */
BcModule compileModule(
    const Module &module,
    const std::map<std::string, Type> &external_types = {});

namespace testonly {

/**
 * Re-opens the historical back-edge phi-liveness hole in the register
 * allocator: when set, live intervals are NOT widened over the
 * back-edge phi-copy stubs, so a loop-carried value can lose its slot
 * to the parallel-copy scratch mid-stub. Exists solely so tests can
 * prove the bytecode verifier rejects that bug class statically
 * (tests/bytecode_verifier_test.cpp). Never set outside tests.
 */
extern bool disableBackEdgeWidening;

} // namespace testonly

} // namespace stats::ir::bc
