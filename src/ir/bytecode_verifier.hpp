/**
 * @file
 * Post-regalloc bytecode verifier (rules BCV01–BCV05,
 * docs/ANALYSIS.md): a static checker over the final, slot-numbered
 * instruction stream the VM executes. The compiler is exactness-
 * critical — a register-allocation bug silently corrupts speculation
 * results — so every compiled function is re-checked from first
 * principles after compilation:
 *
 *  - BCV04  branch targets and pool/call-site indices in range (and
 *           no path falls off the end of the code);
 *  - BCV05  operand registers inside the frame, no missing operands
 *           (fused superinstructions carry all three sources);
 *  - BCV01  no register is readable before it is written on any path
 *           from entry (slot-granular backward liveness);
 *  - BCV02  every read agrees with the static int/float class the
 *           slot can hold at that point (forward may-class analysis);
 *  - BCV03  no write clobbers a distinct virtual register that is
 *           still live in the same frame slot — the historical
 *           back-edge phi-liveness bug class — using the compiler's
 *           BcVerifyInfo vreg snapshot.
 *
 * Verification runs automatically after every compileModule() unless
 * STATS_VERIFY_BYTECODE=0 (see setAutoVerify), and is exposed as the
 * `bytecode-verify` lint pass through verifyCompiledModule.
 */

#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "ir/bytecode.hpp"
#include "ir/ir.hpp"

namespace stats::ir::bc {

/**
 * Statically check one compiled function. Structural problems
 * (BCV04/BCV05) suppress the flow checks, whose results would not be
 * meaningful. BCV03 additionally needs `fn.verifyInfo` (absent on
 * hand-built functions) and is skipped without it. Returns
 * deterministically ordered diagnostics; empty = verified.
 */
std::vector<analysis::Diagnostic> verifyFunction(const BcModule &module,
                                                 const BcFunction &fn);

/** verifyFunction over every compiled function of `module`. */
std::vector<analysis::Diagnostic> verifyModule(const BcModule &module);

/**
 * The `bytecode-verify` lint pass body: compile `module` (with
 * auto-verification suppressed — findings are reported, not fatal)
 * and verify every function that compiled. Drivers inject this into
 * analysis::LintOptions::bytecodeVerifier.
 */
std::vector<analysis::Diagnostic>
verifyCompiledModule(const Module &module);

/**
 * Whether compileModule() verifies its own output and panics on any
 * diagnostic. Defaults to the STATS_VERIFY_BYTECODE environment
 * variable ("0"/"off" disables; anything else, or unset, enables).
 */
bool autoVerifyEnabled();

/** Override the process-wide auto-verify switch; returns the
 *  previous setting. Thread-safe, but prefer leaving it alone in
 *  multi-threaded hosts: verifyCompiledModule() suppresses the
 *  in-compile panic for its own thread only. */
bool setAutoVerify(bool enabled);

} // namespace stats::ir::bc
