/**
 * @file
 * Bytecode VM execution: threaded dispatch (computed goto on GCC and
 * Clang, a switch loop elsewhere), a thread-local frame stack, and
 * the batched SoA mode. Built with -ffp-contract=off: the fused
 * superinstructions must keep the AST walker's two IEEE roundings.
 */

#include "ir/vm.hpp"

#include <cstring>
#include <limits>

#include "ir/ops_simd.hpp"
#include "support/log.hpp"

namespace stats::ir::bc {

namespace {

/** Per-thread execution state; one Vm may be shared across threads. */
thread_local std::vector<VmReg> t_stack;
thread_local std::uint64_t t_steps = 0;
thread_local int t_depth = 0;

std::int64_t
saturate(double f)
{
    if (f != f)
        return 0;
    if (f >= 9223372036854775808.0)
        return 9223372036854775807LL;
    if (f < -9223372036854775808.0)
        return -9223372036854775807LL - 1;
    return static_cast<std::int64_t>(f);
}

std::int64_t
wrapDiv(std::int64_t x, std::int64_t y, const std::string &fn)
{
    if (y == 0)
        support::panic("vm: division by 0 in @", fn);
    if (x == std::numeric_limits<std::int64_t>::min() && y == -1)
        return x; // Wraps, like the interpreter.
    return x / y;
}

void
ensureFrame(std::size_t base, std::uint16_t numRegs)
{
    if (t_stack.size() < base + numRegs)
        t_stack.resize(std::max(t_stack.size() * 2,
                                base + std::size_t(numRegs)));
    // Fresh frames start zeroed: a Sel reads both arms, and the
    // not-taken arm of a path-dependent value must at least be a
    // determinate bit pattern.
    std::memset(t_stack.data() + base, 0,
                std::size_t(numRegs) * sizeof(VmReg));
}

} // namespace

#if defined(__GNUC__) || defined(__clang__)
#define STATS_VM_THREADED 1
#endif

VmReg
Vm::rawCall(const BcFunction &fn, std::size_t base)
{
    const BcInst *code = fn.code.data();
    const std::int64_t *ipool = fn.ipool.data();
    const double *fpool = fn.fpool.data();
    VmReg *regs = t_stack.data() + base;
    std::size_t ip = 0;
    const BcInst *inst = nullptr;
    const std::uint64_t budget = _stepBudget;

#define VM_U64(x) static_cast<std::uint64_t>(x)
#define VM_I64(x) static_cast<std::int64_t>(x)
#define VM_STEP()                                                       \
    do {                                                                \
        if (++t_steps > budget)                                         \
            support::panic("vm: step budget exceeded in @", fn.name);   \
    } while (0)

#ifdef STATS_VM_THREADED
    static const void *kLabels[] = {
#define STATS_BC_LABEL(name, mnemonic, format) &&op_##name,
        STATS_BC_OPCODES(STATS_BC_LABEL)
#undef STATS_BC_LABEL
    };
#define VM_CASE(name) op_##name
#define VM_NEXT()                                                       \
    do {                                                                \
        VM_STEP();                                                      \
        inst = &code[ip++];                                             \
        goto *kLabels[std::size_t(inst->op)];                           \
    } while (0)
    VM_NEXT();
#else
#define VM_CASE(name) case BcOp::name
#define VM_NEXT() continue
    for (;;) {
        VM_STEP();
        inst = &code[ip++];
        switch (inst->op) {
#endif

    VM_CASE(LdcI):
        regs[inst->a].i = ipool[inst->imm];
        VM_NEXT();
    VM_CASE(LdcF):
        regs[inst->a].f = fpool[inst->imm];
        VM_NEXT();
    VM_CASE(Mov):
        regs[inst->a] = regs[inst->b];
        VM_NEXT();
    VM_CASE(I2F):
        regs[inst->a].f = double(regs[inst->b].i);
        VM_NEXT();
    VM_CASE(I2F32):
        regs[inst->a].f = double(float(double(regs[inst->b].i)));
        VM_NEXT();
    VM_CASE(F2I):
        regs[inst->a].i = saturate(regs[inst->b].f);
        VM_NEXT();
    VM_CASE(F2INc):
        // Compiler proved the value in [-2^63, 2^63): raw truncation.
        regs[inst->a].i = static_cast<std::int64_t>(regs[inst->b].f);
        VM_NEXT();
    VM_CASE(F2F32):
        regs[inst->a].f = double(float(regs[inst->b].f));
        VM_NEXT();
    VM_CASE(AddI):
        regs[inst->a].i =
            VM_I64(VM_U64(regs[inst->b].i) + VM_U64(regs[inst->c].i));
        VM_NEXT();
    VM_CASE(SubI):
        regs[inst->a].i =
            VM_I64(VM_U64(regs[inst->b].i) - VM_U64(regs[inst->c].i));
        VM_NEXT();
    VM_CASE(MulI):
        regs[inst->a].i =
            VM_I64(VM_U64(regs[inst->b].i) * VM_U64(regs[inst->c].i));
        VM_NEXT();
    VM_CASE(DivI):
        regs[inst->a].i =
            wrapDiv(regs[inst->b].i, regs[inst->c].i, fn.name);
        VM_NEXT();
    VM_CASE(DivINc):
        // Compiler proved divisor != 0 and no MIN/-1: raw division.
        regs[inst->a].i = regs[inst->b].i / regs[inst->c].i;
        VM_NEXT();
    VM_CASE(AddF):
        regs[inst->a].f = regs[inst->b].f + regs[inst->c].f;
        VM_NEXT();
    VM_CASE(SubF):
        regs[inst->a].f = regs[inst->b].f - regs[inst->c].f;
        VM_NEXT();
    VM_CASE(MulF):
        regs[inst->a].f = regs[inst->b].f * regs[inst->c].f;
        VM_NEXT();
    VM_CASE(DivF):
        regs[inst->a].f = regs[inst->b].f / regs[inst->c].f;
        VM_NEXT();
    VM_CASE(AddF32):
        regs[inst->a].f =
            double(float(regs[inst->b].f + regs[inst->c].f));
        VM_NEXT();
    VM_CASE(SubF32):
        regs[inst->a].f =
            double(float(regs[inst->b].f - regs[inst->c].f));
        VM_NEXT();
    VM_CASE(MulF32):
        regs[inst->a].f =
            double(float(regs[inst->b].f * regs[inst->c].f));
        VM_NEXT();
    VM_CASE(DivF32):
        regs[inst->a].f =
            double(float(regs[inst->b].f / regs[inst->c].f));
        VM_NEXT();
    VM_CASE(EqI):
        regs[inst->a].i = regs[inst->b].i == regs[inst->c].i ? 1 : 0;
        VM_NEXT();
    VM_CASE(LtI):
        regs[inst->a].i = regs[inst->b].i < regs[inst->c].i ? 1 : 0;
        VM_NEXT();
    VM_CASE(LeI):
        regs[inst->a].i = regs[inst->b].i <= regs[inst->c].i ? 1 : 0;
        VM_NEXT();
    VM_CASE(EqF):
        regs[inst->a].i = regs[inst->b].f == regs[inst->c].f ? 1 : 0;
        VM_NEXT();
    VM_CASE(LtF):
        regs[inst->a].i = regs[inst->b].f < regs[inst->c].f ? 1 : 0;
        VM_NEXT();
    VM_CASE(LeF):
        regs[inst->a].i = regs[inst->b].f <= regs[inst->c].f ? 1 : 0;
        VM_NEXT();
    VM_CASE(Sel):
        regs[inst->a] = regs[inst->b].i != 0
                            ? regs[inst->c]
                            : regs[std::uint16_t(inst->imm)];
        VM_NEXT();
    VM_CASE(Brnz):
        if (regs[inst->b].i != 0)
            ip = std::size_t(inst->imm);
        VM_NEXT();
    VM_CASE(Jmp):
        ip = std::size_t(inst->imm);
        VM_NEXT();
    VM_CASE(Call): {
        const BcCallSite &site = fn.calls[std::size_t(inst->imm)];
        if (++t_depth > 256)
            support::panic("vm: call depth exceeded");
        if (site.calleeIndex >= 0 &&
            (*_module).functions[std::size_t(site.calleeIndex)]
                .compiled) {
            const BcFunction &callee =
                _module->functions[std::size_t(site.calleeIndex)];
            const std::size_t callee_base = base + fn.numRegs;
            ensureFrame(callee_base, callee.numRegs);
            VmReg *callee_regs = t_stack.data() + callee_base;
            const VmReg *caller_regs = t_stack.data() + base;
            for (std::size_t j = 0; j < site.args.size(); ++j) {
                const std::uint16_t dst = callee.paramRegs[j];
                if (dst != kNoReg)
                    callee_regs[dst] = caller_regs[site.args[j].first];
            }
            const VmReg r = rawCall(callee, callee_base);
            --t_depth;
            regs = t_stack.data() + base; // Stack may have grown.
            if (inst->a != kNoReg)
                regs[inst->a] = r;
        } else {
            std::vector<RtValue> args;
            args.reserve(site.args.size());
            for (const auto &[reg, tag] : site.args) {
                args.push_back(isFloating(tag)
                                   ? RtValue::ofFloat(regs[reg].f, tag)
                                   : RtValue::ofInt(regs[reg].i));
            }
            const RtValue r = _slowCall(site.callee, std::move(args));
            --t_depth;
            regs = t_stack.data() + base; // Hook may re-enter the VM.
            if (inst->a != kNoReg) {
                if (isFloating(site.retType))
                    regs[inst->a].f = r.asFloat();
                else
                    regs[inst->a].i = r.asInt();
            }
        }
        VM_NEXT();
    }
    VM_CASE(Ret):
        return regs[inst->a];
    VM_CASE(RetV): {
        VmReg zero;
        zero.i = 0;
        return zero;
    }
    VM_CASE(MulAddI):
        regs[inst->a].i =
            VM_I64(VM_U64(regs[inst->b].i) * VM_U64(regs[inst->c].i) +
                   VM_U64(regs[std::uint16_t(inst->imm)].i));
        VM_NEXT();
    VM_CASE(MulAddF): {
        const double t = regs[inst->b].f * regs[inst->c].f;
        regs[inst->a].f = t + regs[std::uint16_t(inst->imm)].f;
        VM_NEXT();
    }
    VM_CASE(AddAddI):
        regs[inst->a].i =
            VM_I64(VM_U64(regs[inst->b].i) + VM_U64(regs[inst->c].i) +
                   VM_U64(regs[std::uint16_t(inst->imm)].i));
        VM_NEXT();
    VM_CASE(AddAddF): {
        const double t = regs[inst->b].f + regs[inst->c].f;
        regs[inst->a].f = t + regs[std::uint16_t(inst->imm)].f;
        VM_NEXT();
    }
    VM_CASE(AddMulI):
        regs[inst->a].i =
            VM_I64((VM_U64(regs[inst->b].i) + VM_U64(regs[inst->c].i)) *
                   VM_U64(regs[std::uint16_t(inst->imm)].i));
        VM_NEXT();
    VM_CASE(AddMulF): {
        const double t = regs[inst->b].f + regs[inst->c].f;
        regs[inst->a].f = t * regs[std::uint16_t(inst->imm)].f;
        VM_NEXT();
    }

#ifndef STATS_VM_THREADED
        }
    }
#endif

    support::panic("vm: fell off the dispatch loop in @", fn.name);

#undef VM_CASE
#undef VM_NEXT
#undef VM_STEP
#undef VM_U64
#undef VM_I64
}

RtValue
Vm::call(const BcFunction &fn, const std::vector<RtValue> &args)
{
    if (!fn.compiled)
        support::panic("vm: @", fn.name, " is not compiled: ",
                       fn.fallbackReason);
    if (args.size() != fn.paramRegs.size())
        support::panic("vm: @", fn.name, " expects ",
                       fn.paramRegs.size(), " args, got ", args.size());

    const bool top_level = t_depth == 0;
    if (top_level)
        t_steps = 0;
    if (++t_depth > 256)
        support::panic("vm: call depth exceeded");

    const std::size_t base = t_stack.size();
    ensureFrame(base, fn.numRegs);
    VmReg *regs = t_stack.data() + base;
    for (std::size_t j = 0; j < args.size(); ++j) {
        const std::uint16_t reg = fn.paramRegs[j];
        if (reg == kNoReg)
            continue;
        if (fn.paramClasses[j] == RegClass::Float)
            regs[reg].f = args[j].asFloat();
        else
            regs[reg].i = args[j].asInt();
    }

    const VmReg raw = rawCall(fn, base);
    --t_depth;
    if (top_level) {
        _executed.fetch_add(t_steps, std::memory_order_relaxed);
        t_stack.clear();
    }

    RtValue result;
    switch (fn.retType) {
      case Type::Void:
        break;
      case Type::I64:
        result = RtValue::ofInt(raw.i);
        break;
      default:
        result = RtValue::ofFloat(raw.f, fn.retType);
        break;
    }
    return result;
}

bool
Vm::callBatch(const BcFunction &fn, std::size_t lanes,
              const std::vector<const RtValue *> &argColumns,
              RtValue *results)
{
    if (!fn.compiled || !fn.batchable || lanes == 0)
        return false;
    if (argColumns.size() != fn.paramRegs.size())
        return false;
    // Every lane's argument must already sit in the declared class;
    // a mismatched lane would need the AST walker's dynamic re-typing.
    for (std::size_t j = 0; j < argColumns.size(); ++j) {
        const bool want_float = fn.paramClasses[j] == RegClass::Float;
        for (std::size_t w = 0; w < lanes; ++w)
            if (isFloating(argColumns[j][w].type) != want_float)
                return false;
    }

    // Register matrix, SoA: row r holds register r of every lane.
    std::vector<VmReg> matrix(std::size_t(fn.numRegs) * lanes);
    auto row = [&](std::uint16_t reg) {
        return matrix.data() + std::size_t(reg) * lanes;
    };
    for (std::size_t j = 0; j < argColumns.size(); ++j) {
        const std::uint16_t reg = fn.paramRegs[j];
        if (reg == kNoReg)
            continue;
        VmReg *r = row(reg);
        if (fn.paramClasses[j] == RegClass::Float)
            for (std::size_t w = 0; w < lanes; ++w)
                r[w].f = argColumns[j][w].asFloat();
        else
            for (std::size_t w = 0; w < lanes; ++w)
                r[w].i = argColumns[j][w].asInt();
    }

    const bool top_level = t_depth == 0;
    if (top_level)
        t_steps = 0;
    for (const BcInst &inst : fn.code) {
        t_steps += lanes;
        if (t_steps > _stepBudget)
            support::panic("vm: step budget exceeded in @", fn.name);
        switch (inst.op) {
          case BcOp::LdcI: {
            VmReg *d = row(inst.a);
            for (std::size_t w = 0; w < lanes; ++w)
                d[w].i = fn.ipool[std::size_t(inst.imm)];
            break;
          }
          case BcOp::LdcF: {
            VmReg *d = row(inst.a);
            for (std::size_t w = 0; w < lanes; ++w)
                d[w].f = fn.fpool[std::size_t(inst.imm)];
            break;
          }
          case BcOp::Mov:
            std::memcpy(row(inst.a), row(inst.b),
                        lanes * sizeof(VmReg));
            break;
          case BcOp::I2F: {
            VmReg *d = row(inst.a);
            const VmReg *b = row(inst.b);
            for (std::size_t w = 0; w < lanes; ++w)
                d[w].f = double(b[w].i);
            break;
          }
          case BcOp::I2F32: {
            VmReg *d = row(inst.a);
            const VmReg *b = row(inst.b);
            for (std::size_t w = 0; w < lanes; ++w)
                d[w].f = double(float(double(b[w].i)));
            break;
          }
          case BcOp::F2I: {
            VmReg *d = row(inst.a);
            const VmReg *b = row(inst.b);
            for (std::size_t w = 0; w < lanes; ++w)
                d[w].i = saturate(b[w].f);
            break;
          }
          case BcOp::F2INc: {
            VmReg *d = row(inst.a);
            const VmReg *b = row(inst.b);
            for (std::size_t w = 0; w < lanes; ++w)
                d[w].i = static_cast<std::int64_t>(b[w].f);
            break;
          }
          case BcOp::F2F32: {
            VmReg *d = row(inst.a);
            const VmReg *b = row(inst.b);
            for (std::size_t w = 0; w < lanes; ++w)
                d[w].f = double(float(b[w].f));
            break;
          }
          case BcOp::AddI:
            simd::addI(row(inst.a), row(inst.b), row(inst.c), lanes);
            break;
          case BcOp::SubI:
            simd::subI(row(inst.a), row(inst.b), row(inst.c), lanes);
            break;
          case BcOp::MulI:
            simd::mulI(row(inst.a), row(inst.b), row(inst.c), lanes);
            break;
          case BcOp::DivI: {
            VmReg *d = row(inst.a);
            const VmReg *b = row(inst.b);
            const VmReg *c = row(inst.c);
            // A zero divisor in any lane panics, exactly as each
            // lane's scalar run would (docs/INTERPRETER.md §5).
            for (std::size_t w = 0; w < lanes; ++w)
                d[w].i = wrapDiv(b[w].i, c[w].i, fn.name);
            break;
          }
          case BcOp::DivINc: {
            VmReg *d = row(inst.a);
            const VmReg *b = row(inst.b);
            const VmReg *c = row(inst.c);
            for (std::size_t w = 0; w < lanes; ++w)
                d[w].i = b[w].i / c[w].i;
            break;
          }
          case BcOp::AddF:
            simd::addF(row(inst.a), row(inst.b), row(inst.c), lanes);
            break;
          case BcOp::SubF:
            simd::subF(row(inst.a), row(inst.b), row(inst.c), lanes);
            break;
          case BcOp::MulF:
            simd::mulF(row(inst.a), row(inst.b), row(inst.c), lanes);
            break;
          case BcOp::DivF:
            simd::divF(row(inst.a), row(inst.b), row(inst.c), lanes);
            break;
          case BcOp::AddF32:
          case BcOp::SubF32:
          case BcOp::MulF32:
          case BcOp::DivF32: {
            VmReg *d = row(inst.a);
            const VmReg *b = row(inst.b);
            const VmReg *c = row(inst.c);
            for (std::size_t w = 0; w < lanes; ++w) {
                double r = 0.0;
                if (inst.op == BcOp::AddF32)
                    r = b[w].f + c[w].f;
                else if (inst.op == BcOp::SubF32)
                    r = b[w].f - c[w].f;
                else if (inst.op == BcOp::MulF32)
                    r = b[w].f * c[w].f;
                else
                    r = b[w].f / c[w].f;
                d[w].f = double(float(r));
            }
            break;
          }
          case BcOp::EqI:
          case BcOp::LtI:
          case BcOp::LeI: {
            VmReg *d = row(inst.a);
            const VmReg *b = row(inst.b);
            const VmReg *c = row(inst.c);
            for (std::size_t w = 0; w < lanes; ++w) {
                const bool r = inst.op == BcOp::EqI
                                   ? b[w].i == c[w].i
                               : inst.op == BcOp::LtI
                                   ? b[w].i < c[w].i
                                   : b[w].i <= c[w].i;
                d[w].i = r ? 1 : 0;
            }
            break;
          }
          case BcOp::EqF:
          case BcOp::LtF:
          case BcOp::LeF: {
            VmReg *d = row(inst.a);
            const VmReg *b = row(inst.b);
            const VmReg *c = row(inst.c);
            for (std::size_t w = 0; w < lanes; ++w) {
                const bool r = inst.op == BcOp::EqF
                                   ? b[w].f == c[w].f
                               : inst.op == BcOp::LtF
                                   ? b[w].f < c[w].f
                                   : b[w].f <= c[w].f;
                d[w].i = r ? 1 : 0;
            }
            break;
          }
          case BcOp::Sel: {
            VmReg *d = row(inst.a);
            const VmReg *cond = row(inst.b);
            const VmReg *then_row = row(inst.c);
            const VmReg *else_row =
                row(std::uint16_t(inst.imm));
            for (std::size_t w = 0; w < lanes; ++w)
                d[w] = cond[w].i != 0 ? then_row[w] : else_row[w];
            break;
          }
          case BcOp::MulAddI:
            simd::mulAddI(row(inst.a), row(inst.b), row(inst.c),
                          row(std::uint16_t(inst.imm)), lanes);
            break;
          case BcOp::MulAddF:
            simd::mulAddF(row(inst.a), row(inst.b), row(inst.c),
                          row(std::uint16_t(inst.imm)), lanes);
            break;
          case BcOp::AddAddI:
            simd::addAddI(row(inst.a), row(inst.b), row(inst.c),
                          row(std::uint16_t(inst.imm)), lanes);
            break;
          case BcOp::AddAddF:
            simd::addAddF(row(inst.a), row(inst.b), row(inst.c),
                          row(std::uint16_t(inst.imm)), lanes);
            break;
          case BcOp::AddMulI:
            simd::addMulI(row(inst.a), row(inst.b), row(inst.c),
                          row(std::uint16_t(inst.imm)), lanes);
            break;
          case BcOp::AddMulF:
            simd::addMulF(row(inst.a), row(inst.b), row(inst.c),
                          row(std::uint16_t(inst.imm)), lanes);
            break;
          case BcOp::Ret: {
            const VmReg *r = row(inst.a);
            for (std::size_t w = 0; w < lanes; ++w) {
                results[w] = fn.retType == Type::I64
                                 ? RtValue::ofInt(r[w].i)
                                 : RtValue::ofFloat(r[w].f,
                                                    fn.retType);
            }
            if (top_level)
                _executed.fetch_add(t_steps,
                                    std::memory_order_relaxed);
            return true;
          }
          default:
            // Brnz/Jmp/Call/RetV cannot appear in batchable code.
            support::panic("vm: non-batchable opcode in batch mode");
        }
    }
    support::panic("vm: batch code ended without ret");
}

} // namespace stats::ir::bc
