/**
 * @file
 * IR interpreter.
 *
 * Stands in for the paper's use of LLVM's dynamic compiler: the
 * back-end "generates machine code from the IR code of the function
 * getValue() related to [a tradeoff], then invokes it with input i"
 * (section 3.4). We interpret the same functions instead. The
 * interpreter also executes whole configured modules in the compiler
 * pipeline's end-to-end tests.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace stats::ir {

/** A runtime value: integer or floating. */
struct RtValue
{
    Type type = Type::I64;
    std::int64_t i = 0;
    double f = 0.0;

    static RtValue ofInt(std::int64_t v);
    static RtValue ofFloat(double v, Type type = Type::F64);

    double asFloat() const { return isFloating(type) ? f : double(i); }

    /**
     * Float-to-int conversion saturates (like LLVM's fptosi.sat):
     * NaN maps to 0 and out-of-range values clamp to the i64 bounds.
     * A plain cast would be undefined behaviour for exactly those
     * inputs, i.e. the result could differ between a run and its
     * replay.
     */
    std::int64_t asInt() const
    {
        if (!isFloating(type))
            return i;
        if (f != f)
            return 0; // NaN
        // 2^63 is exactly representable; INT64_MAX is not.
        if (f >= 9223372036854775808.0)
            return 9223372036854775807LL;
        if (f < -9223372036854775808.0)
            return -9223372036854775807LL - 1;
        return static_cast<std::int64_t>(f);
    }
};

/** Interprets functions of one module. */
class Interpreter
{
  public:
    explicit Interpreter(const Module &module);

    /**
     * Call a function by name. Panics on unknown functions, arity
     * mismatches, or when the step budget is exhausted (runaway
     * loops).
     */
    RtValue call(const std::string &function,
                 const std::vector<RtValue> &args);

    /** Provide or override an external (builtin) function. */
    void bindExternal(
        const std::string &name,
        std::function<RtValue(const std::vector<RtValue> &)> fn);

    /** Instructions executed so far (committed-instruction counts). */
    std::uint64_t executedInstructions() const { return _executed; }

    /** Cap on executed instructions per top-level call. */
    void setStepBudget(std::uint64_t budget) { _stepBudget = budget; }

    /**
     * Observe every environment assignment: parameter binding, phi
     * application, and instruction results, with the function being
     * interpreted and the temp's name. Test instrumentation — the
     * range-analysis soundness suite checks each observed value
     * against the statically inferred interval. Pass nullptr to
     * detach.
     */
    void setAssignmentObserver(
        std::function<void(const Function &, const std::string &,
                           const RtValue &)>
            observer)
    {
        _observer = std::move(observer);
    }

  private:
    RtValue evalOperand(const Operand &operand,
                        const std::map<std::string, RtValue> &env) const;

    const Module &_module;
    std::map<std::string,
             std::function<RtValue(const std::vector<RtValue> &)>>
        _externals;
    std::function<void(const Function &, const std::string &,
                       const RtValue &)>
        _observer;
    std::uint64_t _executed = 0;
    std::uint64_t _stepBudget = 10'000'000;
    std::uint64_t _stepsUsed = 0;
    int _depth = 0;
};

} // namespace stats::ir
