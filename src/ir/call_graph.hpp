/**
 * @file
 * Call graph and the bottom-up tradeoff-reachability analysis the
 * middle-end's cloning policy relies on (paper section 3.4: clone
 * functions reachable from computeOutput "only if they, or some of
 * their callees, include a tradeoff").
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace stats::ir {

/** Static call graph of a module (callee multiplicity ignored). */
class CallGraph
{
  public:
    explicit CallGraph(const Module &module);

    /** Direct callees of a function (module functions only). */
    const std::set<std::string> &callees(const std::string &fn) const;

    /** All functions reachable from `fn`, including itself. */
    std::set<std::string> reachableFrom(const std::string &fn) const;

    /**
     * Functions that contain a tradeoff placeholder call, or call
     * (transitively) a function that does — the bottom-up analysis.
     */
    std::set<std::string> tradeoffCarriers() const;

    /** Whether `fn` directly calls any tradeoff placeholder. */
    bool hasDirectTradeoff(const std::string &fn) const;

  private:
    const Module &_module;
    std::map<std::string, std::set<std::string>> _callees;
    std::set<std::string> _placeholders;
    std::map<std::string, bool> _directTradeoff;
};

} // namespace stats::ir
