/**
 * @file
 * Textual IR parser and printer (round-trippable).
 *
 * Format sketch:
 *
 *   module "toy"
 *   tradeoff T_42 kind=const placeholder=@T_42 \
 *       getValue=@T_42_getValue size=@T_42_size \
 *       default=@T_42_getDefaultIndex
 *   statedep SD0 compute=@computeOutput aux=@computeOutput__aux0
 *
 *   func @computeOutput(i64 %input, f64 %state) -> f64 {
 *   entry:
 *     %layers = call i64 @T_42()
 *     %c = cmplt i64 %layers, 4
 *     br %c, small, big
 *   small:
 *     %a = mul f64 %state, 2.0
 *     jmp done
 *   big:
 *     %b = add f64 %state, 1.0
 *     jmp done
 *   done:
 *     %r = phi f64 [%a, small], [%b, big]
 *     ret f64 %r
 *   }
 *
 * Comments start with ';' and run to end of line.
 */

#pragma once

#include <optional>
#include <string>

#include "ir/ir.hpp"

namespace stats::ir {

/** Parse a module from text; panics with a line number on errors. */
Module parseModule(const std::string &text);

/**
 * Parse a module from text without taking the process down on
 * malformed input: returns nullopt and sets `error` to the
 * line-numbered parse diagnostic. This is the entry point for
 * surfaces fed untrusted text (the serving admission path).
 */
std::optional<Module> tryParseModule(const std::string &text,
                                     std::string &error);

/** Print a module in the textual format parseModule accepts. */
std::string printModule(const Module &module);

} // namespace stats::ir
