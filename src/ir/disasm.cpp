/**
 * @file
 * Bytecode disassembly. Output is deterministic: instruction order is
 * code order, pools and call sites print by index, and floats use the
 * same showpoint/precision(17) format as ir::Operand::toString so the
 * goldens under tests/golden/ stay byte-stable across platforms.
 */

#include "ir/disasm.hpp"

#include <iomanip>
#include <sstream>

namespace stats::ir::bc {

namespace {

void
printFloat(std::ostringstream &out, double v)
{
    out.setf(std::ios::showpoint);
    const auto old_precision = out.precision(17);
    out << v;
    out.precision(old_precision);
    out.unsetf(std::ios::showpoint);
}

std::string
regName(std::uint16_t reg)
{
    if (reg == kNoReg)
        return "_";
    return "r" + std::to_string(reg);
}

const char *
typeShort(Type type)
{
    switch (type) {
      case Type::Void: return "void";
      case Type::I64: return "i64";
      case Type::F64: return "f64";
      case Type::F32: return "f32";
    }
    return "?";
}

} // namespace

std::string
disassemble(const BcFunction &fn)
{
    std::ostringstream out;
    out << "func @" << fn.name << "(";
    for (std::size_t p = 0; p < fn.paramRegs.size(); ++p) {
        if (p)
            out << ", ";
        out << regName(fn.paramRegs[p]) << ":"
            << (fn.paramClasses[p] == RegClass::Float ? "f" : "i");
    }
    out << ") -> " << typeShort(fn.retType);
    if (!fn.compiled) {
        out << "\n  ; fallback: " << fn.fallbackReason << "\n";
        return out.str();
    }
    out << "  ; regs=" << fn.numRegs << " fused=" << fn.fusedCount
        << (fn.batchable ? " batchable" : "") << "\n";

    for (std::size_t k = 0; k < fn.ipool.size(); ++k)
        out << "  .ipool[" << k << "] = " << fn.ipool[k] << "\n";
    for (std::size_t k = 0; k < fn.fpool.size(); ++k) {
        out << "  .fpool[" << k << "] = ";
        printFloat(out, fn.fpool[k]);
        out << "\n";
    }
    for (std::size_t k = 0; k < fn.calls.size(); ++k) {
        const BcCallSite &site = fn.calls[k];
        out << "  .call[" << k << "] = @" << site.callee;
        if (site.calleeIndex < 0)
            out << " [external]";
        out << "(";
        for (std::size_t j = 0; j < site.args.size(); ++j) {
            if (j)
                out << ", ";
            out << regName(site.args[j].first) << ":"
                << typeShort(site.args[j].second);
        }
        out << ") -> " << typeShort(site.retType) << "\n";
    }

    for (std::size_t ip = 0; ip < fn.code.size(); ++ip) {
        const BcInst &inst = fn.code[ip];
        out << std::setw(4) << ip << ": ";
        out << std::left << std::setw(10) << opcodeMnemonic(inst.op)
            << std::right;
        switch (opcodeFormat(inst.op)) {
          case BcFormat::RegPoolI:
            out << regName(inst.a) << ", ipool[" << inst.imm << "]";
            break;
          case BcFormat::RegPoolF:
            out << regName(inst.a) << ", fpool[" << inst.imm << "]";
            break;
          case BcFormat::TwoReg:
            out << regName(inst.a) << ", " << regName(inst.b);
            break;
          case BcFormat::ThreeReg:
            out << regName(inst.a) << ", " << regName(inst.b) << ", "
                << regName(inst.c);
            break;
          case BcFormat::FourReg:
            out << regName(inst.a) << ", " << regName(inst.b) << ", "
                << regName(inst.c) << ", "
                << regName(static_cast<std::uint16_t>(inst.imm));
            break;
          case BcFormat::Branch:
            out << regName(inst.b) << ", -> " << inst.imm;
            break;
          case BcFormat::Target:
            out << "-> " << inst.imm;
            break;
          case BcFormat::CallFmt:
            out << regName(inst.a) << ", call[" << inst.imm << "]";
            break;
          case BcFormat::RetReg:
            out << regName(inst.a);
            break;
          case BcFormat::None:
            break;
        }
        out << "\n";
    }
    return out.str();
}

std::string
disassemble(const BcModule &module)
{
    std::ostringstream out;
    bool first = true;
    for (const BcFunction &fn : module.functions) {
        if (!first)
            out << "\n";
        first = false;
        out << disassemble(fn);
    }
    return out.str();
}

} // namespace stats::ir::bc
