/**
 * @file
 * Post-regalloc bytecode verifier: see bytecode_verifier.hpp for the
 * rule catalogue. All three flow checks ride the same instruction-
 * level CFG (successors: fall-through, plus the branch target for
 * brnz/jmp; none after ret) and use flat bitset matrices, so
 * verifying stays a small fraction of compile time
 * (bench/micro_interpreter's compile+verify scenario pins this).
 */

#include "ir/bytecode_verifier.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <utility>

namespace stats::ir::bc {

namespace {

using analysis::Diagnostic;
using analysis::makeDiagnostic;

constexpr std::uint8_t kIntCls = 1;
constexpr std::uint8_t kFloatCls = 2;

/** Bit matrix: one row of `bits` flags per instruction offset. */
struct BitMatrix
{
    std::size_t words = 0;
    std::vector<std::uint64_t> data;

    BitMatrix(std::size_t rows, std::size_t bits)
        : words((bits + 63) / 64), data(rows * words, 0)
    {
    }

    std::uint64_t *row(std::size_t r) { return data.data() + r * words; }
    const std::uint64_t *row(std::size_t r) const
    {
        return data.data() + r * words;
    }
    bool get(std::size_t r, std::size_t bit) const
    {
        return (row(r)[bit / 64] >> (bit % 64)) & 1;
    }
    void set(std::size_t r, std::size_t bit)
    {
        row(r)[bit / 64] |= std::uint64_t(1) << (bit % 64);
    }
};

/** Apply `f(succ)` to every CFG successor of the instruction at `p`. */
template <typename F>
void
forEachSuccessor(const std::vector<BcInst> &code, std::size_t p, F f)
{
    const BcInst &inst = code[p];
    switch (inst.op) {
      case BcOp::Jmp:
        f(std::size_t(inst.imm));
        break;
      case BcOp::Ret:
      case BcOp::RetV:
        break;
      case BcOp::Brnz:
        f(std::size_t(inst.imm));
        if (p + 1 < code.size())
            f(p + 1);
        break;
      default:
        if (p + 1 < code.size())
            f(p + 1);
        break;
    }
}

/** Offsets reachable from entry along the instruction-level CFG. */
std::vector<bool>
reachableOffsets(const std::vector<BcInst> &code)
{
    std::vector<bool> reach(code.size(), false);
    if (code.empty())
        return reach;
    std::vector<std::size_t> work{0};
    reach[0] = true;
    while (!work.empty()) {
        const std::size_t p = work.back();
        work.pop_back();
        forEachSuccessor(code, p, [&](std::size_t s) {
            if (!reach[s]) {
                reach[s] = true;
                work.push_back(s);
            }
        });
    }
    return reach;
}

/**
 * Backward may-liveness over the final code: a register is live-in at
 * `p` when some path from `p` reads it before any write. `uses` and
 * `defs` are per-offset bit rows in the caller's register numbering
 * (frame slots for BCV01, virtual registers for BCV03).
 */
struct LivenessResult
{
    BitMatrix liveIn;
    BitMatrix liveOut;
};

LivenessResult
backwardLiveness(const std::vector<BcInst> &code, const BitMatrix &uses,
                 const BitMatrix &defs, std::size_t bits)
{
    const std::size_t n = code.size();
    LivenessResult r{BitMatrix(n, bits), BitMatrix(n, bits)};
    const std::size_t words = r.liveIn.words;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t p = n; p-- > 0;) {
            std::uint64_t *out = r.liveOut.row(p);
            forEachSuccessor(code, p, [&](std::size_t s) {
                const std::uint64_t *sin = r.liveIn.row(s);
                for (std::size_t w = 0; w < words; ++w) {
                    const std::uint64_t merged = out[w] | sin[w];
                    if (merged != out[w]) {
                        out[w] = merged;
                        changed = true;
                    }
                }
            });
            std::uint64_t *in = r.liveIn.row(p);
            const std::uint64_t *use = uses.row(p);
            const std::uint64_t *def = defs.row(p);
            for (std::size_t w = 0; w < words; ++w) {
                const std::uint64_t next = use[w] | (out[w] & ~def[w]);
                if (next != in[w]) {
                    in[w] = next;
                    changed = true;
                }
            }
        }
    }
    return r;
}

/** Per-opcode read/write skeleton for the flow checks. */
struct OpRule
{
    std::uint8_t requireB = 0;   ///< Class a read of `b` demands.
    std::uint8_t requireC = 0;
    std::uint8_t requireImm = 0; ///< FourReg only: `imm` is a reg.
    std::uint8_t defCls = 0;     ///< Class written to `a` (0: special).
};

OpRule
opRule(BcOp op)
{
    switch (op) {
      case BcOp::LdcI:
        return {0, 0, 0, kIntCls};
      case BcOp::LdcF:
        return {0, 0, 0, kFloatCls};
      case BcOp::Mov: // Raw copy: class follows the source.
        return {};
      case BcOp::I2F:
      case BcOp::I2F32:
        return {kIntCls, 0, 0, kFloatCls};
      case BcOp::F2I:
      case BcOp::F2INc:
        return {kFloatCls, 0, 0, kIntCls};
      case BcOp::F2F32:
        return {kFloatCls, 0, 0, kFloatCls};
      case BcOp::AddI:
      case BcOp::SubI:
      case BcOp::MulI:
      case BcOp::DivI:
      case BcOp::DivINc:
        return {kIntCls, kIntCls, 0, kIntCls};
      case BcOp::AddF:
      case BcOp::SubF:
      case BcOp::MulF:
      case BcOp::DivF:
      case BcOp::AddF32:
      case BcOp::SubF32:
      case BcOp::MulF32:
      case BcOp::DivF32:
        return {kFloatCls, kFloatCls, 0, kFloatCls};
      case BcOp::EqI:
      case BcOp::LtI:
      case BcOp::LeI:
        return {kIntCls, kIntCls, 0, kIntCls};
      case BcOp::EqF:
      case BcOp::LtF:
      case BcOp::LeF:
        return {kFloatCls, kFloatCls, 0, kIntCls};
      case BcOp::Sel: // Arms copy raw; class is the union (special).
        return {kIntCls, 0, 0, 0};
      case BcOp::Brnz:
        return {kIntCls, 0, 0, 0};
      case BcOp::MulAddI:
      case BcOp::AddAddI:
      case BcOp::AddMulI:
        return {kIntCls, kIntCls, kIntCls, kIntCls};
      case BcOp::MulAddF:
      case BcOp::AddAddF:
      case BcOp::AddMulF:
        return {kFloatCls, kFloatCls, kFloatCls, kFloatCls};
      default: // Jmp, Call, Ret, RetV: no classed reg fields here.
        return {};
    }
}

class Checker
{
  public:
    Checker(const BcModule &module, const BcFunction &fn)
        : _module(module), _fn(fn)
    {
    }

    std::vector<Diagnostic> run();

  private:
    std::string at(std::size_t p) const
    {
        std::ostringstream os;
        os << "offset " << p << " ("
           << opcodeMnemonic(_fn.code[p].op) << "): ";
        return os.str();
    }

    void report(const char *rule, const std::string &message)
    {
        _diags.push_back(
            makeDiagnostic(rule, _fn.name, "", 0, message));
    }

    bool checkStructure(); ///< BCV04 + BCV05; false stops the flow.
    void checkDefBeforeUse(const std::vector<bool> &reach);  // BCV01
    void checkClasses(const std::vector<bool> &reach);       // BCV02
    void checkAllocation(const std::vector<bool> &reach);    // BCV03

    /** Registers the instruction at `p` reads / writes, slot view. */
    void slotAccess(std::size_t p, std::vector<std::uint16_t> &uses,
                    std::vector<std::uint16_t> &defs) const;

    const BcModule &_module;
    const BcFunction &_fn;
    std::vector<Diagnostic> _diags;
};

bool
Checker::checkStructure()
{
    const std::size_t before = _diags.size();
    const std::size_t n = _fn.code.size();
    if (n == 0) {
        report("BCV04", "compiled function has no code");
        return false;
    }

    // BCV04: targets and table indices.
    for (std::size_t p = 0; p < n; ++p) {
        const BcInst &inst = _fn.code[p];
        const auto outside = [&](const char *what, std::size_t size) {
            std::ostringstream os;
            os << at(p) << what << " " << inst.imm << " outside [0, "
               << size << ")";
            report("BCV04", os.str());
        };
        switch (opcodeFormat(inst.op)) {
          case BcFormat::Branch:
          case BcFormat::Target:
            if (inst.imm < 0 || std::size_t(inst.imm) >= n)
                outside("branch target", n);
            break;
          case BcFormat::RegPoolI:
            if (inst.imm < 0 ||
                std::size_t(inst.imm) >= _fn.ipool.size())
                outside("ipool index", _fn.ipool.size());
            break;
          case BcFormat::RegPoolF:
            if (inst.imm < 0 ||
                std::size_t(inst.imm) >= _fn.fpool.size())
                outside("fpool index", _fn.fpool.size());
            break;
          case BcFormat::CallFmt:
            if (inst.imm < 0 ||
                std::size_t(inst.imm) >= _fn.calls.size())
                outside("call-site index", _fn.calls.size());
            break;
          default:
            break;
        }
        // Execution must never run past the last instruction.
        const bool is_terminal = inst.op == BcOp::Ret ||
                                 inst.op == BcOp::RetV ||
                                 inst.op == BcOp::Jmp;
        if (p + 1 == n && !is_terminal) {
            std::ostringstream os;
            os << at(p) << "execution falls off the end of the code";
            report("BCV04", os.str());
        }
    }
    for (std::size_t s = 0; s < _fn.calls.size(); ++s) {
        const int callee = _fn.calls[s].calleeIndex;
        if (callee >= 0 &&
            std::size_t(callee) >= _module.functions.size()) {
            std::ostringstream os;
            os << "call site " << s << ": callee index " << callee
               << " outside the module";
            report("BCV04", os.str());
        }
    }
    if (_diags.size() != before)
        return false; // Bad indices would fault the BCV05 walk too.

    // BCV05: every register field inside the frame; kNoReg only where
    // it is legal (a call's discarded result). A fused
    // superinstruction missing its third source lands here too.
    const auto reg = [&](std::size_t p, std::int64_t r,
                         bool allow_none) {
        if (r == kNoReg) {
            if (allow_none)
                return;
            std::ostringstream os;
            os << at(p) << "missing operand register";
            report("BCV05", os.str());
            return;
        }
        if (r < 0 || r >= std::int64_t(_fn.numRegs)) {
            std::ostringstream os;
            os << at(p) << "register r" << r << " outside the frame ("
               << _fn.numRegs << " slot(s))";
            report("BCV05", os.str());
        }
    };
    for (std::size_t p = 0; p < n; ++p) {
        const BcInst &inst = _fn.code[p];
        switch (opcodeFormat(inst.op)) {
          case BcFormat::RegPoolI:
          case BcFormat::RegPoolF:
            reg(p, inst.a, false);
            break;
          case BcFormat::TwoReg:
            reg(p, inst.a, false);
            reg(p, inst.b, false);
            break;
          case BcFormat::ThreeReg:
            reg(p, inst.a, false);
            reg(p, inst.b, false);
            reg(p, inst.c, false);
            break;
          case BcFormat::FourReg:
            reg(p, inst.a, false);
            reg(p, inst.b, false);
            reg(p, inst.c, false);
            reg(p, inst.imm, false);
            break;
          case BcFormat::Branch:
            reg(p, inst.b, false);
            break;
          case BcFormat::CallFmt:
            reg(p, inst.a, true);
            for (const auto &arg :
                 _fn.calls[std::size_t(inst.imm)].args)
                reg(p, arg.first, false);
            break;
          case BcFormat::RetReg:
            reg(p, inst.a, false);
            break;
          default:
            break;
        }
    }
    for (std::size_t j = 0; j < _fn.paramRegs.size(); ++j) {
        const std::uint16_t r = _fn.paramRegs[j];
        if (r != kNoReg && r >= _fn.numRegs) {
            std::ostringstream os;
            os << "parameter " << j << " register r" << r
               << " outside the frame (" << _fn.numRegs
               << " slot(s))";
            report("BCV05", os.str());
        }
    }
    return _diags.size() == before;
}

void
Checker::slotAccess(std::size_t p, std::vector<std::uint16_t> &uses,
                    std::vector<std::uint16_t> &defs) const
{
    const BcInst &inst = _fn.code[p];
    switch (opcodeFormat(inst.op)) {
      case BcFormat::RegPoolI:
      case BcFormat::RegPoolF:
        defs.push_back(inst.a);
        break;
      case BcFormat::TwoReg:
        uses.push_back(inst.b);
        defs.push_back(inst.a);
        break;
      case BcFormat::ThreeReg:
        uses.push_back(inst.b);
        uses.push_back(inst.c);
        defs.push_back(inst.a);
        break;
      case BcFormat::FourReg:
        uses.push_back(inst.b);
        uses.push_back(inst.c);
        uses.push_back(std::uint16_t(inst.imm));
        defs.push_back(inst.a);
        break;
      case BcFormat::Branch:
        uses.push_back(inst.b);
        break;
      case BcFormat::CallFmt:
        for (const auto &arg : _fn.calls[std::size_t(inst.imm)].args)
            uses.push_back(arg.first);
        if (inst.a != kNoReg)
            defs.push_back(inst.a);
        break;
      case BcFormat::RetReg:
        uses.push_back(inst.a);
        break;
      default:
        break;
    }
}

void
Checker::checkDefBeforeUse(const std::vector<bool> &reach)
{
    (void)reach;
    const std::size_t n = _fn.code.size();
    BitMatrix uses(n, _fn.numRegs), defs(n, _fn.numRegs);
    for (std::size_t p = 0; p < n; ++p) {
        std::vector<std::uint16_t> u, d;
        slotAccess(p, u, d);
        for (const std::uint16_t r : u)
            uses.set(p, r);
        for (const std::uint16_t r : d)
            defs.set(p, r);
    }
    const LivenessResult live =
        backwardLiveness(_fn.code, uses, defs, _fn.numRegs);

    std::vector<bool> is_param(_fn.numRegs, false);
    for (const std::uint16_t r : _fn.paramRegs)
        if (r != kNoReg)
            is_param[r] = true;
    for (std::size_t r = 0; r < _fn.numRegs; ++r) {
        if (live.liveIn.get(0, r) && !is_param[r]) {
            std::ostringstream os;
            os << "register r" << r
               << " may be read before it is written (live-in at "
                  "entry without a parameter write)";
            report("BCV01", os.str());
        }
    }
}

void
Checker::checkClasses(const std::vector<bool> &reach)
{
    const std::size_t n = _fn.code.size();
    const std::size_t R = _fn.numRegs;
    std::vector<std::uint8_t> state(n * R, 0);
    std::vector<bool> visited(n, false);
    const auto row = [&](std::size_t p) { return state.data() + p * R; };

    std::vector<std::uint8_t> entry(R, 0);
    for (std::size_t j = 0; j < _fn.paramRegs.size(); ++j) {
        if (_fn.paramRegs[j] != kNoReg)
            entry[_fn.paramRegs[j]] |=
                _fn.paramClasses[j] == RegClass::Float ? kFloatCls
                                                       : kIntCls;
    }
    if (n == 0 || R == 0)
        return;
    std::copy(entry.begin(), entry.end(), row(0));
    visited[0] = true;

    const auto transfer = [&](std::size_t p,
                              std::vector<std::uint8_t> &out) {
        const BcInst &inst = _fn.code[p];
        out.assign(row(p), row(p) + R);
        const OpRule rule = opRule(inst.op);
        if (inst.op == BcOp::Mov) {
            out[inst.a] = out[inst.b];
        } else if (inst.op == BcOp::Sel) {
            out[inst.a] =
                out[inst.c] | out[std::uint16_t(inst.imm)];
        } else if (inst.op == BcOp::Call) {
            const BcCallSite &site =
                _fn.calls[std::size_t(inst.imm)];
            if (inst.a != kNoReg)
                out[inst.a] =
                    isFloating(site.retType) ? kFloatCls : kIntCls;
        } else if (rule.defCls != 0) {
            out[inst.a] = rule.defCls;
        }
    };

    std::vector<std::size_t> work{0};
    std::vector<std::uint8_t> exit;
    while (!work.empty()) {
        const std::size_t p = work.back();
        work.pop_back();
        transfer(p, exit);
        forEachSuccessor(_fn.code, p, [&](std::size_t s) {
            std::uint8_t *srow = row(s);
            bool changed = false;
            if (!visited[s]) {
                std::copy(exit.begin(), exit.end(), srow);
                visited[s] = true;
                changed = true;
            } else {
                for (std::size_t r = 0; r < R; ++r) {
                    const std::uint8_t merged = srow[r] | exit[r];
                    if (merged != srow[r]) {
                        srow[r] = merged;
                        changed = true;
                    }
                }
            }
            if (changed)
                work.push_back(s);
        });
    }

    // Reporting pass over the fixpoint: flag reads whose demanded
    // class is definitely absent (an empty class set is a BCV01
    // matter, not a mismatch). One report per (offset, register) —
    // an instruction reading the same bad register twice is one bug.
    std::set<std::pair<std::size_t, std::uint16_t>> reported;
    const auto check = [&](std::size_t p, std::uint16_t r,
                           std::uint8_t want) {
        if (want == 0)
            return;
        const std::uint8_t have = row(p)[r];
        if (have == 0 || (have & want) != 0)
            return;
        if (!reported.insert({p, r}).second)
            return;
        std::ostringstream os;
        os << at(p) << "register r" << r << " holds a "
           << (want == kIntCls ? "float" : "integer")
           << "-classed value but is read as "
           << (want == kIntCls ? "an integer" : "a float");
        report("BCV02", os.str());
    };
    for (std::size_t p = 0; p < n; ++p) {
        if (!visited[p] || !reach[p])
            continue;
        const BcInst &inst = _fn.code[p];
        const OpRule rule = opRule(inst.op);
        switch (opcodeFormat(inst.op)) {
          case BcFormat::TwoReg:
          case BcFormat::Branch:
            check(p, inst.b, rule.requireB);
            break;
          case BcFormat::ThreeReg:
            check(p, inst.b, rule.requireB);
            check(p, inst.c, rule.requireC);
            break;
          case BcFormat::FourReg:
            check(p, inst.b, rule.requireB);
            check(p, inst.c, rule.requireC);
            check(p, std::uint16_t(inst.imm), rule.requireImm);
            break;
          case BcFormat::CallFmt:
            for (const auto &arg :
                 _fn.calls[std::size_t(inst.imm)].args)
                check(p, arg.first,
                      isFloating(arg.second) ? kFloatCls : kIntCls);
            break;
          default: // Ret returns raw; pools/jmp read no classed reg.
            break;
        }
    }
}

void
Checker::checkAllocation(const std::vector<bool> &reach)
{
    const BcVerifyInfo &info = _fn.verifyInfo;
    if (info.vcode.size() != _fn.code.size() || info.slotOf.empty())
        return; // Hand-built function: no compiler snapshot.
    if (info.callArgVregs.size() != _fn.calls.size())
        return;
    const std::size_t n = info.vcode.size();
    const std::size_t V = info.slotOf.size();

    BitMatrix uses(n, V), defs(n, V);
    std::vector<std::uint16_t> def_of(n, kNoReg);
    for (std::size_t p = 0; p < n; ++p) {
        const BcInst &inst = info.vcode[p];
        std::vector<std::uint16_t> u, d;
        switch (opcodeFormat(inst.op)) {
          case BcFormat::RegPoolI:
          case BcFormat::RegPoolF:
            d.push_back(inst.a);
            break;
          case BcFormat::TwoReg:
            u.push_back(inst.b);
            d.push_back(inst.a);
            break;
          case BcFormat::ThreeReg:
            u.push_back(inst.b);
            u.push_back(inst.c);
            d.push_back(inst.a);
            break;
          case BcFormat::FourReg:
            u.push_back(inst.b);
            u.push_back(inst.c);
            u.push_back(std::uint16_t(inst.imm));
            d.push_back(inst.a);
            break;
          case BcFormat::Branch:
            u.push_back(inst.b);
            break;
          case BcFormat::CallFmt:
            for (const std::uint16_t arg :
                 info.callArgVregs[std::size_t(inst.imm)])
                u.push_back(arg);
            if (inst.a != kNoReg)
                d.push_back(inst.a);
            break;
          case BcFormat::RetReg:
            u.push_back(inst.a);
            break;
          default:
            break;
        }
        for (const std::uint16_t r : u)
            if (r < V)
                uses.set(p, r);
        for (const std::uint16_t r : d) {
            if (r < V) {
                defs.set(p, r);
                def_of[p] = r;
            }
        }
    }
    const LivenessResult live =
        backwardLiveness(info.vcode, uses, defs, V);

    for (std::size_t p = 0; p < n; ++p) {
        if (!reach[p])
            continue;
        const std::uint16_t d = def_of[p];
        if (d == kNoReg)
            continue;
        const std::uint16_t slot = info.slotOf[d];
        if (slot == kNoReg)
            continue;
        const BcInst &inst = info.vcode[p];
        // A copy whose source already sits in the destination slot
        // leaves the slot's value unchanged: not a clobber.
        if (inst.op == BcOp::Mov && inst.b < V &&
            info.slotOf[inst.b] == slot)
            continue;
        for (std::size_t u = 0; u < V; ++u) {
            if (u == d || info.slotOf[u] != slot)
                continue;
            if (!live.liveOut.get(p, u))
                continue;
            std::ostringstream os;
            os << at(p) << "write to frame slot r" << slot << " (v"
               << d << ") clobbers live virtual register v" << u;
            report("BCV03", os.str());
        }
    }
}

std::vector<Diagnostic>
Checker::run()
{
    if (checkStructure()) {
        const std::vector<bool> reach = reachableOffsets(_fn.code);
        checkDefBeforeUse(reach);
        checkClasses(reach);
        checkAllocation(reach);
    }
    analysis::sortDiagnostics(_diags);
    return _diags;
}

/** Process-wide auto-verify switch, seeded from the environment.
 *  Atomic: statsd toggles nothing, but admission-side verification
 *  runs concurrently with dispatcher-side compiles. */
std::atomic<bool> &
autoVerifyFlag()
{
    static std::atomic<bool> flag = [] {
        const char *value = std::getenv("STATS_VERIFY_BYTECODE");
        if (value == nullptr)
            return true;
        return std::strcmp(value, "0") != 0 &&
               std::strcmp(value, "off") != 0;
    }();
    return flag;
}

/** Per-thread suppression depth — verifyCompiledModule() must not
 *  switch auto-verify off for every OTHER thread's compiles. */
thread_local int tlsAutoVerifySuppressed = 0;

} // namespace

std::vector<Diagnostic>
verifyFunction(const BcModule &module, const BcFunction &fn)
{
    if (!fn.compiled)
        return {};
    Checker checker(module, fn);
    return checker.run();
}

std::vector<Diagnostic>
verifyModule(const BcModule &module)
{
    std::vector<Diagnostic> diags;
    for (const auto &fn : module.functions) {
        auto found = verifyFunction(module, fn);
        diags.insert(diags.end(), found.begin(), found.end());
    }
    analysis::sortDiagnostics(diags);
    return diags;
}

namespace {

/** Suppresses auto-verify on THIS thread only (other threads keep
 *  compiling with the guard on), restored even when compilation
 *  throws. */
class AutoVerifyDisabler
{
  public:
    AutoVerifyDisabler() { ++tlsAutoVerifySuppressed; }
    ~AutoVerifyDisabler() { --tlsAutoVerifySuppressed; }
    AutoVerifyDisabler(const AutoVerifyDisabler &) = delete;
    AutoVerifyDisabler &operator=(const AutoVerifyDisabler &) = delete;
};

} // namespace

std::vector<Diagnostic>
verifyCompiledModule(const Module &module)
{
    // Suppress the in-compile panic: this entry point reports.
    const AutoVerifyDisabler guard;
    BcModule compiled = compileModule(module);
    return verifyModule(compiled);
}

bool
autoVerifyEnabled()
{
    return tlsAutoVerifySuppressed == 0 &&
           autoVerifyFlag().load(std::memory_order_relaxed);
}

bool
setAutoVerify(bool enabled)
{
    return autoVerifyFlag().exchange(enabled,
                                     std::memory_order_relaxed);
}

} // namespace stats::ir::bc
