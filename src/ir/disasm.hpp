/**
 * @file
 * Bytecode disassembler: deterministic, byte-stable text for compiled
 * modules (docs/INTERPRETER.md §3). `statscc disasm` prints it, and
 * tests/disasm_golden_test.cpp pins it against goldens under
 * tests/golden/.
 */

#pragma once

#include <string>

#include "ir/bytecode.hpp"

namespace stats::ir::bc {

/** Disassemble one function (compiled or fallback header only). */
std::string disassemble(const BcFunction &fn);

/** Disassemble every function of a module, in module order. */
std::string disassemble(const BcModule &module);

} // namespace stats::ir::bc
