/**
 * @file
 * Lane-parallel kernels for the VM's batched SoA execution mode
 * (docs/INTERPRETER.md §5). Each kernel applies one bytecode
 * operation across W lanes of a register row.
 *
 * The portable bodies are plain stride-1 loops the compiler
 * auto-vectorizes; where it measurably helps and the ISA is
 * available, explicit SSE2/AVX2 paths are provided (i64 multiply has
 * no packed form before AVX-512DQ, so the integer-multiply kernels
 * stay scalar per lane). All float kernels must keep the AST
 * walker's double-rounding semantics: the including translation unit
 * is built with -ffp-contract=off so a*b+c never contracts to an
 * FMA.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "ir/vm.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace stats::ir::bc::simd {

inline void
addI(VmReg *dst, const VmReg *a, const VmReg *b, std::size_t n)
{
#if defined(__AVX2__)
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + w));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + w));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + w),
                            _mm256_add_epi64(va, vb));
    }
    for (; w < n; ++w)
        dst[w].i = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a[w].i) +
            static_cast<std::uint64_t>(b[w].i));
#else
    for (std::size_t w = 0; w < n; ++w)
        dst[w].i = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a[w].i) +
            static_cast<std::uint64_t>(b[w].i));
#endif
}

inline void
subI(VmReg *dst, const VmReg *a, const VmReg *b, std::size_t n)
{
#if defined(__AVX2__)
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + w));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + w));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + w),
                            _mm256_sub_epi64(va, vb));
    }
    for (; w < n; ++w)
        dst[w].i = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a[w].i) -
            static_cast<std::uint64_t>(b[w].i));
#else
    for (std::size_t w = 0; w < n; ++w)
        dst[w].i = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a[w].i) -
            static_cast<std::uint64_t>(b[w].i));
#endif
}

/** No packed 64-bit multiply before AVX-512DQ: scalar per lane. */
inline void
mulI(VmReg *dst, const VmReg *a, const VmReg *b, std::size_t n)
{
    for (std::size_t w = 0; w < n; ++w)
        dst[w].i = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a[w].i) *
            static_cast<std::uint64_t>(b[w].i));
}

inline void
addF(VmReg *dst, const VmReg *a, const VmReg *b, std::size_t n)
{
#if defined(__AVX2__)
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256d va = _mm256_loadu_pd(&a[w].f);
        const __m256d vb = _mm256_loadu_pd(&b[w].f);
        _mm256_storeu_pd(&dst[w].f, _mm256_add_pd(va, vb));
    }
    for (; w < n; ++w)
        dst[w].f = a[w].f + b[w].f;
#elif defined(__SSE2__)
    std::size_t w = 0;
    for (; w + 2 <= n; w += 2) {
        const __m128d va = _mm_loadu_pd(&a[w].f);
        const __m128d vb = _mm_loadu_pd(&b[w].f);
        _mm_storeu_pd(&dst[w].f, _mm_add_pd(va, vb));
    }
    for (; w < n; ++w)
        dst[w].f = a[w].f + b[w].f;
#else
    for (std::size_t w = 0; w < n; ++w)
        dst[w].f = a[w].f + b[w].f;
#endif
}

inline void
subF(VmReg *dst, const VmReg *a, const VmReg *b, std::size_t n)
{
#if defined(__AVX2__)
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256d va = _mm256_loadu_pd(&a[w].f);
        const __m256d vb = _mm256_loadu_pd(&b[w].f);
        _mm256_storeu_pd(&dst[w].f, _mm256_sub_pd(va, vb));
    }
    for (; w < n; ++w)
        dst[w].f = a[w].f - b[w].f;
#else
    for (std::size_t w = 0; w < n; ++w)
        dst[w].f = a[w].f - b[w].f;
#endif
}

inline void
mulF(VmReg *dst, const VmReg *a, const VmReg *b, std::size_t n)
{
#if defined(__AVX2__)
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256d va = _mm256_loadu_pd(&a[w].f);
        const __m256d vb = _mm256_loadu_pd(&b[w].f);
        _mm256_storeu_pd(&dst[w].f, _mm256_mul_pd(va, vb));
    }
    for (; w < n; ++w)
        dst[w].f = a[w].f * b[w].f;
#else
    for (std::size_t w = 0; w < n; ++w)
        dst[w].f = a[w].f * b[w].f;
#endif
}

inline void
divF(VmReg *dst, const VmReg *a, const VmReg *b, std::size_t n)
{
    for (std::size_t w = 0; w < n; ++w)
        dst[w].f = a[w].f / b[w].f;
}

/**
 * Fused chains keep their two roundings: the explicit temporary plus
 * -ffp-contract=off pin `t = a*b; dst = t + c` to two IEEE ops, never
 * a contracted FMA (which would diverge from the AST walker).
 */
inline void
mulAddF(VmReg *dst, const VmReg *a, const VmReg *b, const VmReg *c,
        std::size_t n)
{
#if defined(__AVX2__)
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256d t =
            _mm256_mul_pd(_mm256_loadu_pd(&a[w].f),
                          _mm256_loadu_pd(&b[w].f));
        _mm256_storeu_pd(&dst[w].f,
                         _mm256_add_pd(t, _mm256_loadu_pd(&c[w].f)));
    }
    for (; w < n; ++w) {
        const double t = a[w].f * b[w].f;
        dst[w].f = t + c[w].f;
    }
#else
    for (std::size_t w = 0; w < n; ++w) {
        const double t = a[w].f * b[w].f;
        dst[w].f = t + c[w].f;
    }
#endif
}

inline void
addAddF(VmReg *dst, const VmReg *a, const VmReg *b, const VmReg *c,
        std::size_t n)
{
    for (std::size_t w = 0; w < n; ++w) {
        const double t = a[w].f + b[w].f;
        dst[w].f = t + c[w].f;
    }
}

inline void
addMulF(VmReg *dst, const VmReg *a, const VmReg *b, const VmReg *c,
        std::size_t n)
{
    for (std::size_t w = 0; w < n; ++w) {
        const double t = a[w].f + b[w].f;
        dst[w].f = t * c[w].f;
    }
}

inline void
mulAddI(VmReg *dst, const VmReg *a, const VmReg *b, const VmReg *c,
        std::size_t n)
{
    for (std::size_t w = 0; w < n; ++w)
        dst[w].i = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a[w].i) *
                static_cast<std::uint64_t>(b[w].i) +
            static_cast<std::uint64_t>(c[w].i));
}

inline void
addAddI(VmReg *dst, const VmReg *a, const VmReg *b, const VmReg *c,
        std::size_t n)
{
    for (std::size_t w = 0; w < n; ++w)
        dst[w].i = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a[w].i) +
            static_cast<std::uint64_t>(b[w].i) +
            static_cast<std::uint64_t>(c[w].i));
}

inline void
addMulI(VmReg *dst, const VmReg *a, const VmReg *b, const VmReg *c,
        std::size_t n)
{
    for (std::size_t w = 0; w < n; ++w)
        dst[w].i = static_cast<std::int64_t>(
            (static_cast<std::uint64_t>(a[w].i) +
             static_cast<std::uint64_t>(b[w].i)) *
            static_cast<std::uint64_t>(c[w].i));
}

} // namespace stats::ir::bc::simd
