/**
 * @file
 * The STATS intermediate representation (paper section 3.4).
 *
 * The paper's middle-end lowers C++ to LLVM IR "extended with extra
 * metadata" that represents the state space explicitly; the back-end
 * instantiates one configuration on that IR. Our self-contained
 * mini-IR supports exactly the operations those passes need:
 *
 *  - typed SSA instructions in basic blocks, functions, a module;
 *  - module-level metadata tables describing tradeoffs and state
 *    dependences (inspired, like the paper, by the CIL metadata
 *    encoding);
 *  - a textual format with a parser/printer (round-trippable);
 *  - a verifier, an interpreter (the substitute for LLVM's dynamic
 *    compiler used to evaluate getValue(i) at compile time), and a
 *    call graph for the bottom-up cloning analysis.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace stats::ir {

/** Scalar types; F32 exists for the data-type tradeoffs. */
enum class Type
{
    Void,
    I64,
    F64,
    F32,
};

const char *typeName(Type type);
bool isFloating(Type type);

/** Instruction opcodes. */
enum class Opcode
{
    Add,
    Sub,
    Mul,
    Div,
    CmpEq, ///< Result I64 (0/1).
    CmpLt,
    CmpLe,
    Select, ///< select cond, a, b
    Cast,   ///< Value conversion to the instruction's type.
    Phi,    ///< Operands paired with incoming block labels.
    Call,
    Br,  ///< br cond, thenLabel, elseLabel
    Jmp, ///< jmp label
    Ret, ///< ret [value]
};

const char *opcodeName(Opcode op);
bool isTerminator(Opcode op);

/** An instruction operand: a temporary or an immediate constant. */
struct Operand
{
    enum class Kind
    {
        Temp,
        ConstInt,
        ConstFloat,
    };

    Kind kind = Kind::Temp;
    std::string name;       ///< Temp name (no leading '%').
    std::int64_t intValue = 0;
    double floatValue = 0.0;

    static Operand temp(std::string name);
    static Operand constInt(std::int64_t value);
    static Operand constFloat(double value);

    std::string toString() const;
    bool operator==(const Operand &other) const;
};

/** One instruction. */
struct Instruction
{
    Opcode op = Opcode::Ret;
    Type type = Type::Void;  ///< Result type (Void for none).
    std::string result;      ///< Result temp name (may be empty).
    std::vector<Operand> operands;

    /** Call: callee name. */
    std::string callee;

    /** Br/Jmp: target labels. Phi: incoming block per operand. */
    std::vector<std::string> labels;

    /** Source line in the textual module (0 = not parsed). */
    std::size_t line = 0;

    std::string toString() const;
};

struct BasicBlock
{
    std::string label;
    std::vector<Instruction> instructions;
    std::size_t line = 0; ///< Source line of the label (0 = unknown).

    const Instruction *terminator() const;
};

struct Parameter
{
    std::string name;
    Type type = Type::I64;
};

struct Function
{
    std::string name;
    Type returnType = Type::Void;
    std::vector<Parameter> params;
    std::vector<BasicBlock> blocks;
    std::size_t line = 0; ///< Source line of the header (0 = unknown).

    std::size_t instructionCount() const;
    BasicBlock *findBlock(const std::string &label);
    const BasicBlock *findBlock(const std::string &label) const;
};

/** Kind of program text a tradeoff substitutes (paper section 3.3). */
enum class TradeoffKind
{
    Constant,
    DataType,
    FunctionChoice,
};

const char *tradeoffKindName(TradeoffKind kind);

/** Metadata entry describing one tradeoff (paper Figure 11 table). */
struct TradeoffMeta
{
    std::string name;          ///< e.g. "T_42" or "aux::T_42".
    TradeoffKind kind = TradeoffKind::Constant;
    std::string placeholder;   ///< Placeholder function name.
    std::string getValueFn;    ///< IR function: index -> value.
    std::string sizeFn;        ///< IR function: () -> count.
    std::string defaultIndexFn;///< IR function: () -> default index.
    bool auxClone = false;
    std::string origin;        ///< Original tradeoff for clones.
    std::size_t line = 0;      ///< Source line (0 = unknown).

    /** Type names for DataType, callee names for FunctionChoice. */
    std::vector<std::string> nameChoices;
};

/** Metadata entry describing one state dependence. */
struct StateDepMeta
{
    std::string name;      ///< e.g. "SD0".
    std::string computeFn; ///< The dependence's computeOutput().
    std::string auxFn;     ///< Middle-end-generated clone (may be "").
    bool runtimeLinked = false; ///< Back-end linked the runtime.
    bool truncated = false;     ///< Clone budget cut this dep's aux code.
    std::size_t line = 0;       ///< Source line (0 = unknown).
};

/**
 * Origin-of-clone record emitted by the middle-end for every function
 * it clones (including tradeoff placeholder clones). The aux-clone
 * auditor uses these to prove each clone is a faithful stand-in for
 * its origin.
 */
struct AuxCloneMeta
{
    std::string clone;    ///< Clone function name.
    std::string origin;   ///< Function the clone was copied from.
    std::string stateDep; ///< Owning state dependence (e.g. "SD0").
    std::size_t line = 0; ///< Source line (0 = unknown).
};

struct Module
{
    std::string name;
    std::vector<Function> functions;
    std::vector<TradeoffMeta> tradeoffs;
    std::vector<StateDepMeta> stateDeps;
    std::vector<AuxCloneMeta> auxClones;

    Function *findFunction(const std::string &name);
    const Function *findFunction(const std::string &name) const;
    TradeoffMeta *findTradeoff(const std::string &name);
    const TradeoffMeta *findTradeoff(const std::string &name) const;
    StateDepMeta *findStateDep(const std::string &name);
    const StateDepMeta *findStateDep(const std::string &name) const;
    const AuxCloneMeta *findAuxClone(const std::string &clone) const;
    std::size_t instructionCount() const;
};

} // namespace stats::ir
