/**
 * @file
 * IR-to-bytecode compiler (docs/INTERPRETER.md).
 *
 * The pipeline per function: (1) static class inference over a small
 * type lattice, module-wide fixpoint so call results class through;
 * (2) lowering to virtual-register code, with phis turned into
 * parallel-copy edge stubs and class conversions materialized at the
 * exact points the AST walker's RtValue::asInt/asFloat would convert;
 * (3) superinstruction fusion of adjacent def-use pairs whose
 * intermediate dies; (4) interval register allocation, widening every
 * temp's interval with the block-level analysis::Liveness facts so
 * loop-carried values hold their slot across back edges.
 *
 * Exactness contract: a compiled function must produce bit-identical
 * results to ir::Interpreter on every input. Whenever static
 * reasoning cannot guarantee that — mixed-class phis or selects, call
 * argument classes that disagree with the callee's declared
 * parameters, uses of undefined temps — the function is bailed to the
 * AST walker instead of compiled approximately. The one assumption we
 * do make is the repo-wide SSA convention that definitions dominate
 * uses (the structural verifier does not enforce it; the fuzzer
 * generator and all examples satisfy it).
 */

#include "ir/bytecode.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <optional>
#include <set>
#include <utility>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/def_use.hpp"
#include "analysis/manager.hpp"
#include "analysis/range.hpp"
#include "ir/bytecode_verifier.hpp"
#include "support/log.hpp"

namespace stats::ir::bc {

namespace testonly {

bool disableBackEdgeWidening = false;

} // namespace testonly

namespace {

const char *const kMnemonics[] = {
#define STATS_BC_MNEMONIC(name, mnemonic, format) mnemonic,
    STATS_BC_OPCODES(STATS_BC_MNEMONIC)
#undef STATS_BC_MNEMONIC
};

const BcFormat kFormats[] = {
#define STATS_BC_FORMAT(name, mnemonic, format) BcFormat::format,
    STATS_BC_OPCODES(STATS_BC_FORMAT)
#undef STATS_BC_FORMAT
};

constexpr std::size_t kOpcodeCount =
    sizeof(kMnemonics) / sizeof(kMnemonics[0]);

/**
 * Static value lattice. FloatMixed is a float-class value whose
 * precision tag (F64 vs F32) varies dynamically; execution only needs
 * the class, the tag degrades to F64 at boundaries.
 */
enum class Cls : std::uint8_t
{
    Unknown,
    I64,
    F64,
    F32,
    FloatMixed,
    Conflict,
};

bool
isFloatCls(Cls c)
{
    return c == Cls::F64 || c == Cls::F32 || c == Cls::FloatMixed;
}

Cls
merge(Cls a, Cls b)
{
    if (a == b || b == Cls::Unknown)
        return a;
    if (a == Cls::Unknown)
        return b;
    if (a == Cls::Conflict || b == Cls::Conflict)
        return Cls::Conflict;
    if (isFloatCls(a) && isFloatCls(b))
        return Cls::FloatMixed;
    return Cls::Conflict;
}

/** Void behaves as I64 everywhere the interpreter tests isFloating. */
Cls
clsOfType(Type type)
{
    switch (type) {
      case Type::F64: return Cls::F64;
      case Type::F32: return Cls::F32;
      default: return Cls::I64;
    }
}

Type
typeTag(Cls c)
{
    switch (c) {
      case Cls::F64: return Type::F64;
      case Cls::F32: return Type::F32;
      case Cls::FloatMixed: return Type::F64;
      default: return Type::I64;
    }
}

/** Per-function inference result. */
struct FnClasses
{
    std::map<std::string, Cls> temps;
    Cls ret = Cls::Unknown; ///< Merged class of value-returning rets.
    bool hasValueRet = false;
    bool hasVoidRet = false;
};

/** Replicates RtValue::asInt for compile-time constant folding. */
std::int64_t
saturateToInt(double f)
{
    if (f != f)
        return 0;
    if (f >= 9223372036854775808.0)
        return 9223372036854775807LL;
    if (f < -9223372036854775808.0)
        return -9223372036854775807LL - 1;
    return static_cast<std::int64_t>(f);
}

struct Inference
{
    const Module &module;
    const std::map<std::string, Type> &externalTypes;
    std::map<std::string, FnClasses> byFn;

    Cls operandCls(const FnClasses &fc, const Operand &op) const
    {
        switch (op.kind) {
          case Operand::Kind::ConstInt: return Cls::I64;
          case Operand::Kind::ConstFloat: return Cls::F64;
          case Operand::Kind::Temp: {
            auto it = fc.temps.find(op.name);
            return it == fc.temps.end() ? Cls::Unknown : it->second;
          }
        }
        return Cls::Unknown;
    }

    Cls calleeRetCls(const std::string &callee) const
    {
        if (module.findFunction(callee)) {
            const auto &fc = byFn.at(callee);
            // A void-only function materializes as I64 0 at the call.
            if (!fc.hasValueRet)
                return fc.hasVoidRet ? Cls::I64 : Cls::Unknown;
            return fc.hasVoidRet ? merge(fc.ret, Cls::I64) : fc.ret;
        }
        auto it = externalTypes.find(callee);
        return clsOfType(it == externalTypes.end() ? Type::F64
                                                   : it->second);
    }

    /** One monotone pass over `fn`; returns true when facts changed. */
    bool pass(const Function &fn, const analysis::Cfg &cfg)
    {
        FnClasses &fc = byFn[fn.name];
        bool changed = false;
        auto update = [&](const std::string &name, Cls cls) {
            Cls &slot = fc.temps[name];
            // Multiple defs of one temp merge (the IR is SSA only by
            // convention), except that re-running a pass must not
            // self-merge a def into its previous value: recompute from
            // scratch per pass instead.
            const Cls next = merge(slot, cls);
            if (next != slot) {
                slot = next;
                changed = true;
            }
        };
        for (const auto &param : fn.params)
            update(param.name, clsOfType(param.type));
        for (int block : cfg.reversePostorder()) {
            const BasicBlock &bb = cfg.block(block);
            for (const auto &inst : bb.instructions) {
                switch (inst.op) {
                  case Opcode::Add:
                  case Opcode::Sub:
                  case Opcode::Mul:
                  case Opcode::Div:
                  case Opcode::Cast:
                    update(inst.result, clsOfType(inst.type));
                    break;
                  case Opcode::CmpEq:
                  case Opcode::CmpLt:
                  case Opcode::CmpLe:
                    update(inst.result, Cls::I64);
                    break;
                  case Opcode::Select:
                    update(inst.result,
                           merge(operandCls(fc, inst.operands[1]),
                                 operandCls(fc, inst.operands[2])));
                    break;
                  case Opcode::Phi: {
                    // Only edges that can execute contribute a class.
                    Cls cls = Cls::Unknown;
                    for (std::size_t i = 0; i < inst.operands.size();
                         ++i) {
                        const int pred = cfg.indexOf(inst.labels[i]);
                        if (pred < 0 || !cfg.reachable(pred))
                            continue;
                        cls = merge(cls,
                                    operandCls(fc, inst.operands[i]));
                    }
                    update(inst.result, cls);
                    break;
                  }
                  case Opcode::Call:
                    if (!inst.result.empty())
                        update(inst.result, calleeRetCls(inst.callee));
                    break;
                  case Opcode::Ret:
                    if (inst.operands.empty()) {
                        if (!fc.hasVoidRet) {
                            fc.hasVoidRet = true;
                            changed = true;
                        }
                    } else {
                        const Cls cls =
                            merge(fc.ret,
                                  operandCls(fc, inst.operands[0]));
                        if (!fc.hasValueRet || cls != fc.ret) {
                            fc.hasValueRet = true;
                            fc.ret = cls;
                            changed = true;
                        }
                    }
                    break;
                  default:
                    break;
                }
            }
        }
        return changed;
    }
};

/** Compile-time bail: this function stays on the AST walker. */
struct BailOut
{
    std::string reason;
};

[[noreturn]] void
bail(std::string reason)
{
    throw BailOut{std::move(reason)};
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/** A contiguous run of code; branch targets resolve to region starts. */
struct Region
{
    std::vector<BcInst> code;
    int block = -1;      ///< Cfg block index for bodies, -1 for others.
    bool fusable = false; ///< Superinstruction peephole runs here.
};

class FunctionLowering
{
  public:
    FunctionLowering(const Module &module, const Function &fn,
                     const Inference &inference,
                     const analysis::FunctionRanges &ranges)
        : _module(module), _fn(fn), _inference(inference),
          _classes(inference.byFn.at(fn.name)), _ranges(ranges),
          _cfg(fn), _du(fn), _live(_cfg, _du)
    {
    }

    BcFunction run();

  private:
    Cls clsOf(const std::string &temp) const
    {
        auto it = _classes.temps.find(temp);
        if (it == _classes.temps.end())
            bail("uses undefined temp %" + temp);
        if (it->second == Cls::Conflict)
            bail("temp %" + temp + " mixes integer and float classes");
        if (it->second == Cls::Unknown)
            bail("temp %" + temp + " has no classable definition");
        return it->second;
    }

    std::uint16_t vregOf(const std::string &temp)
    {
        auto it = _vregOf.find(temp);
        if (it != _vregOf.end())
            return it->second;
        if (_du.defs(temp).empty())
            bail("uses undefined temp %" + temp);
        return _vregOf.emplace(temp, newVreg()).first->second;
    }

    std::uint16_t newVreg()
    {
        if (_nextVreg == kNoReg)
            bail("virtual register file overflow");
        return _nextVreg++;
    }

    std::uint16_t scratchVreg()
    {
        if (_scratch == kNoReg)
            _scratch = newVreg();
        return _scratch;
    }

    /** Constant-pool register, value pre-converted to its class. */
    std::uint16_t constVreg(bool floating, std::int64_t iv, double fv)
    {
        std::uint64_t bits = 0;
        if (floating)
            std::memcpy(&bits, &fv, sizeof(bits));
        else
            bits = static_cast<std::uint64_t>(iv);
        auto key = std::make_pair(floating, bits);
        auto it = _constVreg.find(key);
        if (it != _constVreg.end())
            return it->second;
        const std::uint16_t reg = newVreg();
        BcInst load;
        if (floating) {
            load.op = BcOp::LdcF;
            load.imm = static_cast<std::int32_t>(_fpool.size());
            _fpool.push_back(fv);
        } else {
            load.op = BcOp::LdcI;
            load.imm = static_cast<std::int32_t>(_ipool.size());
            _ipool.push_back(iv);
        }
        load.a = reg;
        _preamble.push_back(load);
        _constVreg.emplace(key, reg);
        return reg;
    }

    /**
     * Register holding `op` as seen through `wanted`'s class — the
     * static image of the interpreter's per-use asInt()/asFloat().
     * Constants fold; temps of the other class get a conversion
     * emitted into `out` right before the consumer.
     */
    std::uint16_t materialize(const Operand &op, Cls wanted,
                              std::vector<BcInst> &out)
    {
        const bool wantFloat = isFloatCls(wanted);
        switch (op.kind) {
          case Operand::Kind::ConstInt:
            return wantFloat
                       ? constVreg(true, 0,
                                   static_cast<double>(op.intValue))
                       : constVreg(false, op.intValue, 0.0);
          case Operand::Kind::ConstFloat:
            return wantFloat
                       ? constVreg(true, 0, op.floatValue)
                       : constVreg(false, saturateToInt(op.floatValue),
                                   0.0);
          case Operand::Kind::Temp: {
            const Cls have = clsOf(op.name);
            const std::uint16_t src = vregOf(op.name);
            if (isFloatCls(have) == wantFloat)
                return src;
            // A fresh vreg per conversion: one instruction may need
            // both operands converted, and sharing the parallel-copy
            // scratch would clobber the first before its use.
            BcInst convert;
            convert.op = wantFloat ? BcOp::I2F : BcOp::F2I;
            convert.a = newVreg();
            convert.b = src;
            out.push_back(convert);
            return convert.a;
          }
        }
        bail("bad operand");
    }

    /** Region the edge pred->succ jumps to (stub when succ has phis). */
    int edgeRegion(int pred, int succ)
    {
        const BasicBlock &bb = _cfg.block(succ);
        const bool has_phis = !bb.instructions.empty() &&
                              bb.instructions.front().op == Opcode::Phi;
        if (!has_phis)
            return _bodyRegion[std::size_t(succ)];
        auto key = std::make_pair(pred, succ);
        auto it = _stubRegion.find(key);
        if (it != _stubRegion.end())
            return it->second;
        bail("internal: stub for unprepared edge");
    }

    /** Range of an operand under this function's analysis results. */
    analysis::ValueRange rangeOf(const Operand &op) const
    {
        return analysis::rangeproof::rangeOfOperand(op, _ranges);
    }

    /**
     * Successors a block can still reach once proven-constant branches
     * are folded: the taken edge only for a folded `br`, every CFG
     * successor otherwise.
     */
    std::vector<int> foldedSuccessors(int block) const
    {
        const auto it = _foldedSucc.find(block);
        if (it != _foldedSucc.end())
            return {it->second};
        return _cfg.successors(block);
    }

    void foldBranches();
    void buildStub(int pred, int succ);
    void lowerBlock(int block);
    void fuseRegion(Region &region,
                    const std::vector<std::uint32_t> &reads);
    void countAccesses(std::vector<std::uint32_t> &reads) const;
    void allocateRegisters(BcFunction &out,
                           const std::vector<BcInst> &code,
                           const std::vector<std::size_t> &regionStart);

    const Module &_module;
    const Function &_fn;
    const Inference &_inference;
    const FnClasses &_classes;
    const analysis::FunctionRanges &_ranges;
    analysis::Cfg _cfg;
    analysis::DefUse _du;
    analysis::Liveness _live;

    std::map<std::string, std::uint16_t> _vregOf;
    std::uint16_t _nextVreg = 0;
    std::uint16_t _scratch = kNoReg;
    std::map<std::pair<bool, std::uint64_t>, std::uint16_t> _constVreg;
    std::vector<BcInst> _preamble;
    std::vector<std::int64_t> _ipool;
    std::vector<double> _fpool;
    std::vector<BcCallSite> _calls;

    std::vector<Region> _regions;
    std::vector<int> _bodyRegion;              ///< block -> region id.
    std::map<std::pair<int, int>, int> _stubRegion;
    std::map<int, std::vector<std::uint16_t>> _stubPhiDsts;
    std::map<int, int> _foldedSucc; ///< folded br: block -> taken succ.
    std::vector<bool> _foldedReach; ///< reachable after folding.
    std::size_t _fused = 0;
    std::size_t _folded = 0;
    std::vector<std::uint16_t> _slotOf;
    std::uint16_t _numSlots = 0;
};

/** Parallel-copy sequentialization; cycles break through `scratch`. */
void
sequentializeCopies(std::vector<std::pair<std::uint16_t, std::uint16_t>>
                        copies, // {dst, src}
                    std::uint16_t scratch, std::vector<BcInst> &out)
{
    auto emitMov = [&](std::uint16_t dst, std::uint16_t src) {
        BcInst mov;
        mov.op = BcOp::Mov;
        mov.a = dst;
        mov.b = src;
        out.push_back(mov);
    };
    copies.erase(std::remove_if(copies.begin(), copies.end(),
                                [](const auto &c) {
                                    return c.first == c.second;
                                }),
                 copies.end());
    while (!copies.empty()) {
        bool progress = false;
        for (std::size_t i = 0; i < copies.size(); ++i) {
            const auto [dst, src] = copies[i];
            bool blocked = false;
            for (std::size_t j = 0; j < copies.size(); ++j)
                if (j != i && copies[j].second == dst)
                    blocked = true;
            if (blocked)
                continue;
            emitMov(dst, src);
            copies.erase(copies.begin() + std::ptrdiff_t(i));
            progress = true;
            break;
        }
        if (progress)
            continue;
        // Every remaining destination is still read: a cycle. Park one
        // source in the scratch register and retarget its readers.
        const std::uint16_t parked = copies.front().second;
        emitMov(scratch, parked);
        for (auto &copy : copies)
            if (copy.second == parked)
                copy.second = scratch;
    }
}

/**
 * Fold `br` terminators whose condition the range analysis proved
 * constant, then recompute reachability over the folded edges. The
 * proof covers every value the walker can ever observe for the
 * condition, so the walker takes the same edge on every run and the
 * untaken side (plus anything only it reached) need not be lowered.
 * Block bodies before the branch still lower unchanged — a panicking
 * `div` on the path to a folded branch must still panic.
 */
void
FunctionLowering::foldBranches()
{
    for (const int block : _cfg.reversePostorder()) {
        const BasicBlock &bb = _cfg.block(block);
        for (const auto &inst : bb.instructions) {
            if (inst.op == Opcode::Phi)
                continue;
            if (!isTerminator(inst.op))
                continue;
            if (inst.op == Opcode::Br) {
                const auto truth = analysis::rangeproof::provenTruth(
                    rangeOf(inst.operands[0]));
                if (truth.has_value()) {
                    const int taken =
                        _cfg.indexOf(inst.labels[*truth ? 0 : 1]);
                    if (taken >= 0)
                        _foldedSucc[block] = taken;
                }
            }
            break; // Only the first terminator executes.
        }
    }

    // Folded reachability: a BFS from entry over folded successors.
    _foldedReach.assign(_cfg.blockCount(), false);
    std::vector<int> work{_cfg.entry()};
    _foldedReach[std::size_t(_cfg.entry())] = true;
    while (!work.empty()) {
        const int block = work.back();
        work.pop_back();
        for (const int succ : foldedSuccessors(block)) {
            if (!_foldedReach[std::size_t(succ)]) {
                _foldedReach[std::size_t(succ)] = true;
                work.push_back(succ);
            }
        }
    }
}

void
FunctionLowering::buildStub(int pred, int succ)
{
    const BasicBlock &bb = _cfg.block(succ);
    const std::string &pred_label = _cfg.block(pred).label;
    Region stub;

    // Gather the parallel copies this edge performs. A duplicated phi
    // result keeps the last incoming, like the interpreter's
    // phi_values map.
    std::map<std::uint16_t, std::uint16_t> by_dst_order_free;
    std::vector<std::pair<std::uint16_t, std::uint16_t>> copies;
    for (const auto &inst : bb.instructions) {
        if (inst.op != Opcode::Phi)
            break;
        const Cls cls = clsOf(inst.result);
        bool found = false;
        std::uint16_t src = 0;
        for (std::size_t i = 0; i < inst.labels.size(); ++i) {
            if (inst.labels[i] != pred_label)
                continue;
            // First matching incoming wins, like the interpreter.
            src = materialize(inst.operands[i], cls, stub.code);
            found = true;
            break;
        }
        if (!found)
            bail("phi in '" + bb.label + "' misses incoming for '" +
                 pred_label + "'");
        const std::uint16_t dst = vregOf(inst.result);
        by_dst_order_free[dst] = src;
    }
    copies.assign(by_dst_order_free.begin(), by_dst_order_free.end());
    auto &dsts = _stubPhiDsts[_stubRegion.at({pred, succ})];
    for (const auto &[dst, src] : copies) {
        (void)src;
        dsts.push_back(dst);
    }
    sequentializeCopies(std::move(copies), scratchVreg(), stub.code);

    BcInst jmp;
    jmp.op = BcOp::Jmp;
    jmp.imm = _bodyRegion[std::size_t(succ)];
    stub.code.push_back(jmp);
    _regions[std::size_t(_stubRegion.at({pred, succ}))] =
        std::move(stub);
}

void
FunctionLowering::lowerBlock(int block)
{
    const BasicBlock &bb = _cfg.block(block);
    Region region;
    region.block = block;
    region.fusable = true;
    auto &code = region.code;

    bool seen_non_phi = false;
    for (const auto &inst : bb.instructions) {
        if (inst.op != Opcode::Phi)
            seen_non_phi = true;
        switch (inst.op) {
          case Opcode::Phi:
            // Lowered on the incoming edges' stubs. Entry-block phis
            // always panic in the AST walker (there is no incoming
            // edge on the first entry), and the walker ignores phis
            // below the leading group; neither shape compiles.
            if (block == 0)
                bail("phi in entry block");
            if (seen_non_phi)
                bail("phi below the leading phi group");
            continue;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::Div: {
            const bool floating = isFloating(inst.type);
            const bool f32 = inst.type == Type::F32;
            const Cls want = floating ? Cls::F64 : Cls::I64;
            BcInst out;
            out.b = materialize(inst.operands[0], want, code);
            out.c = materialize(inst.operands[1], want, code);
            out.a = vregOf(inst.result);
            switch (inst.op) {
              case Opcode::Add:
                out.op = f32 ? BcOp::AddF32
                             : floating ? BcOp::AddF : BcOp::AddI;
                break;
              case Opcode::Sub:
                out.op = f32 ? BcOp::SubF32
                             : floating ? BcOp::SubF : BcOp::SubI;
                break;
              case Opcode::Mul:
                out.op = f32 ? BcOp::MulF32
                             : floating ? BcOp::MulF : BcOp::MulI;
                break;
              default:
                out.op = f32 ? BcOp::DivF32
                             : floating ? BcOp::DivF : BcOp::DivI;
                // Raw machine division when the ranges prove neither
                // the zero-divisor panic nor the MIN/-1 wrap guard
                // can trigger.
                if (out.op == BcOp::DivI &&
                    analysis::rangeproof::divNeedsNoGuards(
                        rangeOf(inst.operands[0]),
                        rangeOf(inst.operands[1])))
                    out.op = BcOp::DivINc;
                break;
            }
            code.push_back(out);
            break;
          }
          case Opcode::CmpEq:
          case Opcode::CmpLt:
          case Opcode::CmpLe: {
            const bool floating = isFloating(inst.type);
            const Cls want = floating ? Cls::F64 : Cls::I64;
            BcInst out;
            out.b = materialize(inst.operands[0], want, code);
            out.c = materialize(inst.operands[1], want, code);
            out.a = vregOf(inst.result);
            out.op = inst.op == Opcode::CmpEq
                         ? (floating ? BcOp::EqF : BcOp::EqI)
                     : inst.op == Opcode::CmpLt
                         ? (floating ? BcOp::LtF : BcOp::LtI)
                         : (floating ? BcOp::LeF : BcOp::LeI);
            code.push_back(out);
            break;
          }
          case Opcode::Select: {
            const Cls cls = clsOf(inst.result);
            BcInst out;
            out.op = BcOp::Sel;
            out.b = materialize(inst.operands[0], Cls::I64, code);
            out.c = materialize(inst.operands[1], cls, code);
            out.imm = materialize(inst.operands[2], cls, code);
            out.a = vregOf(inst.result);
            code.push_back(out);
            break;
          }
          case Opcode::Cast: {
            const Operand &src = inst.operands[0];
            BcInst out;
            out.a = vregOf(inst.result);
            if (src.kind != Operand::Kind::Temp) {
                // Constant casts fold completely at compile time.
                double fv = src.kind == Operand::Kind::ConstFloat
                                ? src.floatValue
                                : double(src.intValue);
                std::int64_t iv = src.kind == Operand::Kind::ConstInt
                                      ? src.intValue
                                      : saturateToInt(src.floatValue);
                out.op = BcOp::Mov;
                if (inst.type == Type::F32)
                    out.b = constVreg(true, 0, double(float(fv)));
                else if (isFloating(inst.type))
                    out.b = constVreg(true, 0, fv);
                else
                    out.b = constVreg(false, iv, 0.0);
            } else {
                const bool src_float = isFloatCls(clsOf(src.name));
                out.b = vregOf(src.name);
                if (inst.type == Type::F32)
                    out.op = src_float ? BcOp::F2F32 : BcOp::I2F32;
                else if (isFloating(inst.type))
                    out.op = src_float ? BcOp::Mov : BcOp::I2F;
                else if (src_float)
                    // Raw truncation when the range proves every
                    // admitted double (no NaN) converts in-bounds.
                    out.op = analysis::rangeproof::castNeverSaturates(
                                 rangeOf(src))
                                 ? BcOp::F2INc
                                 : BcOp::F2I;
                else
                    out.op = BcOp::Mov;
            }
            code.push_back(out);
            break;
          }
          case Opcode::Call: {
            BcCallSite site;
            site.callee = inst.callee;
            const Function *callee = _module.findFunction(inst.callee);
            if (callee &&
                callee->params.size() != inst.operands.size())
                bail("call @" + inst.callee + " arity mismatch");
            for (std::size_t i = 0; i < inst.operands.size(); ++i) {
                const Operand &arg = inst.operands[i];
                const Cls have =
                    arg.kind == Operand::Kind::Temp
                        ? clsOf(arg.name)
                        : (arg.kind == Operand::Kind::ConstFloat
                               ? Cls::F64
                               : Cls::I64);
                Cls want = have;
                if (callee) {
                    // A compiled callee reads its frame through its
                    // declared parameter classes, while the AST walker
                    // re-types the raw value at every use. A temp of
                    // the other class would lose that dynamic view, so
                    // the caller bails; a constant is pre-converted
                    // when (and only when) the value round-trips
                    // exactly, which makes entry-conversion and
                    // per-use conversion indistinguishable.
                    want = clsOfType(callee->params[i].type);
                    if (isFloatCls(have) != isFloatCls(want)) {
                        if (arg.kind == Operand::Kind::Temp)
                            bail("call @" + inst.callee + " arg " +
                                 std::to_string(i) +
                                 " class disagrees with parameter");
                        if (arg.kind == Operand::Kind::ConstInt) {
                            const double as_float =
                                double(arg.intValue);
                            if (saturateToInt(as_float) !=
                                arg.intValue)
                                bail("call @" + inst.callee + " arg " +
                                     std::to_string(i) +
                                     " constant not exactly "
                                     "convertible");
                        } else {
                            const std::int64_t as_int =
                                saturateToInt(arg.floatValue);
                            if (double(as_int) != arg.floatValue)
                                bail("call @" + inst.callee + " arg " +
                                     std::to_string(i) +
                                     " constant not exactly "
                                     "convertible");
                        }
                    }
                }
                const std::uint16_t reg = materialize(arg, want, code);
                site.args.emplace_back(reg, typeTag(want));
            }
            site.retType =
                typeTag(_inference.calleeRetCls(inst.callee));
            BcInst out;
            out.op = BcOp::Call;
            out.a = inst.result.empty() ? kNoReg : vregOf(inst.result);
            out.imm = static_cast<std::int32_t>(_calls.size());
            _calls.push_back(std::move(site));
            code.push_back(out);
            break;
          }
          case Opcode::Br: {
            const auto folded = _foldedSucc.find(block);
            if (folded != _foldedSucc.end()) {
                // Proven-constant condition: the walker takes this
                // edge on every run. The condition itself need not be
                // materialized (operand evaluation is pure).
                BcInst jmp;
                jmp.op = BcOp::Jmp;
                jmp.imm = edgeRegion(block, folded->second);
                code.push_back(jmp);
                ++_folded;
                break;
            }
            BcInst brnz;
            brnz.op = BcOp::Brnz;
            brnz.b = materialize(inst.operands[0], Cls::I64, code);
            const int then_block = _cfg.indexOf(inst.labels[0]);
            const int else_block = _cfg.indexOf(inst.labels[1]);
            if (then_block < 0 || else_block < 0)
                bail("branch to missing block");
            brnz.imm = edgeRegion(block, then_block);
            code.push_back(brnz);
            BcInst jmp;
            jmp.op = BcOp::Jmp;
            jmp.imm = edgeRegion(block, else_block);
            code.push_back(jmp);
            break;
          }
          case Opcode::Jmp: {
            const int succ = _cfg.indexOf(inst.labels[0]);
            if (succ < 0)
                bail("jump to missing block");
            BcInst jmp;
            jmp.op = BcOp::Jmp;
            jmp.imm = edgeRegion(block, succ);
            code.push_back(jmp);
            break;
          }
          case Opcode::Ret: {
            BcInst out;
            if (inst.operands.empty()) {
                out.op = BcOp::RetV;
            } else {
                // The interpreter returns the operand's value raw, no
                // conversion: materialize in the operand's own class.
                const Operand &val = inst.operands[0];
                const Cls own =
                    val.kind == Operand::Kind::Temp ? clsOf(val.name)
                    : val.kind == Operand::Kind::ConstFloat ? Cls::F64
                                                            : Cls::I64;
                out.op = BcOp::Ret;
                out.a = materialize(val, own, code);
            }
            code.push_back(out);
            break;
          }
        }
        // The walker leaves a block at its first terminator; anything
        // after it is dead and must not constrain lowering.
        if (inst.op == Opcode::Br || inst.op == Opcode::Jmp ||
            inst.op == Opcode::Ret)
            break;
    }
    _regions[std::size_t(_bodyRegion[std::size_t(block)])] =
        std::move(region);
}

void
FunctionLowering::countAccesses(std::vector<std::uint32_t> &reads) const
{
    auto read = [&](std::uint16_t reg) {
        if (reg != kNoReg)
            ++reads[reg];
    };
    for (const auto &region : _regions) {
        for (const auto &inst : region.code) {
            switch (opcodeFormat(inst.op)) {
              case BcFormat::TwoReg:
                read(inst.b);
                break;
              case BcFormat::ThreeReg:
                read(inst.b);
                read(inst.c);
                break;
              case BcFormat::FourReg:
                read(inst.b);
                read(inst.c);
                read(static_cast<std::uint16_t>(inst.imm));
                break;
              case BcFormat::Branch:
                read(inst.b);
                break;
              case BcFormat::CallFmt:
                for (const auto &arg :
                     _calls[std::size_t(inst.imm)].args)
                    read(arg.first);
                break;
              case BcFormat::RetReg:
                read(inst.a);
                break;
              default:
                break;
            }
        }
    }
}

void
FunctionLowering::fuseRegion(Region &region,
                             const std::vector<std::uint32_t> &reads)
{
    struct Pattern
    {
        BcOp first, second, fused;
    };
    // add/mul are exactly commutative in both classes (for floats the
    // result value is identical either way), so the dying operand may
    // sit on either side of the second instruction. F32 ops are
    // excluded: their intermediate float-rounding must stay.
    static const Pattern patterns[] = {
        {BcOp::MulI, BcOp::AddI, BcOp::MulAddI},
        {BcOp::MulF, BcOp::AddF, BcOp::MulAddF},
        {BcOp::AddI, BcOp::AddI, BcOp::AddAddI},
        {BcOp::AddF, BcOp::AddF, BcOp::AddAddF},
        {BcOp::AddI, BcOp::MulI, BcOp::AddMulI},
        {BcOp::AddF, BcOp::MulF, BcOp::AddMulF},
    };
    auto &code = region.code;
    for (std::size_t i = 0; i + 1 < code.size();) {
        const BcInst first = code[i];
        const BcInst second = code[i + 1];
        BcOp fused = BcOp::RetV;
        bool matched = false;
        for (const auto &pattern : patterns) {
            if (pattern.first == first.op &&
                pattern.second == second.op) {
                fused = pattern.fused;
                matched = true;
                break;
            }
        }
        // The intermediate must be read exactly once, by exactly one
        // operand of the very next instruction.
        if (!matched || reads[first.a] != 1 ||
            (second.b == first.a) == (second.c == first.a)) {
            ++i;
            continue;
        }
        BcInst repl;
        repl.op = fused;
        repl.a = second.a;
        repl.b = first.b;
        repl.c = first.c;
        repl.imm = second.b == first.a ? second.c : second.b;
        code[i] = repl;
        code.erase(code.begin() + std::ptrdiff_t(i) + 1);
        ++_fused;
        ++i;
    }
}

void
FunctionLowering::allocateRegisters(
    BcFunction &out, const std::vector<BcInst> &code,
    const std::vector<std::size_t> &regionStart)
{
    (void)out;
    constexpr int kNone = -1;
    std::vector<int> lo(_nextVreg, kNone), hi(_nextVreg, kNone);
    auto touch = [&](std::uint16_t reg, int pos) {
        if (reg == kNoReg)
            return;
        if (lo[reg] == kNone || pos < lo[reg])
            lo[reg] = pos;
        if (pos > hi[reg])
            hi[reg] = pos;
    };
    for (std::size_t p = 0; p < code.size(); ++p) {
        const BcInst &inst = code[p];
        const int pos = int(p);
        switch (opcodeFormat(inst.op)) {
          case BcFormat::RegPoolI:
          case BcFormat::RegPoolF:
            touch(inst.a, pos);
            break;
          case BcFormat::TwoReg:
            touch(inst.a, pos);
            touch(inst.b, pos);
            break;
          case BcFormat::ThreeReg:
            touch(inst.a, pos);
            touch(inst.b, pos);
            touch(inst.c, pos);
            break;
          case BcFormat::FourReg:
            touch(inst.a, pos);
            touch(inst.b, pos);
            touch(inst.c, pos);
            touch(static_cast<std::uint16_t>(inst.imm), pos);
            break;
          case BcFormat::Branch:
            touch(inst.b, pos);
            break;
          case BcFormat::CallFmt:
            touch(inst.a, pos);
            for (const auto &arg : _calls[std::size_t(inst.imm)].args)
                touch(arg.first, pos);
            break;
          case BcFormat::RetReg:
            touch(inst.a, pos);
            break;
          default:
            break;
        }
    }

    const int code_end = code.empty() ? 0 : int(code.size()) - 1;
    // Parameters are written by the caller before entry.
    for (const auto &param : _fn.params) {
        auto it = _vregOf.find(param.name);
        if (it != _vregOf.end() && lo[it->second] != kNone)
            lo[it->second] = 0;
    }
    // Constants load once in the preamble and must survive every
    // back edge: immortal.
    for (const auto &[key, reg] : _constVreg) {
        (void)key;
        if (lo[reg] != kNone) {
            lo[reg] = 0;
            hi[reg] = code_end;
        }
    }
    // Widen IR temps with the block-level liveness facts so a value
    // that crosses a back edge keeps its slot through the whole loop:
    // live-in stretches the interval to the block's first position,
    // live-out past the block's last position and past the phi-copy
    // stubs of its out-edges (which could otherwise clobber it).
    for (std::size_t r = 0; r < _regions.size(); ++r) {
        const Region &region = _regions[r];
        if (region.block < 0)
            continue;
        const int bs = int(regionStart[r]);
        int extent = int(regionStart[r] + region.code.size()) - 1;
        for (const auto &[edge, id] : _stubRegion) {
            if (edge.first != region.block)
                continue;
            extent = std::max(
                extent, int(regionStart[std::size_t(id)] +
                            _regions[std::size_t(id)].code.size()) -
                            1);
        }
        for (const auto &[name, reg] : _vregOf) {
            if (lo[reg] == kNone)
                continue;
            if (_live.liveIn(region.block, name))
                lo[reg] = std::min(lo[reg], bs);
            if (_live.liveOut(region.block, name))
                hi[reg] = std::max(hi[reg], extent);
        }
    }

    // A phi destination written on a back edge wraps around: it is
    // live from the loop body it feeds back into through the end of
    // the copy stub, which a linear hull cannot see (the IR-level
    // liveness above misses it too — in IR terms a phi result is
    // defined at the top of its block, never live-in). Without this
    // widening the parallel-copy scratch can be assigned the same
    // slot and clobber the value mid-stub.
    for (const auto &[edge, id] : _stubRegion) {
        if (testonly::disableBackEdgeWidening)
            break; // Test-only: reopen the historical hole (BCV03).
        const std::size_t stub = std::size_t(id);
        const int succ_region = _bodyRegion[std::size_t(edge.second)];
        const int succ_start = int(regionStart[std::size_t(succ_region)]);
        const int stub_end = int(regionStart[stub] +
                                 _regions[stub].code.size()) - 1;
        if (int(regionStart[stub]) < succ_start)
            continue; // Forward edge: the hull already covers it.
        auto it = _stubPhiDsts.find(id);
        if (it == _stubPhiDsts.end())
            continue;
        for (const std::uint16_t reg : it->second) {
            if (lo[reg] == kNone)
                continue;
            lo[reg] = std::min(lo[reg], succ_start);
            hi[reg] = std::max(hi[reg], stub_end);
        }
    }

    // Interval assignment: smallest free slot, deterministic order.
    struct Interval
    {
        std::uint16_t vreg;
        int lo, hi;
    };
    std::vector<Interval> intervals;
    for (std::uint16_t reg = 0; reg < _nextVreg; ++reg)
        if (lo[reg] != kNone)
            intervals.push_back({reg, lo[reg], hi[reg]});
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  if (a.lo != b.lo)
                      return a.lo < b.lo;
                  if (a.hi != b.hi)
                      return a.hi < b.hi;
                  return a.vreg < b.vreg;
              });
    std::vector<std::pair<int, std::uint16_t>> active; // {hi, slot}
    std::set<std::uint16_t> free_slots;
    _slotOf.assign(_nextVreg, kNoReg);
    _numSlots = 0;
    for (const auto &interval : intervals) {
        for (auto it = active.begin(); it != active.end();) {
            if (it->first < interval.lo) {
                free_slots.insert(it->second);
                it = active.erase(it);
            } else {
                ++it;
            }
        }
        std::uint16_t slot;
        if (!free_slots.empty()) {
            slot = *free_slots.begin();
            free_slots.erase(free_slots.begin());
        } else {
            slot = _numSlots++;
        }
        _slotOf[interval.vreg] = slot;
        active.emplace_back(interval.hi, slot);
    }
}

BcFunction
FunctionLowering::run()
{
    BcFunction out;
    out.name = _fn.name;
    out.sourceInstructions = _fn.instructionCount();
    if (_fn.blocks.empty())
        bail("function has no blocks");
    for (const auto &bb : _fn.blocks)
        if (_cfg.reachable(_cfg.indexOf(bb.label)) && !bb.terminator())
            bail("block '" + bb.label + "' has no terminator");

    if (!_classes.hasValueRet) {
        out.retType = Type::Void;
    } else {
        Cls effective = _classes.ret;
        if (_classes.hasVoidRet)
            effective = merge(effective, Cls::I64);
        if (effective == Cls::Conflict)
            bail("mixed integer/float return classes");
        if (effective == Cls::Unknown)
            bail("return value has no classable definition");
        out.retType = typeTag(effective);
    }

    // Assign parameter vregs first, in declaration order.
    std::vector<std::uint16_t> param_vregs;
    for (const auto &param : _fn.params) {
        param_vregs.push_back(vregOf(param.name));
        out.paramClasses.push_back(isFloatCls(clsOfType(param.type))
                                       ? RegClass::Float
                                       : RegClass::Int);
    }

    // Proven-constant branches fold to unconditional jumps; blocks
    // only the untaken edges reached are not lowered at all.
    foldBranches();

    // Region scaffolding. Layout order = region order: the preamble
    // falls through into the entry block's body; each block's
    // phi-copy stubs sit right after its body.
    _bodyRegion.assign(_cfg.blockCount(), -1);
    _regions.emplace_back(); // Region 0: constant-load preamble.
    for (int block : _cfg.reversePostorder()) {
        if (!_foldedReach[std::size_t(block)])
            continue;
        _bodyRegion[std::size_t(block)] = int(_regions.size());
        _regions.emplace_back();
        for (int succ : foldedSuccessors(block)) {
            const BasicBlock &sb = _cfg.block(succ);
            const bool has_phis =
                !sb.instructions.empty() &&
                sb.instructions.front().op == Opcode::Phi;
            if (!has_phis || _stubRegion.count({block, succ}))
                continue;
            _stubRegion[{block, succ}] = int(_regions.size());
            _regions.emplace_back();
        }
    }

    for (int block : _cfg.reversePostorder())
        if (_foldedReach[std::size_t(block)])
            lowerBlock(block);
    for (const auto &[edge, id] : _stubRegion) {
        (void)id;
        buildStub(edge.first, edge.second);
    }
    _regions[0].code = std::move(_preamble);

    // Superinstruction fusion inside block bodies.
    std::vector<std::uint32_t> reads(_nextVreg, 0);
    countAccesses(reads);
    for (auto &region : _regions)
        if (region.fusable)
            fuseRegion(region, reads);

    // Layout and branch-target resolution.
    std::vector<BcInst> code;
    std::vector<std::size_t> region_start(_regions.size(), 0);
    for (std::size_t r = 0; r < _regions.size(); ++r) {
        region_start[r] = code.size();
        code.insert(code.end(), _regions[r].code.begin(),
                    _regions[r].code.end());
    }
    for (auto &inst : code) {
        if (inst.op == BcOp::Brnz || inst.op == BcOp::Jmp)
            inst.imm = static_cast<std::int32_t>(
                region_start[std::size_t(inst.imm)]);
    }

    allocateRegisters(out, code, region_start);

    // Post-regalloc verifier metadata: the code in vreg numbering
    // (targets already final), the slot map, and the call-site
    // argument vregs — captured before substitution destroys them.
    out.verifyInfo.vcode = code;
    out.verifyInfo.slotOf = _slotOf;
    out.verifyInfo.paramVregs = param_vregs;
    for (const auto &site : _calls) {
        std::vector<std::uint16_t> arg_vregs;
        for (const auto &arg : site.args)
            arg_vregs.push_back(arg.first);
        out.verifyInfo.callArgVregs.push_back(std::move(arg_vregs));
    }

    auto slot = [&](std::uint16_t vreg) {
        return vreg == kNoReg ? kNoReg : _slotOf[vreg];
    };
    for (auto &inst : code) {
        switch (opcodeFormat(inst.op)) {
          case BcFormat::RegPoolI:
          case BcFormat::RegPoolF:
            inst.a = slot(inst.a);
            break;
          case BcFormat::TwoReg:
            inst.a = slot(inst.a);
            inst.b = slot(inst.b);
            break;
          case BcFormat::ThreeReg:
            inst.a = slot(inst.a);
            inst.b = slot(inst.b);
            inst.c = slot(inst.c);
            break;
          case BcFormat::FourReg:
            inst.a = slot(inst.a);
            inst.b = slot(inst.b);
            inst.c = slot(inst.c);
            inst.imm =
                slot(static_cast<std::uint16_t>(inst.imm));
            break;
          case BcFormat::Branch:
            inst.b = slot(inst.b);
            break;
          case BcFormat::CallFmt:
            inst.a = slot(inst.a);
            break;
          case BcFormat::RetReg:
            inst.a = slot(inst.a);
            break;
          default:
            break;
        }
    }
    for (auto &site : _calls)
        for (auto &arg : site.args)
            arg.first = slot(arg.first);

    out.numRegs = _numSlots;
    for (std::uint16_t vreg : param_vregs)
        out.paramRegs.push_back(slot(vreg));
    out.code = std::move(code);
    out.ipool = std::move(_ipool);
    out.fpool = std::move(_fpool);
    out.calls = std::move(_calls);
    out.fusedCount = _fused;
    out.foldedBranches = _folded;
    out.batchable = !out.code.empty() &&
                    out.code.back().op == BcOp::Ret;
    for (const auto &inst : out.code) {
        if (inst.op == BcOp::Brnz || inst.op == BcOp::Jmp ||
            inst.op == BcOp::Call)
            out.batchable = false;
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------

const char *
opcodeMnemonic(BcOp op)
{
    return kMnemonics[std::size_t(op)];
}

BcFormat
opcodeFormat(BcOp op)
{
    return kFormats[std::size_t(op)];
}

bool
isSuperinstruction(BcOp op)
{
    return std::size_t(op) >= std::size_t(BcOp::MulAddI);
}

std::size_t
opcodeCount()
{
    return kOpcodeCount;
}

const BcFunction *
BcModule::find(const std::string &name) const
{
    auto it = index.find(name);
    return it == index.end() ? nullptr
                             : &functions[std::size_t(it->second)];
}

std::size_t
BcModule::compiledCount() const
{
    std::size_t count = 0;
    for (const auto &fn : functions)
        count += fn.compiled ? 1 : 0;
    return count;
}

BcModule
compileModule(const Module &module,
              const std::map<std::string, Type> &external_types)
{
    Inference inference{module, external_types, {}};
    for (const auto &fn : module.functions)
        inference.byFn[fn.name];

    std::vector<std::optional<analysis::Cfg>> cfgs(
        module.functions.size());
    for (std::size_t i = 0; i < module.functions.size(); ++i)
        if (!module.functions[i].blocks.empty())
            cfgs[i].emplace(module.functions[i]);

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < module.functions.size(); ++i)
            if (cfgs[i])
                changed |= inference.pass(module.functions[i], *cfgs[i]);
    }

    // Value ranges feed the guard-elision rewrites (f2i.nc, div.i.nc)
    // and branch folding. Builtin ranges are NOT trusted here: the
    // execution tier lets hosts rebind externals to arbitrary
    // functions, which would void them.
    analysis::AnalysisManager range_manager(module);
    const analysis::RangeAnalysis ranges(range_manager,
                                         /*trust_builtins=*/false);

    BcModule out;
    for (std::size_t i = 0; i < module.functions.size(); ++i) {
        const Function &fn = module.functions[i];
        BcFunction bcf;
        if (fn.blocks.empty()) {
            bcf.name = fn.name;
            bcf.fallbackReason = "function has no blocks";
        } else {
            try {
                FunctionLowering lowering(module, fn, inference,
                                          ranges.functionRanges(fn.name));
                bcf = lowering.run();
                bcf.compiled = true;
            } catch (const BailOut &bailed) {
                bcf = BcFunction{};
                bcf.name = fn.name;
                bcf.fallbackReason = bailed.reason;
            }
        }
        out.index.emplace(fn.name, int(i));
        out.functions.push_back(std::move(bcf));
    }
    for (auto &bcf : out.functions) {
        for (auto &site : bcf.calls) {
            if (module.findFunction(site.callee))
                site.calleeIndex = out.index.at(site.callee);
        }
    }

    // Post-regalloc verification (STATS_VERIFY_BYTECODE, on by
    // default): a diagnostic here is a compiler bug, never a property
    // of the input module, so it is fatal rather than reported.
    if (autoVerifyEnabled()) {
        for (const auto &bcf : out.functions) {
            if (!bcf.compiled)
                continue;
            const auto diags = verifyFunction(out, bcf);
            if (!diags.empty())
                support::panic("bytecode verifier: ", diags.size(),
                               " diagnostic(s) on @", bcf.name, ": [",
                               diags.front().rule, "] ",
                               diags.front().message);
        }
    }
    return out;
}

} // namespace stats::ir::bc
