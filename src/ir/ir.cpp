#include "ir/ir.hpp"

#include <sstream>

#include "support/log.hpp"

namespace stats::ir {

const char *
typeName(Type type)
{
    switch (type) {
      case Type::Void: return "void";
      case Type::I64: return "i64";
      case Type::F64: return "f64";
      case Type::F32: return "f32";
    }
    return "?";
}

bool
isFloating(Type type)
{
    return type == Type::F64 || type == Type::F32;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLe: return "cmple";
      case Opcode::Select: return "select";
      case Opcode::Cast: return "cast";
      case Opcode::Phi: return "phi";
      case Opcode::Call: return "call";
      case Opcode::Br: return "br";
      case Opcode::Jmp: return "jmp";
      case Opcode::Ret: return "ret";
    }
    return "?";
}

bool
isTerminator(Opcode op)
{
    return op == Opcode::Br || op == Opcode::Jmp || op == Opcode::Ret;
}

Operand
Operand::temp(std::string name)
{
    Operand o;
    o.kind = Kind::Temp;
    o.name = std::move(name);
    return o;
}

Operand
Operand::constInt(std::int64_t value)
{
    Operand o;
    o.kind = Kind::ConstInt;
    o.intValue = value;
    return o;
}

Operand
Operand::constFloat(double value)
{
    Operand o;
    o.kind = Kind::ConstFloat;
    o.floatValue = value;
    return o;
}

std::string
Operand::toString() const
{
    std::ostringstream out;
    switch (kind) {
      case Kind::Temp:
        out << "%" << name;
        break;
      case Kind::ConstInt:
        out << intValue;
        break;
      case Kind::ConstFloat:
        out.setf(std::ios::showpoint);
        out.precision(17);
        out << floatValue;
        break;
    }
    return out.str();
}

bool
Operand::operator==(const Operand &other) const
{
    if (kind != other.kind)
        return false;
    switch (kind) {
      case Kind::Temp: return name == other.name;
      case Kind::ConstInt: return intValue == other.intValue;
      case Kind::ConstFloat: return floatValue == other.floatValue;
    }
    return false;
}

std::string
Instruction::toString() const
{
    std::ostringstream out;
    if (!result.empty())
        out << "%" << result << " = ";
    out << opcodeName(op);
    if (type != Type::Void)
        out << " " << typeName(type);
    if (op == Opcode::Call)
        out << " @" << callee;

    bool first = true;
    if (op == Opcode::Phi) {
        for (std::size_t i = 0; i < operands.size(); ++i) {
            out << (first ? " " : ", ") << "["
                << operands[i].toString() << ", " << labels[i] << "]";
            first = false;
        }
        return out.str();
    }
    for (const auto &operand : operands) {
        out << (first ? " " : ", ") << operand.toString();
        first = false;
    }
    for (const auto &label : labels) {
        out << (first ? " " : ", ") << label;
        first = false;
    }
    return out.str();
}

const Instruction *
BasicBlock::terminator() const
{
    if (instructions.empty() || !isTerminator(instructions.back().op))
        return nullptr;
    return &instructions.back();
}

std::size_t
Function::instructionCount() const
{
    std::size_t count = 0;
    for (const auto &block : blocks)
        count += block.instructions.size();
    return count;
}

BasicBlock *
Function::findBlock(const std::string &label)
{
    for (auto &block : blocks) {
        if (block.label == label)
            return &block;
    }
    return nullptr;
}

const BasicBlock *
Function::findBlock(const std::string &label) const
{
    return const_cast<Function *>(this)->findBlock(label);
}

const char *
tradeoffKindName(TradeoffKind kind)
{
    switch (kind) {
      case TradeoffKind::Constant: return "const";
      case TradeoffKind::DataType: return "type";
      case TradeoffKind::FunctionChoice: return "fn";
    }
    return "?";
}

Function *
Module::findFunction(const std::string &fn_name)
{
    for (auto &fn : functions) {
        if (fn.name == fn_name)
            return &fn;
    }
    return nullptr;
}

const Function *
Module::findFunction(const std::string &fn_name) const
{
    return const_cast<Module *>(this)->findFunction(fn_name);
}

TradeoffMeta *
Module::findTradeoff(const std::string &meta_name)
{
    for (auto &meta : tradeoffs) {
        if (meta.name == meta_name)
            return &meta;
    }
    return nullptr;
}

const TradeoffMeta *
Module::findTradeoff(const std::string &meta_name) const
{
    return const_cast<Module *>(this)->findTradeoff(meta_name);
}

StateDepMeta *
Module::findStateDep(const std::string &meta_name)
{
    for (auto &meta : stateDeps) {
        if (meta.name == meta_name)
            return &meta;
    }
    return nullptr;
}

const StateDepMeta *
Module::findStateDep(const std::string &meta_name) const
{
    return const_cast<Module *>(this)->findStateDep(meta_name);
}

const AuxCloneMeta *
Module::findAuxClone(const std::string &clone_name) const
{
    for (const auto &meta : auxClones) {
        if (meta.clone == clone_name)
            return &meta;
    }
    return nullptr;
}

std::size_t
Module::instructionCount() const
{
    std::size_t count = 0;
    for (const auto &fn : functions)
        count += fn.instructionCount();
    return count;
}

} // namespace stats::ir
