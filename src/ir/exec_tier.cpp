#include "ir/exec_tier.hpp"

#include "support/log.hpp"

namespace stats::ir {

std::optional<ExecTier>
parseExecTier(const std::string &name)
{
    if (name == "ast")
        return ExecTier::Ast;
    if (name == "bytecode")
        return ExecTier::Bytecode;
    if (name == "auto")
        return ExecTier::Auto;
    return std::nullopt;
}

const char *
execTierName(ExecTier tier)
{
    switch (tier) {
      case ExecTier::Ast: return "ast";
      case ExecTier::Bytecode: return "bytecode";
      case ExecTier::Auto: return "auto";
    }
    return "?";
}

ExecutableModule::ExecutableModule(const Module &module, ExecTier tier)
    : _module(module), _tier(tier), _interp(module),
      _bc(bc::compileModule(module)), _vm(_bc)
{
    _vm.setSlowCall(
        [this](const std::string &callee, std::vector<RtValue> args) {
            return _interp.call(callee, args);
        });
}

namespace {

/**
 * A compiled function may only run on arguments whose dynamic class
 * matches the compiled signature: the compiler folded the walker's
 * per-use conversions under that assumption, and e.g. an integer
 * beyond 2^53 passed to a float-classed parameter would otherwise
 * round on entry where the walker's int-classed uses would not.
 */
bool
argsMatch(const bc::BcFunction &fn, const std::vector<RtValue> &args)
{
    if (args.size() != fn.paramClasses.size())
        return false;
    for (std::size_t j = 0; j < args.size(); ++j) {
        const bool want_float =
            fn.paramClasses[j] == bc::RegClass::Float;
        if (isFloating(args[j].type) != want_float)
            return false;
    }
    return true;
}

} // namespace

ExecTier
ExecutableModule::tierFor(const std::string &function) const
{
    if (_tier == ExecTier::Ast)
        return ExecTier::Ast;
    const bc::BcFunction *fn = _bc.find(function);
    if (fn != nullptr && fn->compiled)
        return ExecTier::Bytecode;
    if (_tier == ExecTier::Bytecode) {
        support::panic("exec: tier bytecode requested but @", function,
                       fn != nullptr
                           ? " did not compile: " + fn->fallbackReason
                           : " is unknown");
    }
    return ExecTier::Ast;
}

RtValue
ExecutableModule::call(const std::string &function,
                       const std::vector<RtValue> &args)
{
    if (tierFor(function) == ExecTier::Ast)
        return _interp.call(function, args);
    const bc::BcFunction &fn = *_bc.find(function);
    if (!argsMatch(fn, args)) {
        if (_tier == ExecTier::Bytecode) {
            support::panic("exec: tier bytecode requested but a call "
                           "of @",
                           function,
                           " does not match the compiled signature");
        }
        return _interp.call(function, args);
    }
    return _vm.call(fn, args);
}

bool
ExecutableModule::callBatch(const std::string &function,
                            std::size_t lanes,
                            const std::vector<const RtValue *> &argColumns,
                            RtValue *results)
{
    if (_tier == ExecTier::Ast)
        return false;
    const bc::BcFunction *fn = _bc.find(function);
    if (fn == nullptr || !fn->compiled || !fn->batchable)
        return false;
    return _vm.callBatch(*fn, lanes, argColumns, results);
}

void
ExecutableModule::bindExternal(
    const std::string &name,
    std::function<RtValue(const std::vector<RtValue> &)> fn,
    Type result_type)
{
    _interp.bindExternal(name, std::move(fn));
    auto [it, inserted] = _externalTypes.emplace(name, result_type);
    const bool changed = !inserted && it->second != result_type;
    it->second = result_type;
    // The compiler assumed F64 for unlisted externals; any other
    // result class invalidates the folded conversions.
    if (changed || result_type != Type::F64) {
        _bc = bc::compileModule(_module, _externalTypes);
        _vm.setModule(_bc);
    }
}

void
ExecutableModule::setStepBudget(std::uint64_t budget)
{
    _interp.setStepBudget(budget);
    _vm.setStepBudget(budget);
}

std::uint64_t
ExecutableModule::executedInstructions() const
{
    return _interp.executedInstructions() + _vm.executedInstructions();
}

} // namespace stats::ir
