#include "ir/interpreter.hpp"

#include <cmath>
#include <limits>

#include "support/log.hpp"
#include "support/rng.hpp"

namespace stats::ir {

RtValue
RtValue::ofInt(std::int64_t v)
{
    RtValue value;
    value.type = Type::I64;
    value.i = v;
    return value;
}

RtValue
RtValue::ofFloat(double v, Type type)
{
    RtValue value;
    value.type = type;
    value.f = type == Type::F32 ? static_cast<float>(v) : v;
    return value;
}

Interpreter::Interpreter(const Module &module) : _module(module)
{
    // Math builtins; rand_uniform is the PRVG hook that makes IR
    // programs nondeterministic, mirroring the benchmarks.
    bindExternal("sqrt", [](const std::vector<RtValue> &args) {
        return RtValue::ofFloat(std::sqrt(args.at(0).asFloat()));
    });
    bindExternal("exp", [](const std::vector<RtValue> &args) {
        return RtValue::ofFloat(std::exp(args.at(0).asFloat()));
    });
    bindExternal("log", [](const std::vector<RtValue> &args) {
        return RtValue::ofFloat(std::log(args.at(0).asFloat()));
    });
    bindExternal("sin", [](const std::vector<RtValue> &args) {
        return RtValue::ofFloat(std::sin(args.at(0).asFloat()));
    });
    bindExternal("cos", [](const std::vector<RtValue> &args) {
        return RtValue::ofFloat(std::cos(args.at(0).asFloat()));
    });
    bindExternal("fabs", [](const std::vector<RtValue> &args) {
        return RtValue::ofFloat(std::fabs(args.at(0).asFloat()));
    });
    bindExternal("rand_uniform", [](const std::vector<RtValue> &) {
        static support::Xoshiro256 rng(support::entropySeed());
        return RtValue::ofFloat(rng.nextDouble());
    });
}

void
Interpreter::bindExternal(
    const std::string &name,
    std::function<RtValue(const std::vector<RtValue> &)> fn)
{
    _externals[name] = std::move(fn);
}

RtValue
Interpreter::evalOperand(const Operand &operand,
                         const std::map<std::string, RtValue> &env) const
{
    switch (operand.kind) {
      case Operand::Kind::ConstInt:
        return RtValue::ofInt(operand.intValue);
      case Operand::Kind::ConstFloat:
        return RtValue::ofFloat(operand.floatValue);
      case Operand::Kind::Temp: {
        auto it = env.find(operand.name);
        if (it == env.end())
            support::panic("interpreter: undefined temp %", operand.name);
        return it->second;
      }
    }
    support::panic("interpreter: bad operand");
}

RtValue
Interpreter::call(const std::string &function,
                  const std::vector<RtValue> &args)
{
    if (_depth == 0)
        _stepsUsed = 0;
    if (++_depth > 256)
        support::panic("interpreter: call depth exceeded");

    auto external = _externals.find(function);
    const Function *fn = _module.findFunction(function);
    if (!fn) {
        if (external == _externals.end())
            support::panic("interpreter: unknown function @", function);
        RtValue result = external->second(args);
        --_depth;
        return result;
    }
    if (args.size() != fn->params.size())
        support::panic("interpreter: @", function, " expects ",
                       fn->params.size(), " args, got ", args.size());

    std::map<std::string, RtValue> env;
    const auto assign = [&](const std::string &name,
                            const RtValue &value) {
        env[name] = value;
        if (_observer)
            _observer(*fn, name, value);
    };
    for (std::size_t i = 0; i < args.size(); ++i)
        assign(fn->params[i].name, args[i]);

    const BasicBlock *block = &fn->blocks.front();
    std::string previous_label;

    for (;;) {
        // Phis read their incomings before any assignment this block
        // makes (they execute "simultaneously" on entry).
        std::map<std::string, RtValue> phi_values;
        for (const auto &inst : block->instructions) {
            if (inst.op != Opcode::Phi)
                break;
            bool found = false;
            for (std::size_t i = 0; i < inst.labels.size(); ++i) {
                if (inst.labels[i] == previous_label) {
                    phi_values[inst.result] =
                        evalOperand(inst.operands[i], env);
                    found = true;
                    break;
                }
            }
            if (!found)
                support::panic("interpreter: phi in '", block->label,
                               "' has no incoming for '", previous_label,
                               "'");
        }
        for (auto &[name, value] : phi_values)
            assign(name, value);

        for (const auto &inst : block->instructions) {
            if (++_stepsUsed > _stepBudget)
                support::panic("interpreter: step budget exceeded in @",
                               function);
            ++_executed;

            switch (inst.op) {
              case Opcode::Phi:
                continue; // Handled above.
              case Opcode::Add:
              case Opcode::Sub:
              case Opcode::Mul:
              case Opcode::Div: {
                const RtValue a = evalOperand(inst.operands[0], env);
                const RtValue b = evalOperand(inst.operands[1], env);
                if (isFloating(inst.type)) {
                    const double x = a.asFloat(), y = b.asFloat();
                    double r = 0.0;
                    if (inst.op == Opcode::Add) r = x + y;
                    else if (inst.op == Opcode::Sub) r = x - y;
                    else if (inst.op == Opcode::Mul) r = x * y;
                    else r = x / y;
                    assign(inst.result, RtValue::ofFloat(r, inst.type));
                } else {
                    const std::int64_t x = a.asInt(), y = b.asInt();
                    // i64 arithmetic wraps (two's complement): signed
                    // overflow is UB in C++, so compute in uint64.
                    const auto ux = static_cast<std::uint64_t>(x);
                    const auto uy = static_cast<std::uint64_t>(y);
                    std::int64_t r = 0;
                    if (inst.op == Opcode::Add)
                        r = static_cast<std::int64_t>(ux + uy);
                    else if (inst.op == Opcode::Sub)
                        r = static_cast<std::int64_t>(ux - uy);
                    else if (inst.op == Opcode::Mul)
                        r = static_cast<std::int64_t>(ux * uy);
                    else {
                        if (y == 0)
                            support::panic("interpreter: division by 0");
                        // INT64_MIN / -1 overflows (hardware traps);
                        // wrap it to INT64_MIN like the * and +
                        // cases.
                        if (x == std::numeric_limits<std::int64_t>::min() &&
                            y == -1)
                            r = x;
                        else
                            r = x / y;
                    }
                    assign(inst.result, RtValue::ofInt(r));
                }
                break;
              }
              case Opcode::CmpEq:
              case Opcode::CmpLt:
              case Opcode::CmpLe: {
                const RtValue a = evalOperand(inst.operands[0], env);
                const RtValue b = evalOperand(inst.operands[1], env);
                bool r = false;
                if (isFloating(inst.type)) {
                    const double x = a.asFloat(), y = b.asFloat();
                    r = inst.op == Opcode::CmpEq   ? x == y
                        : inst.op == Opcode::CmpLt ? x < y
                                                   : x <= y;
                } else {
                    const std::int64_t x = a.asInt(), y = b.asInt();
                    r = inst.op == Opcode::CmpEq   ? x == y
                        : inst.op == Opcode::CmpLt ? x < y
                                                   : x <= y;
                }
                assign(inst.result, RtValue::ofInt(r ? 1 : 0));
                break;
              }
              case Opcode::Select: {
                const bool cond =
                    evalOperand(inst.operands[0], env).asInt() != 0;
                assign(inst.result,
                       evalOperand(inst.operands[cond ? 1 : 2], env));
                break;
              }
              case Opcode::Cast: {
                const RtValue v = evalOperand(inst.operands[0], env);
                assign(inst.result,
                       isFloating(inst.type)
                           ? RtValue::ofFloat(v.asFloat(), inst.type)
                           : RtValue::ofInt(v.asInt()));
                break;
              }
              case Opcode::Call: {
                std::vector<RtValue> call_args;
                call_args.reserve(inst.operands.size());
                for (const auto &operand : inst.operands)
                    call_args.push_back(evalOperand(operand, env));
                const RtValue r = call(inst.callee, call_args);
                if (!inst.result.empty())
                    assign(inst.result, r);
                break;
              }
              case Opcode::Br: {
                const bool cond =
                    evalOperand(inst.operands[0], env).asInt() != 0;
                previous_label = block->label;
                block = fn->findBlock(inst.labels[cond ? 0 : 1]);
                goto next_block;
              }
              case Opcode::Jmp:
                previous_label = block->label;
                block = fn->findBlock(inst.labels[0]);
                goto next_block;
              case Opcode::Ret: {
                RtValue result;
                if (!inst.operands.empty())
                    result = evalOperand(inst.operands[0], env);
                --_depth;
                return result;
              }
            }
        }
        support::panic("interpreter: block '", block->label,
                       "' fell through without a terminator");
      next_block:
        if (!block)
            support::panic("interpreter: branch to missing block");
    }
}

} // namespace stats::ir
