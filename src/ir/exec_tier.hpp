/**
 * @file
 * Execution tiers (docs/INTERPRETER.md §6). An ExecutableModule wraps
 * one verified module behind a tier policy:
 *
 *  - `ast`      — every call runs the AST walker (ir/interpreter.cpp);
 *  - `bytecode` — every call runs compiled bytecode; a function the
 *                 compiler bailed on, or a call whose argument class
 *                 disagrees with the compiled signature, is a panic;
 *  - `auto`     — bytecode when available and applicable, AST walker
 *                 otherwise (the default everywhere).
 *
 * The VM's slow-call hook points back at the wrapped Interpreter, so
 * externals and fallback callees have exactly one implementation no
 * matter which tier a call entered through.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/bytecode.hpp"
#include "ir/interpreter.hpp"
#include "ir/vm.hpp"

namespace stats::ir {

enum class ExecTier
{
    Ast,
    Bytecode,
    Auto,
};

/** Parse "ast" / "bytecode" / "auto"; nullopt on anything else. */
std::optional<ExecTier> parseExecTier(const std::string &name);
const char *execTierName(ExecTier tier);

/**
 * One module behind a tier policy. Not synchronized: concurrent
 * callers must wrap their own instance (the speculation engine
 * already gives each worker its own interpreter).
 */
class ExecutableModule
{
  public:
    explicit ExecutableModule(const Module &module,
                              ExecTier tier = ExecTier::Auto);

    /** Call `function` through the tier policy. */
    RtValue call(const std::string &function,
                 const std::vector<RtValue> &args);

    /**
     * Batched SoA execution of `lanes` independent calls (tier `auto`
     * or `bytecode` only, and only for batchable functions). Returns
     * false without executing when batching does not apply; the
     * caller then loops over scalar call().
     */
    bool callBatch(const std::string &function, std::size_t lanes,
                   const std::vector<const RtValue *> &argColumns,
                   RtValue *results);

    /**
     * Provide or override an external function. `result_type` is the
     * static class of its results (the compiler assumes F64, matching
     * every builtin); binding a non-F64 external recompiles the
     * bytecode under the corrected assumption.
     */
    void bindExternal(
        const std::string &name,
        std::function<RtValue(const std::vector<RtValue> &)> fn,
        Type result_type = Type::F64);

    /** The tier a call of `function` would execute on right now. */
    ExecTier tierFor(const std::string &function) const;

    ExecTier tier() const { return _tier; }
    const Module &module() const { return _module; }
    const bc::BcModule &bytecode() const { return _bc; }

    /** Cap per top-level call, applied to both tiers. Note the two
     *  tiers meter different instruction streams (docs §7). */
    void setStepBudget(std::uint64_t budget);

    /** Committed instructions, summed across both tiers. */
    std::uint64_t executedInstructions() const;

  private:
    const Module &_module;
    ExecTier _tier;
    Interpreter _interp;
    std::map<std::string, Type> _externalTypes;
    bc::BcModule _bc;
    bc::Vm _vm;
};

} // namespace stats::ir
