#include "ir/parser.hpp"

#include <cctype>
#include <sstream>

#include "support/log.hpp"
#include "support/string_utils.hpp"

namespace stats::ir {

namespace {

using support::split;
using support::startsWith;
using support::trim;

/** Thrown on malformed input; surfaces as panic (parseModule) or an
 *  error string (tryParseModule — the serving admission path, where a
 *  bad request must not take the daemon down). */
struct ParseFailure
{
    std::string message;
};

[[noreturn]] void
parseError(std::size_t line, const std::string &message)
{
    throw ParseFailure{"IR parse error at line " +
                       std::to_string(line) + ": " + message};
}

Type
parseType(const std::string &word, std::size_t line)
{
    if (word == "void")
        return Type::Void;
    if (word == "i64")
        return Type::I64;
    if (word == "f64")
        return Type::F64;
    if (word == "f32")
        return Type::F32;
    parseError(line, "unknown type '" + word + "'");
}

std::optional<Opcode>
parseOpcode(const std::string &word)
{
    static const std::map<std::string, Opcode> table{
        {"add", Opcode::Add},       {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},       {"div", Opcode::Div},
        {"cmpeq", Opcode::CmpEq},   {"cmplt", Opcode::CmpLt},
        {"cmple", Opcode::CmpLe},   {"select", Opcode::Select},
        {"cast", Opcode::Cast},     {"phi", Opcode::Phi},
        {"call", Opcode::Call},     {"br", Opcode::Br},
        {"jmp", Opcode::Jmp},       {"ret", Opcode::Ret},
    };
    auto it = table.find(word);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

Operand
parseOperand(const std::string &raw, std::size_t line)
{
    const std::string text = trim(raw);
    if (text.empty())
        parseError(line, "empty operand");
    if (text[0] == '%')
        return Operand::temp(text.substr(1));
    try {
        if (text.find('.') != std::string::npos ||
            text.find('e') != std::string::npos ||
            text.find("inf") != std::string::npos)
            return Operand::constFloat(std::stod(text));
        return Operand::constInt(std::stoll(text));
    } catch (...) {
        parseError(line, "bad operand '" + text + "'");
    }
}

/** Split a comma-separated tail, respecting [..] phi groups. */
std::vector<std::string>
splitArgs(const std::string &text)
{
    std::vector<std::string> parts;
    std::string current;
    int depth = 0;
    for (char c : text) {
        if (c == '[')
            ++depth;
        if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            parts.push_back(trim(current));
            current.clear();
        } else {
            current += c;
        }
    }
    if (!trim(current).empty())
        parts.push_back(trim(current));
    return parts;
}

/** key=value attributes on metadata lines. */
std::map<std::string, std::string>
parseAttributes(const std::vector<std::string> &words, std::size_t from,
                std::size_t line)
{
    std::map<std::string, std::string> attrs;
    for (std::size_t i = from; i < words.size(); ++i) {
        const auto eq = words[i].find('=');
        if (eq == std::string::npos)
            parseError(line, "expected key=value, got '" + words[i] + "'");
        attrs[words[i].substr(0, eq)] = words[i].substr(eq + 1);
    }
    return attrs;
}

std::string
stripAt(const std::string &name)
{
    return startsWith(name, "@") ? name.substr(1) : name;
}

} // namespace

namespace {

Module
parseModuleOrThrow(const std::string &text)
{
    Module module;
    const auto lines = split(text, '\n');

    Function *current_fn = nullptr;
    BasicBlock *current_block = nullptr;

    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::size_t line_no = li + 1;
        std::string line = lines[li];
        const auto comment = line.find(';');
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;

        if (startsWith(line, "module ")) {
            std::string name = trim(line.substr(7));
            if (name.size() >= 2 && name.front() == '"')
                name = name.substr(1, name.size() - 2);
            module.name = name;
            continue;
        }

        if (startsWith(line, "tradeoff ")) {
            const auto words = support::splitWhitespace(line);
            if (words.size() < 2)
                parseError(line_no, "tradeoff needs a name");
            TradeoffMeta meta;
            meta.name = words[1];
            meta.line = line_no;
            const auto attrs = parseAttributes(words, 2, line_no);
            for (const auto &[key, value] : attrs) {
                if (key == "kind") {
                    meta.kind = value == "type" ? TradeoffKind::DataType
                                : value == "fn"
                                    ? TradeoffKind::FunctionChoice
                                    : TradeoffKind::Constant;
                } else if (key == "placeholder") {
                    meta.placeholder = stripAt(value);
                } else if (key == "getValue") {
                    meta.getValueFn = stripAt(value);
                } else if (key == "size") {
                    meta.sizeFn = stripAt(value);
                } else if (key == "default") {
                    meta.defaultIndexFn = stripAt(value);
                } else if (key == "aux") {
                    meta.auxClone = value == "true";
                } else if (key == "origin") {
                    meta.origin = value;
                } else if (key == "choices") {
                    for (auto &choice : split(value, ','))
                        meta.nameChoices.push_back(stripAt(choice));
                } else {
                    parseError(line_no, "unknown attribute '" + key + "'");
                }
            }
            module.tradeoffs.push_back(std::move(meta));
            continue;
        }

        if (startsWith(line, "statedep ")) {
            const auto words = support::splitWhitespace(line);
            if (words.size() < 2)
                parseError(line_no, "statedep needs a name");
            StateDepMeta meta;
            meta.name = words[1];
            meta.line = line_no;
            const auto attrs = parseAttributes(words, 2, line_no);
            for (const auto &[key, value] : attrs) {
                if (key == "compute")
                    meta.computeFn = stripAt(value);
                else if (key == "aux")
                    meta.auxFn = stripAt(value);
                else if (key == "runtime")
                    meta.runtimeLinked = value == "true";
                else if (key == "truncated")
                    meta.truncated = value == "true";
                else
                    parseError(line_no, "unknown attribute '" + key + "'");
            }
            module.stateDeps.push_back(std::move(meta));
            continue;
        }

        if (startsWith(line, "auxclone ")) {
            const auto words = support::splitWhitespace(line);
            if (words.size() < 2)
                parseError(line_no, "auxclone needs a clone name");
            AuxCloneMeta meta;
            meta.clone = stripAt(words[1]);
            meta.line = line_no;
            const auto attrs = parseAttributes(words, 2, line_no);
            for (const auto &[key, value] : attrs) {
                if (key == "origin")
                    meta.origin = stripAt(value);
                else if (key == "statedep")
                    meta.stateDep = value;
                else
                    parseError(line_no, "unknown attribute '" + key + "'");
            }
            module.auxClones.push_back(std::move(meta));
            continue;
        }

        if (startsWith(line, "func ")) {
            // func @name(type %p, ...) -> type {
            Function fn;
            fn.line = line_no;
            const auto at = line.find('@');
            const auto open = line.find('(', at);
            const auto close = line.rfind(')');
            const auto arrow = line.find("->", close);
            if (at == std::string::npos || open == std::string::npos ||
                close == std::string::npos || arrow == std::string::npos) {
                parseError(line_no, "malformed func header");
            }
            fn.name = trim(line.substr(at + 1, open - at - 1));
            const std::string params =
                trim(line.substr(open + 1, close - open - 1));
            if (!params.empty()) {
                for (const auto &param : splitArgs(params)) {
                    const auto words = support::splitWhitespace(param);
                    if (words.size() != 2 || words[1][0] != '%')
                        parseError(line_no, "malformed parameter");
                    fn.params.push_back(
                        {words[1].substr(1), parseType(words[0], line_no)});
                }
            }
            std::string ret = trim(line.substr(arrow + 2));
            if (!ret.empty() && ret.back() == '{')
                ret = trim(ret.substr(0, ret.size() - 1));
            fn.returnType = parseType(ret, line_no);
            module.functions.push_back(std::move(fn));
            current_fn = &module.functions.back();
            current_block = nullptr;
            continue;
        }

        if (line == "}") {
            current_fn = nullptr;
            current_block = nullptr;
            continue;
        }

        if (!current_fn)
            parseError(line_no, "instruction outside a function");

        if (line.back() == ':') {
            current_fn->blocks.push_back(
                BasicBlock{line.substr(0, line.size() - 1), {}, line_no});
            current_block = &current_fn->blocks.back();
            continue;
        }

        if (!current_block)
            parseError(line_no, "instruction before any block label");

        // [%result =] opcode [type] [@callee] operands...
        Instruction inst;
        inst.line = line_no;
        std::string rest = line;
        if (rest[0] == '%') {
            const auto eq = rest.find('=');
            if (eq == std::string::npos)
                parseError(line_no, "expected '=' after result temp");
            inst.result = trim(rest.substr(1, eq - 1));
            rest = trim(rest.substr(eq + 1));
        }

        std::istringstream words(rest);
        std::string word;
        words >> word;
        const auto op = parseOpcode(word);
        if (!op)
            parseError(line_no, "unknown opcode '" + word + "'");
        inst.op = *op;

        std::string tail;
        std::getline(words, tail);
        tail = trim(tail);

        // Optional leading type token.
        if (inst.op != Opcode::Jmp && inst.op != Opcode::Br &&
            !tail.empty()) {
            std::istringstream peek(tail);
            std::string maybe_type;
            peek >> maybe_type;
            if (maybe_type == "void" || maybe_type == "i64" ||
                maybe_type == "f64" || maybe_type == "f32") {
                inst.type = parseType(maybe_type, line_no);
                std::getline(peek, tail);
                tail = trim(tail);
            }
        }

        // Optional @callee for calls.
        if (inst.op == Opcode::Call) {
            if (tail.empty() || tail[0] != '@')
                parseError(line_no, "call needs @callee");
            const auto end = tail.find_first_of(" (,", 1);
            std::string callee_part =
                end == std::string::npos ? tail : tail.substr(0, end);
            inst.callee = callee_part.substr(1);
            tail = end == std::string::npos ? "" : trim(tail.substr(end));
            // Accept both "@f 1, 2" and "@f(1, 2)".
            if (!tail.empty() && tail.front() == '(') {
                const auto close_paren = tail.rfind(')');
                if (close_paren == std::string::npos)
                    parseError(line_no, "unbalanced call parentheses");
                tail = trim(tail.substr(1, close_paren - 1));
            }
        }

        for (const auto &arg : splitArgs(tail)) {
            if (arg.empty())
                continue;
            if (arg.front() == '[') {
                // Phi incoming: [value, label]
                if (arg.back() != ']')
                    parseError(line_no, "malformed phi incoming");
                const auto inner = arg.substr(1, arg.size() - 2);
                const auto parts = split(inner, ',');
                if (parts.size() != 2)
                    parseError(line_no, "phi incoming needs 2 parts");
                inst.operands.push_back(parseOperand(parts[0], line_no));
                inst.labels.push_back(trim(parts[1]));
                continue;
            }
            const bool is_label =
                (inst.op == Opcode::Br || inst.op == Opcode::Jmp) &&
                arg[0] != '%' &&
                !std::isdigit(static_cast<unsigned char>(arg[0])) &&
                arg[0] != '-';
            if (is_label)
                inst.labels.push_back(arg);
            else
                inst.operands.push_back(parseOperand(arg, line_no));
        }

        current_block->instructions.push_back(std::move(inst));
    }

    return module;
}

} // namespace

Module
parseModule(const std::string &text)
{
    try {
        return parseModuleOrThrow(text);
    } catch (const ParseFailure &failure) {
        support::panic(failure.message);
    }
}

std::optional<Module>
tryParseModule(const std::string &text, std::string &error)
{
    try {
        return parseModuleOrThrow(text);
    } catch (const ParseFailure &failure) {
        error = failure.message;
        return std::nullopt;
    }
}

std::string
printModule(const Module &module)
{
    std::ostringstream out;
    out << "module \"" << module.name << "\"\n";

    for (const auto &meta : module.tradeoffs) {
        out << "tradeoff " << meta.name
            << " kind=" << tradeoffKindName(meta.kind)
            << " placeholder=@" << meta.placeholder
            << " getValue=@" << meta.getValueFn << " size=@"
            << meta.sizeFn << " default=@" << meta.defaultIndexFn;
        if (meta.auxClone)
            out << " aux=true origin=" << meta.origin;
        if (!meta.nameChoices.empty()) {
            out << " choices=";
            for (std::size_t i = 0; i < meta.nameChoices.size(); ++i)
                out << (i ? "," : "") << meta.nameChoices[i];
        }
        out << "\n";
    }
    for (const auto &meta : module.stateDeps) {
        out << "statedep " << meta.name << " compute=@" << meta.computeFn;
        if (!meta.auxFn.empty())
            out << " aux=@" << meta.auxFn;
        if (meta.runtimeLinked)
            out << " runtime=true";
        if (meta.truncated)
            out << " truncated=true";
        out << "\n";
    }
    for (const auto &meta : module.auxClones) {
        out << "auxclone " << meta.clone << " origin=@" << meta.origin;
        if (!meta.stateDep.empty())
            out << " statedep=" << meta.stateDep;
        out << "\n";
    }

    for (const auto &fn : module.functions) {
        out << "\nfunc @" << fn.name << "(";
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
            out << (i ? ", " : "") << typeName(fn.params[i].type) << " %"
                << fn.params[i].name;
        }
        out << ") -> " << typeName(fn.returnType) << " {\n";
        for (const auto &block : fn.blocks) {
            out << block.label << ":\n";
            for (const auto &inst : block.instructions)
                out << "  " << inst.toString() << "\n";
        }
        out << "}\n";
    }
    return out.str();
}

} // namespace stats::ir
