#include "ir/call_graph.hpp"

namespace stats::ir {

CallGraph::CallGraph(const Module &module) : _module(module)
{
    for (const auto &meta : module.tradeoffs)
        _placeholders.insert(meta.placeholder);

    for (const auto &fn : module.functions) {
        auto &edges = _callees[fn.name];
        bool direct = false;
        for (const auto &block : fn.blocks) {
            for (const auto &inst : block.instructions) {
                if (inst.op != Opcode::Call)
                    continue;
                if (_placeholders.count(inst.callee))
                    direct = true;
                if (module.findFunction(inst.callee))
                    edges.insert(inst.callee);
            }
        }
        _directTradeoff[fn.name] = direct;
    }
}

const std::set<std::string> &
CallGraph::callees(const std::string &fn) const
{
    static const std::set<std::string> empty;
    auto it = _callees.find(fn);
    return it == _callees.end() ? empty : it->second;
}

std::set<std::string>
CallGraph::reachableFrom(const std::string &fn) const
{
    std::set<std::string> visited;
    std::vector<std::string> stack{fn};
    while (!stack.empty()) {
        const std::string current = stack.back();
        stack.pop_back();
        if (!visited.insert(current).second)
            continue;
        for (const auto &callee : callees(current))
            stack.push_back(callee);
    }
    return visited;
}

std::set<std::string>
CallGraph::tradeoffCarriers() const
{
    // Bottom-up fixed point: a function carries a tradeoff if it has
    // a direct placeholder call or calls a carrier.
    std::set<std::string> carriers;
    for (const auto &[fn, direct] : _directTradeoff) {
        if (direct)
            carriers.insert(fn);
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &[fn, edges] : _callees) {
            if (carriers.count(fn))
                continue;
            for (const auto &callee : edges) {
                if (carriers.count(callee)) {
                    carriers.insert(fn);
                    changed = true;
                    break;
                }
            }
        }
    }
    return carriers;
}

bool
CallGraph::hasDirectTradeoff(const std::string &fn) const
{
    auto it = _directTradeoff.find(fn);
    return it != _directTradeoff.end() && it->second;
}

} // namespace stats::ir
