/**
 * @file
 * The bytecode VM (docs/INTERPRETER.md): a threaded-dispatch register
 * machine over the code that ir/bytecode.cpp emits, plus a batched
 * SoA execution mode that runs W independent calls of a straight-line
 * function lane-parallel through the SIMD kernels in ops_simd.hpp.
 *
 * Execution state (frame stack, step counter, call depth) is
 * thread-local, so one Vm may be shared by concurrent callers; the
 * committed-instruction counter is a relaxed atomic flushed when a
 * top-level call returns.
 *
 * Calls to externals and to functions the compiler bailed on route
 * through a single slow-call hook (ExecutableModule points it at the
 * AST interpreter), which keeps the two tiers' semantics identical by
 * construction.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/bytecode.hpp"
#include "ir/interpreter.hpp"

namespace stats::ir::bc {

/** One raw 8-byte register slot; the static class picks the view. */
union VmReg
{
    std::int64_t i;
    double f;
};

class Vm
{
  public:
    explicit Vm(const BcModule &module) : _module(&module) {}

    /** Re-point after the owner recompiled its BcModule. */
    void setModule(const BcModule &module) { _module = &module; }

    /** Handler for external and AST-fallback callees. */
    using SlowCall = std::function<RtValue(const std::string &callee,
                                           std::vector<RtValue> args)>;
    void setSlowCall(SlowCall hook) { _slowCall = std::move(hook); }

    /** Cap on executed bytecode instructions per top-level call. */
    void setStepBudget(std::uint64_t budget) { _stepBudget = budget; }

    /** Bytecode instructions committed so far, across threads. */
    std::uint64_t executedInstructions() const
    {
        return _executed.load(std::memory_order_relaxed);
    }

    /** Call a compiled function. `fn.compiled` must be true. */
    RtValue call(const BcFunction &fn,
                 const std::vector<RtValue> &args);

    /**
     * Execute `lanes` independent calls of a batchable function in
     * SoA form: `argColumns[p][lane]` is parameter p of call `lane`,
     * `results[lane]` receives each call's return value. Returns
     * false (without executing) when the function is not batchable or
     * an argument's class disagrees with the declared parameter; the
     * caller then falls back to scalar calls.
     */
    bool callBatch(const BcFunction &fn, std::size_t lanes,
                   const std::vector<const RtValue *> &argColumns,
                   RtValue *results);

  private:
    VmReg rawCall(const BcFunction &fn, std::size_t base);

    const BcModule *_module;
    SlowCall _slowCall;
    std::uint64_t _stepBudget = 10'000'000;
    std::atomic<std::uint64_t> _executed{0};
};

} // namespace stats::ir::bc
