/**
 * @file
 * Structural verifier for the mini-IR.
 *
 * Checks: every block ends in a terminator; branch/jump targets
 * exist; temporaries are defined (as a parameter or instruction
 * result) before use within the function; call targets exist in the
 * module or are known builtins; phi incoming labels name existing
 * blocks and exactly cover the block's CFG predecessors; metadata
 * references existing functions.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace stats::ir {

/** Names callable without a module definition (math builtins). */
bool isBuiltinCallee(const std::string &name);

/**
 * Builtins with side effects or nondeterminism (the PRVG hook).
 * These are what the speculation-safety escape check must keep out
 * of auxiliary code.
 */
bool isEffectfulBuiltin(const std::string &name);

/** Returns a list of problems; empty means the module verifies. */
std::vector<std::string> verifyModule(const Module &module);

} // namespace stats::ir
