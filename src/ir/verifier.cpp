#include "ir/verifier.hpp"

#include <map>
#include <set>
#include <sstream>

namespace stats::ir {

bool
isBuiltinCallee(const std::string &name)
{
    static const std::set<std::string> builtins{
        "sqrt", "exp", "log", "sin", "cos", "fabs", "rand_uniform",
    };
    return builtins.count(name) > 0;
}

bool
isEffectfulBuiltin(const std::string &name)
{
    return name == "rand_uniform";
}

namespace {

void
verifyFunction(const Module &module, const Function &fn,
               std::vector<std::string> &problems)
{
    const auto report = [&](const std::string &message) {
        problems.push_back("@" + fn.name + ": " + message);
    };

    if (fn.blocks.empty()) {
        report("has no blocks");
        return;
    }

    std::set<std::string> labels;
    for (const auto &block : fn.blocks) {
        if (!labels.insert(block.label).second)
            report("duplicate block label '" + block.label + "'");
    }

    std::set<std::string> defined;
    for (const auto &param : fn.params)
        defined.insert(param.name);
    // Results are collected up front: phis may reference values from
    // later blocks (loop back-edges).
    std::set<std::string> all_results = defined;
    for (const auto &block : fn.blocks) {
        for (const auto &inst : block.instructions) {
            if (!inst.result.empty())
                all_results.insert(inst.result);
        }
    }

    for (const auto &block : fn.blocks) {
        if (!block.terminator())
            report("block '" + block.label +
                   "' does not end in a terminator");
        for (std::size_t i = 0; i < block.instructions.size(); ++i) {
            const Instruction &inst = block.instructions[i];
            if (isTerminator(inst.op) &&
                i + 1 != block.instructions.size()) {
                report("terminator mid-block in '" + block.label + "'");
            }

            for (const auto &operand : inst.operands) {
                if (operand.kind == Operand::Kind::Temp &&
                    !all_results.count(operand.name)) {
                    report("use of undefined temp %" + operand.name);
                }
            }

            switch (inst.op) {
              case Opcode::Br:
                if (inst.operands.size() != 1 || inst.labels.size() != 2)
                    report("br needs 1 operand and 2 labels");
                break;
              case Opcode::Jmp:
                if (inst.labels.size() != 1)
                    report("jmp needs 1 label");
                break;
              case Opcode::Phi:
                if (inst.operands.size() != inst.labels.size() ||
                    inst.operands.empty()) {
                    report("phi needs paired incomings");
                }
                break;
              case Opcode::Select:
                if (inst.operands.size() != 3)
                    report("select needs 3 operands");
                break;
              case Opcode::Cast:
                if (inst.operands.size() != 1)
                    report("cast needs 1 operand");
                break;
              case Opcode::Add:
              case Opcode::Sub:
              case Opcode::Mul:
              case Opcode::Div:
              case Opcode::CmpEq:
              case Opcode::CmpLt:
              case Opcode::CmpLe:
                if (inst.operands.size() != 2)
                    report(std::string(opcodeName(inst.op)) +
                           " needs 2 operands");
                break;
              case Opcode::Ret:
                if (fn.returnType == Type::Void
                        ? !inst.operands.empty()
                        : inst.operands.size() != 1) {
                    report("ret arity does not match return type");
                }
                break;
              case Opcode::Call:
                if (!module.findFunction(inst.callee) &&
                    !isBuiltinCallee(inst.callee)) {
                    report("call to unknown function @" + inst.callee);
                }
                break;
            }

            for (const auto &label : inst.labels) {
                if ((inst.op == Opcode::Br || inst.op == Opcode::Jmp ||
                     inst.op == Opcode::Phi) &&
                    !labels.count(label)) {
                    report("reference to unknown label '" + label + "'");
                }
            }
        }
    }

    // Phi coverage: each phi's incoming labels must exactly match the
    // block's CFG predecessors (a missing edge would trap at runtime,
    // an extra edge is dead and hides a wiring bug).
    std::map<std::string, std::set<std::string>> preds;
    for (const auto &block : fn.blocks) {
        const Instruction *term = block.terminator();
        if (!term)
            continue;
        for (const auto &target : term->labels) {
            if (labels.count(target))
                preds[target].insert(block.label);
        }
    }
    for (const auto &block : fn.blocks) {
        const auto &incoming_from = preds[block.label];
        for (const auto &inst : block.instructions) {
            if (inst.op != Opcode::Phi)
                continue;
            const std::set<std::string> incoming(inst.labels.begin(),
                                                 inst.labels.end());
            for (const auto &pred : incoming_from) {
                if (!incoming.count(pred))
                    report("phi %" + inst.result + " in '" + block.label +
                           "' missing incoming for predecessor '" +
                           pred + "'");
            }
            for (const auto &label : incoming) {
                if (!incoming_from.count(label))
                    report("phi %" + inst.result + " in '" + block.label +
                           "' has incoming for non-predecessor '" +
                           label + "'");
            }
        }
    }
}

} // namespace

std::vector<std::string>
verifyModule(const Module &module)
{
    std::vector<std::string> problems;
    std::set<std::string> names;
    for (const auto &fn : module.functions) {
        if (!names.insert(fn.name).second)
            problems.push_back("duplicate function @" + fn.name);
        verifyFunction(module, fn, problems);
    }
    for (const auto &meta : module.tradeoffs) {
        for (const auto &ref :
             {meta.getValueFn, meta.sizeFn, meta.defaultIndexFn}) {
            if (!ref.empty() && !module.findFunction(ref)) {
                problems.push_back("tradeoff " + meta.name +
                                   " references unknown @" + ref);
            }
        }
    }
    for (const auto &meta : module.stateDeps) {
        if (!module.findFunction(meta.computeFn))
            problems.push_back("statedep " + meta.name +
                               " references unknown @" + meta.computeFn);
        if (!meta.auxFn.empty() && !module.findFunction(meta.auxFn))
            problems.push_back("statedep " + meta.name +
                               " references unknown aux @" + meta.auxFn);
    }
    for (const auto &meta : module.auxClones) {
        if (!module.findFunction(meta.clone))
            problems.push_back("auxclone " + meta.clone +
                               " names an unknown clone function");
        if (!module.findFunction(meta.origin))
            problems.push_back("auxclone " + meta.clone +
                               " references unknown origin @" +
                               meta.origin);
        if (!meta.stateDep.empty() &&
            !module.findStateDep(meta.stateDep)) {
            problems.push_back("auxclone " + meta.clone +
                               " references unknown statedep " +
                               meta.stateDep);
        }
    }
    return problems;
}

} // namespace stats::ir
