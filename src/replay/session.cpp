#include "replay/session.hpp"

#include <algorithm>
#include <sstream>

#include "support/log.hpp"

namespace stats::replay {

std::string
Divergence::describe() const
{
    std::ostringstream out;
    out << "run " << run << " epoch " << epoch << ": expected "
        << recordKindName(expectedKind);
    if (expectedGroup >= 0)
        out << " group " << expectedGroup;
    if (expectedKind == RecordKind::MatchVerdict ||
        expectedKind == RecordKind::Reexec ||
        expectedKind == RecordKind::FaultInjected ||
        expectedValue != actualValue) {
        out << " (value " << expectedValue << ")";
    }
    out << ", got " << recordKindName(actualKind);
    if (actualGroup >= 0)
        out << " group " << actualGroup;
    if (expectedValue != actualValue)
        out << " (value " << actualValue << ")";
    return out.str();
}

namespace {

// The thread's installed session, if any. Raw pointer: installation
// is strictly scoped (ScopedSessionInstall), so lifetime is managed
// by the installer.
thread_local ReplaySession *tlSession = nullptr;

} // namespace

ReplaySession &
ReplaySession::global()
{
    static ReplaySession session;
    return session;
}

ReplaySession &
ReplaySession::current()
{
    return tlSession != nullptr ? *tlSession : global();
}

ReplaySession *
ReplaySession::installOnThread(ReplaySession *session)
{
    ReplaySession *previous = tlSession;
    tlSession = session;
    return previous;
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

void
ReplaySession::startRecording(std::uint64_t root_seed)
{
    _log = RecordLog{};
    _log.rootSeed = root_seed;
    _run = 0;
    _epoch = 0;
    _runOpen = false;
    _cursor = 0;
    _matched = 0;
    _diverged = false;
    _structuralLoss = false;
    _first = Divergence{};
    _mode.store(Mode::Record, std::memory_order_relaxed);
}

void
ReplaySession::setMetadata(const std::string &key,
                           const std::string &value)
{
    _log.setMeta(key, value);
}

RecordLog
ReplaySession::finishRecording()
{
    if (mode() != Mode::Record)
        support::panic("finishRecording: session is not recording");
    _mode.store(Mode::Off, std::memory_order_relaxed);
    RecordLog out = std::move(_log);
    _log = RecordLog{};
    return out;
}

void
ReplaySession::startReplay(RecordLog log)
{
    _log = std::move(log);
    _run = 0;
    _epoch = 0;
    _runOpen = false;
    _cursor = 0;
    _matched = 0;
    _diverged = false;
    _structuralLoss = false;
    _first = Divergence{};
    _mode.store(Mode::Replay, std::memory_order_relaxed);
}

ReplayReport
ReplaySession::finishReplay()
{
    if (mode() != Mode::Replay)
        support::panic("finishReplay: session is not replaying");
    _mode.store(Mode::Off, std::memory_order_relaxed);

    // Records the execution never reached count as a divergence too:
    // the log promised more decisions than the process made.
    if (!_diverged) {
        std::size_t left = _cursor;
        while (left < _log.records.size() &&
               _log.records[left].kind == RecordKind::FaultInjected &&
               !faultsActive()) {
            ++left; // Annotation records are skippable (REPLAY.md §3).
        }
        if (left < _log.records.size()) {
            const Record &expected = _log.records[left];
            _diverged = true;
            _first.run = _run;
            _first.epoch = _epoch;
            _first.expectedKind = expected.kind;
            _first.expectedGroup = expected.group;
            _first.expectedValue = expected.a;
            _first.actualKind = RecordKind::RunEnd;
            _first.actualGroup = -1;
            _first.actualValue =
                static_cast<std::int64_t>(_log.records.size() - left);
        }
    }

    ReplayReport report;
    report.diverged = _diverged;
    report.first = _first;
    report.runsReplayed = _run;
    report.recordsMatched = _matched;
    _log = RecordLog{};
    return report;
}

void
ReplaySession::setFaultPlan(FaultPlan plan)
{
    _plan = std::move(plan);
    _faultsActive.store(_plan.active(), std::memory_order_relaxed);
}

std::uint64_t
ReplaySession::rootSeed() const
{
    return _log.rootSeed;
}

std::uint64_t
ReplaySession::faultCount(FaultKind kind) const
{
    return _faultCounts[static_cast<int>(kind)].load(
        std::memory_order_relaxed);
}

void
ReplaySession::countExternalFault(FaultKind kind)
{
    _faultCounts[static_cast<int>(kind)].fetch_add(
        1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// The record/verify step
// ---------------------------------------------------------------------

void
ReplaySession::reportDivergence(const Record *expected,
                                const Record &actual)
{
    if (_diverged)
        return;
    _diverged = true;
    _first.run = actual.run;
    _first.epoch = actual.epoch;
    if (expected != nullptr) {
        _first.expectedKind = expected->kind;
        _first.expectedGroup = expected->group;
        _first.expectedValue = expected->a;
    } else {
        // Log exhausted: the recording ended before the execution did.
        _first.expectedKind = RecordKind::RunEnd;
        _first.expectedGroup = -1;
        _first.expectedValue = 0;
    }
    _first.actualKind = actual.kind;
    _first.actualGroup = actual.group;
    _first.actualValue = actual.a;
}

void
ReplaySession::recordStep(Record record)
{
    _log.records.push_back(std::move(record));
}

bool
ReplaySession::replayStep(const Record &actual, std::int64_t *forced_a)
{
    // After a structural divergence the cursor is meaningless: the
    // execution is on a different path, so stop consuming the log and
    // let the engine's own decisions pass through.
    if (_structuralLoss)
        return false;

    // FaultInjected records are annotations, not engine decisions.
    // When replaying without the fault plan the execution never emits
    // them, so skip them here; the *consequence* of the fault (the
    // forced MatchVerdict value) is still compared — and reported as a
    // value divergence — at the next step.
    while (_cursor < _log.records.size() &&
           _log.records[_cursor].kind == RecordKind::FaultInjected &&
           actual.kind != RecordKind::FaultInjected) {
        ++_cursor;
    }

    if (_cursor >= _log.records.size()) {
        const bool fresh = !_diverged;
        reportDivergence(nullptr, actual);
        _structuralLoss = true;
        return fresh;
    }

    const Record &expected = _log.records[_cursor];
    if (expected.kind != actual.kind ||
        expected.group != actual.group) {
        const bool fresh = !_diverged;
        reportDivergence(&expected, actual);
        _structuralLoss = true;
        return fresh;
    }

    ++_cursor;
    bool fresh_divergence = false;
    if (expected.a != actual.a || expected.b != actual.b ||
        expected.payload != actual.payload) {
        fresh_divergence = !_diverged;
        reportDivergence(&expected, actual);
    } else {
        ++_matched;
    }
    // Force the logged value so execution stays on the recorded path
    // even past a value divergence.
    if (forced_a != nullptr)
        *forced_a = expected.a;
    return fresh_divergence;
}

bool
ReplaySession::step(RecordKind kind, std::int32_t group, std::int64_t a,
                    std::int64_t b, std::vector<std::int64_t> payload,
                    std::int64_t *forced_a)
{
    Record record;
    record.kind = kind;
    record.run = _run;
    record.epoch = _epoch++;
    record.group = group;
    record.a = a;
    record.b = b;
    record.payload = std::move(payload);

    switch (mode()) {
      case Mode::Record:
        recordStep(std::move(record));
        return false;
      case Mode::Replay:
        return replayStep(record, forced_a);
      case Mode::Off:
        return false;
    }
    return false;
}

// ---------------------------------------------------------------------
// Engine hooks
// ---------------------------------------------------------------------

bool
ReplaySession::engineRunBegin(const RunConfigRecord &config)
{
    if (!engaged())
        return false;
    _epoch = 0;
    _runOpen = true;
    return step(RecordKind::RunBegin, -1, 0, 0, encodeConfig(config),
                nullptr);
}

VerdictOutcome
ReplaySession::matchVerdict(std::int32_t group, int computed)
{
    VerdictOutcome out;
    out.verdict = computed;
    if (!engaged())
        return out;

    // Fault injection first: the forced verdict is what gets recorded,
    // so a faulty recording replays exactly under the same plan. The
    // verdict is the matched-original index; -1 means mismatch, so a
    // forced mismatch only fires when the check would have matched.
    if (faultsActive() && computed >= 0) {
        const bool listed =
            std::find(_plan.mismatchGroups.begin(),
                      _plan.mismatchGroups.end(),
                      group) != _plan.mismatchGroups.end();
        if (listed || _plan.forcesMismatch(_run, group)) {
            out.verdict = -1;
            out.faultInjected = true;
            out.faultKind = static_cast<std::int64_t>(
                listed ? FaultKind::ForcedMismatch
                       : FaultKind::StormMismatch);
            _faultCounts[out.faultKind].fetch_add(
                1, std::memory_order_relaxed);
            out.diverged |= step(RecordKind::FaultInjected, group,
                                 out.faultKind, computed, {}, nullptr);
        }
    }

    std::int64_t forced = out.verdict;
    out.diverged |=
        step(RecordKind::MatchVerdict, group, out.verdict,
             out.faultInjected ? 1 : 0, {}, &forced);
    if (mode() == Mode::Replay)
        out.verdict = static_cast<int>(forced);
    return out;
}

bool
ReplaySession::corruptSpecState(std::int32_t group)
{
    if (!faultsActive())
        return false;
    if (!_plan.corruptsSpecState(_run, group))
        return false;
    _faultCounts[static_cast<int>(FaultKind::CorruptState)].fetch_add(
        1, std::memory_order_relaxed);
    step(RecordKind::FaultInjected, group,
         static_cast<std::int64_t>(FaultKind::CorruptState), 0, {},
         nullptr);
    return true;
}

bool
ReplaySession::reexecution(std::int32_t group, int attempt)
{
    if (!engaged())
        return false;
    return step(RecordKind::Reexec, group, attempt, 0, {}, nullptr);
}

bool
ReplaySession::commit(std::int32_t group)
{
    if (!engaged())
        return false;
    return step(RecordKind::Commit, group, 0, 0, {}, nullptr);
}

bool
ReplaySession::squash(std::int32_t group, std::int32_t aborting_group)
{
    if (!engaged())
        return false;
    return step(RecordKind::Squash, group, aborting_group, 0, {},
                nullptr);
}

bool
ReplaySession::abortSpeculation(std::int32_t group)
{
    if (!engaged())
        return false;
    return step(RecordKind::Abort, group, group, 0, {}, nullptr);
}

bool
ReplaySession::engineRunEnd(const RunStatsRecord &stats)
{
    if (!engaged())
        return false;
    const bool diverged = step(RecordKind::RunEnd, -1, 0, 0,
                               encodeStats(stats), nullptr);
    _runOpen = false;
    ++_run;
    return diverged;
}

// ---------------------------------------------------------------------
// Executor / autotuner hooks
// ---------------------------------------------------------------------

double
ReplaySession::taskStallSeconds(int task_kind, std::int32_t group) const
{
    if (!faultsActive())
        return 0.0;
    return _plan.stallSeconds(task_kind, group);
}

double
ReplaySession::mistrainObjective(double objective)
{
    if (!faultsActive() || _plan.mistrainAmplitude <= 0.0)
        return objective;
    const std::uint64_t evaluation =
        _mistrainEvaluations.fetch_add(1, std::memory_order_relaxed);
    _faultCounts[static_cast<int>(FaultKind::Mistrain)].fetch_add(
        1, std::memory_order_relaxed);
    return objective * _plan.mistrainFactor(evaluation);
}

} // namespace stats::replay
