#include "replay/record_log.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/log.hpp"

namespace stats::replay {

namespace {

constexpr char kMagic[4] = {'S', 'T', 'R', 'L'};
constexpr char kTrailer[4] = {'E', 'N', 'D', 'L'};

} // namespace

const char *
recordKindName(RecordKind kind)
{
    switch (kind) {
      case RecordKind::RunBegin:      return "RunBegin";
      case RecordKind::MatchVerdict:  return "MatchVerdict";
      case RecordKind::Reexec:        return "Reexec";
      case RecordKind::Commit:        return "Commit";
      case RecordKind::Squash:        return "Squash";
      case RecordKind::Abort:         return "Abort";
      case RecordKind::FaultInjected: return "FaultInjected";
      case RecordKind::RunEnd:        return "RunEnd";
    }
    support::panic("recordKindName: unknown record kind ",
                   static_cast<int>(kind));
}

std::vector<std::int64_t>
encodeConfig(const RunConfigRecord &config)
{
    return {config.useAuxiliary,    config.groupSize,
            config.auxWindow,       config.maxReexecutions,
            config.rollbackDepth,   config.sdThreads,
            config.innerThreads,    config.inputCount};
}

std::optional<RunConfigRecord>
decodeConfig(const std::vector<std::int64_t> &payload)
{
    if (payload.size() != 8)
        return std::nullopt;
    RunConfigRecord config;
    config.useAuxiliary = payload[0];
    config.groupSize = payload[1];
    config.auxWindow = payload[2];
    config.maxReexecutions = payload[3];
    config.rollbackDepth = payload[4];
    config.sdThreads = payload[5];
    config.innerThreads = payload[6];
    config.inputCount = payload[7];
    return config;
}

std::vector<std::int64_t>
encodeStats(const RunStatsRecord &stats)
{
    return {stats.validations, stats.mismatches, stats.reexecutions,
            stats.aborts,      stats.squashedGroups,
            stats.invocations};
}

std::optional<RunStatsRecord>
decodeStats(const std::vector<std::int64_t> &payload)
{
    if (payload.size() != 6)
        return std::nullopt;
    RunStatsRecord stats;
    stats.validations = payload[0];
    stats.mismatches = payload[1];
    stats.reexecutions = payload[2];
    stats.aborts = payload[3];
    stats.squashedGroups = payload[4];
    stats.invocations = payload[5];
    return stats;
}

// ---------------------------------------------------------------------
// Varint codec
// ---------------------------------------------------------------------

void
putVarint(std::string &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

bool
getVarint(const std::string &in, std::size_t &pos, std::uint64_t &value)
{
    value = 0;
    int shift = 0;
    while (pos < in.size() && shift < 64) {
        const auto byte =
            static_cast<unsigned char>(in[pos++]);
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return true;
        shift += 7;
    }
    return false;
}

std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

// ---------------------------------------------------------------------
// RecordLog
// ---------------------------------------------------------------------

void
RecordLog::setMeta(const std::string &key, const std::string &value)
{
    for (auto &entry : metadata) {
        if (entry.first == key) {
            entry.second = value;
            return;
        }
    }
    metadata.emplace_back(key, value);
}

std::string
RecordLog::meta(const std::string &key, const std::string &fallback) const
{
    for (const auto &entry : metadata) {
        if (entry.first == key)
            return entry.second;
    }
    return fallback;
}

std::uint32_t
RecordLog::runCount() const
{
    std::uint32_t runs = 0;
    for (const auto &record : records) {
        if (record.kind == RecordKind::RunBegin)
            ++runs;
    }
    return runs;
}

namespace {

void
putString(std::string &out, const std::string &value)
{
    putVarint(out, value.size());
    out.append(value);
}

bool
getString(const std::string &in, std::size_t &pos, std::string &value)
{
    std::uint64_t size = 0;
    // `size > in.size() - pos` instead of `pos + size > in.size()`:
    // the latter wraps for a huge declared size.
    if (!getVarint(in, pos, size) || size > in.size() - pos)
        return false;
    value.assign(in, pos, size);
    pos += size;
    return true;
}

} // namespace

std::string
RecordLog::saveToString() const
{
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    putVarint(out, kLogSchemaVersion);
    putVarint(out, rootSeed);
    putVarint(out, metadata.size());
    for (const auto &entry : metadata) {
        putString(out, entry.first);
        putString(out, entry.second);
    }
    putVarint(out, records.size());
    for (const auto &record : records) {
        out.push_back(static_cast<char>(record.kind));
        putVarint(out, record.run);
        putVarint(out, record.epoch);
        putVarint(out, zigzagEncode(record.group));
        putVarint(out, zigzagEncode(record.a));
        putVarint(out, zigzagEncode(record.b));
        putVarint(out, record.payload.size());
        for (std::int64_t word : record.payload)
            putVarint(out, zigzagEncode(word));
    }
    out.append(kTrailer, sizeof(kTrailer));
    return out;
}

void
RecordLog::save(std::ostream &out) const
{
    const std::string bytes = saveToString();
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

void
RecordLog::saveFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        support::fatal("cannot open '", path, "' for writing");
    save(out);
    if (!out)
        support::fatal("failed writing record log to '", path, "'");
}

std::optional<RecordLog>
RecordLog::load(std::istream &in, std::string &error)
{
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();

    if (bytes.size() < sizeof(kMagic) ||
        bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
        error = "not a STATS record log (bad magic)";
        return std::nullopt;
    }
    std::size_t pos = sizeof(kMagic);

    RecordLog log;
    std::uint64_t version = 0;
    if (!getVarint(bytes, pos, version)) {
        error = "truncated header";
        return std::nullopt;
    }
    if (version != kLogSchemaVersion) {
        error = "unsupported log schema version " +
                std::to_string(version) + " (expected " +
                std::to_string(kLogSchemaVersion) + ")";
        return std::nullopt;
    }
    std::uint64_t meta_count = 0;
    if (!getVarint(bytes, pos, log.rootSeed) ||
        !getVarint(bytes, pos, meta_count)) {
        error = "truncated header";
        return std::nullopt;
    }
    for (std::uint64_t i = 0; i < meta_count; ++i) {
        std::string key, value;
        if (!getString(bytes, pos, key) ||
            !getString(bytes, pos, value)) {
            error = "truncated metadata";
            return std::nullopt;
        }
        log.metadata.emplace_back(std::move(key), std::move(value));
    }

    std::uint64_t record_count = 0;
    if (!getVarint(bytes, pos, record_count)) {
        error = "truncated record count";
        return std::nullopt;
    }
    log.records.reserve(record_count);
    for (std::uint64_t i = 0; i < record_count; ++i) {
        if (pos >= bytes.size()) {
            error = "truncated at record " + std::to_string(i);
            return std::nullopt;
        }
        Record record;
        const auto kind = static_cast<unsigned char>(bytes[pos++]);
        if (kind >= kRecordKindCount) {
            error = "unknown record kind " + std::to_string(kind) +
                    " at record " + std::to_string(i);
            return std::nullopt;
        }
        record.kind = static_cast<RecordKind>(kind);
        std::uint64_t run = 0, epoch = 0, group = 0, a = 0, b = 0;
        std::uint64_t payload_size = 0;
        if (!getVarint(bytes, pos, run) ||
            !getVarint(bytes, pos, epoch) ||
            !getVarint(bytes, pos, group) ||
            !getVarint(bytes, pos, a) || !getVarint(bytes, pos, b) ||
            !getVarint(bytes, pos, payload_size)) {
            error = "truncated at record " + std::to_string(i);
            return std::nullopt;
        }
        record.run = static_cast<std::uint32_t>(run);
        record.epoch = static_cast<std::uint32_t>(epoch);
        record.group =
            static_cast<std::int32_t>(zigzagDecode(group));
        record.a = zigzagDecode(a);
        record.b = zigzagDecode(b);
        record.payload.reserve(payload_size);
        for (std::uint64_t w = 0; w < payload_size; ++w) {
            std::uint64_t word = 0;
            if (!getVarint(bytes, pos, word)) {
                error = "truncated payload at record " +
                        std::to_string(i);
                return std::nullopt;
            }
            record.payload.push_back(zigzagDecode(word));
        }
        log.records.push_back(std::move(record));
    }

    if (bytes.size() - pos != sizeof(kTrailer) ||
        bytes.compare(pos, sizeof(kTrailer), kTrailer,
                      sizeof(kTrailer)) != 0) {
        error = "missing trailer (truncated or trailing garbage)";
        return std::nullopt;
    }
    return log;
}

std::optional<RecordLog>
RecordLog::loadFile(const std::string &path, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    return load(in, error);
}

} // namespace stats::replay
