#include "replay/fault_plan.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/string_utils.hpp"

namespace stats::replay {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::ForcedMismatch: return "ForcedMismatch";
      case FaultKind::StormMismatch:  return "StormMismatch";
      case FaultKind::CorruptState:   return "CorruptState";
      case FaultKind::StalledWorker:  return "StalledWorker";
      case FaultKind::Mistrain:       return "Mistrain";
    }
    support::panic("faultKindName: unknown fault kind ",
                   static_cast<int>(kind));
}

bool
FaultPlan::active() const
{
    return !mismatchGroups.empty() || stormProbability > 0.0 ||
           !corruptGroups.empty() || corruptProbability > 0.0 ||
           stallMicros > 0.0 || mistrainAmplitude > 0.0;
}

std::string
FaultPlan::describe() const
{
    // The summary is itself a valid plan spec, so it can be pasted
    // straight back into --faults=.
    std::ostringstream out;
    out << "seed=" << seed;
    for (std::int64_t g : mismatchGroups)
        out << "; mismatch@g" << g;
    if (stormProbability > 0.0)
        out << "; storm=" << stormProbability;
    for (std::int64_t g : corruptGroups)
        out << "; corrupt@g" << g;
    if (corruptProbability > 0.0)
        out << "; corrupt=" << corruptProbability;
    if (stallMicros > 0.0) {
        out << "; stall=" << stallMicros << "us";
        if (stallProbability < 1.0)
            out << "; stallp=" << stallProbability;
    }
    if (mistrainAmplitude > 0.0)
        out << "; mistrain=" << mistrainAmplitude;
    return out.str();
}

namespace {

/** Parse "gN" (group designators in `mismatch@g3`). */
bool
parseGroup(const std::string &word, std::int64_t &group)
{
    if (word.size() < 2 || word[0] != 'g')
        return false;
    for (std::size_t i = 1; i < word.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(word[i])))
            return false;
    }
    group = std::stoll(word.substr(1));
    return true;
}

bool
parseDouble(const std::string &word, double &value)
{
    try {
        std::size_t used = 0;
        value = std::stod(word, &used);
        return used == word.size();
    } catch (...) {
        return false;
    }
}

/**
 * Deterministic per-site coin: hash of (seed, salt, x, y) mapped to
 * [0, 1). Order-independent by construction — the whole point.
 */
double
siteUniform(std::uint64_t seed, std::uint64_t salt, std::uint64_t x,
            std::uint64_t y)
{
    std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
    state ^= support::splitmix64(state) + x;
    state ^= support::splitmix64(state) + y;
    const std::uint64_t mixed = support::splitmix64(state);
    return (mixed >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kSaltStorm = 1;
constexpr std::uint64_t kSaltCorrupt = 2;
constexpr std::uint64_t kSaltStall = 3;
constexpr std::uint64_t kSaltMistrain = 4;

} // namespace

std::optional<FaultPlan>
FaultPlan::parse(const std::string &spec, std::string &error)
{
    FaultPlan plan;
    // Accept both ';' and ',' as clause separators.
    std::string normalized = spec;
    std::replace(normalized.begin(), normalized.end(), ',', ';');
    for (const auto &raw : support::split(normalized, ';')) {
        const std::string clause = support::trim(raw);
        if (clause.empty())
            continue;
        const auto eq = clause.find('=');
        const auto at = clause.find('@');
        const auto fail = [&](const std::string &why) {
            error = "fault plan: " + why + " in clause '" + clause + "'";
            return std::nullopt;
        };
        if (at != std::string::npos && eq == std::string::npos) {
            // key@gN clauses.
            const std::string key = clause.substr(0, at);
            std::int64_t group = -1;
            if (!parseGroup(clause.substr(at + 1), group))
                return fail("expected a group designator gN");
            if (key == "mismatch")
                plan.mismatchGroups.push_back(group);
            else if (key == "corrupt")
                plan.corruptGroups.push_back(group);
            else
                return fail("unknown fault site '" + key + "'");
            continue;
        }
        if (eq == std::string::npos)
            return fail("expected key=value or key@gN");
        const std::string key = clause.substr(0, eq);
        const std::string value = clause.substr(eq + 1);
        double number = 0.0;
        if (key == "seed") {
            if (!parseDouble(value, number) || number < 0)
                return fail("expected a non-negative seed");
            plan.seed = static_cast<std::uint64_t>(number);
        } else if (key == "storm") {
            if (!parseDouble(value, number) || number < 0 || number > 1)
                return fail("expected a probability in [0,1]");
            plan.stormProbability = number;
        } else if (key == "corrupt") {
            if (!parseDouble(value, number) || number < 0 || number > 1)
                return fail("expected a probability in [0,1]");
            plan.corruptProbability = number;
        } else if (key == "stall") {
            std::string micros = value;
            if (support::endsWith(micros, "us"))
                micros = micros.substr(0, micros.size() - 2);
            if (!parseDouble(micros, number) || number < 0)
                return fail("expected non-negative microseconds");
            plan.stallMicros = number;
        } else if (key == "stallp") {
            if (!parseDouble(value, number) || number < 0 || number > 1)
                return fail("expected a probability in [0,1]");
            plan.stallProbability = number;
        } else if (key == "mistrain") {
            if (!parseDouble(value, number) || number < 0)
                return fail("expected a non-negative amplitude");
            plan.mistrainAmplitude = number;
        } else {
            return fail("unknown key '" + key + "'");
        }
    }
    return plan;
}

std::optional<FaultPlan>
FaultPlan::fromSpec(const std::string &spec, std::string &error)
{
    std::ifstream in(spec);
    if (!in)
        return parse(spec, error);
    std::string merged;
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = support::trim(line);
        if (line.empty())
            continue;
        if (!merged.empty())
            merged += ';';
        merged += line;
    }
    return parse(merged, error);
}

bool
FaultPlan::forcesMismatch(std::uint32_t run, std::int32_t group) const
{
    for (std::int64_t g : mismatchGroups) {
        if (g == group)
            return true;
    }
    if (stormProbability > 0.0 &&
        siteUniform(seed, kSaltStorm, run,
                    static_cast<std::uint64_t>(group)) <
            stormProbability) {
        return true;
    }
    return false;
}

bool
FaultPlan::corruptsSpecState(std::uint32_t run, std::int32_t group) const
{
    for (std::int64_t g : corruptGroups) {
        if (g == group)
            return true;
    }
    if (corruptProbability > 0.0 &&
        siteUniform(seed, kSaltCorrupt, run,
                    static_cast<std::uint64_t>(group)) <
            corruptProbability) {
        return true;
    }
    return false;
}

double
FaultPlan::stallSeconds(int task_kind, std::int32_t group) const
{
    if (stallMicros <= 0.0)
        return 0.0;
    if (stallProbability < 1.0 &&
        siteUniform(seed, kSaltStall,
                    static_cast<std::uint64_t>(task_kind),
                    static_cast<std::uint64_t>(group)) >=
            stallProbability) {
        return 0.0;
    }
    return stallMicros * 1e-6;
}

double
FaultPlan::mistrainFactor(std::uint64_t evaluation) const
{
    if (mistrainAmplitude <= 0.0)
        return 1.0;
    const double u =
        2.0 * siteUniform(seed, kSaltMistrain, evaluation, 0) - 1.0;
    return 1.0 + mistrainAmplitude * u;
}

} // namespace stats::replay
