/**
 * @file
 * The process-wide record/replay session (docs/REPLAY.md).
 *
 * Three modes:
 *  - **Off** (default): every hook is a cheap no-op.
 *  - **Record**: the speculation engine's nondeterministic choice
 *    points — validation verdicts, re-executions, the commit/squash/
 *    abort order, per-run configuration and stats fingerprints — are
 *    appended to an in-memory RecordLog, to be saved at exit.
 *  - **Replay**: a loaded log drives the engine. At each choice
 *    point the engine's *computed* value is compared against the
 *    logged one; the logged value is then **forced** so execution
 *    stays on the recorded path, and the first disagreement is
 *    reported as the run's divergence (epoch, kind, expected vs
 *    actual).
 *
 * A FaultPlan composes with any mode: injections mutate the engine's
 * decisions *before* they are recorded or compared, so a faulty run
 * records — and replays, under the same plan — exactly.
 *
 * Sessions are **scoped**: every instrumentation site resolves the
 * active session through `ReplaySession::current()`, which returns a
 * thread-locally installed session when one is present and the
 * process-wide `global()` singleton otherwise. Code that wants an
 * isolated record/replay scope (the serving plane runs one per plan)
 * constructs its own ReplaySession and pins it to the executing
 * thread with a `ScopedSessionInstall`; single-run tools (statscc
 * --record/--replay, the oracle, the fuzzer) keep using `global()`
 * unchanged. The engine runs its computation inline on the thread
 * that owns the installation (SimExecutor's timing is virtual), so a
 * thread-local is exactly the right scope.
 *
 * Threading contract: *within one session*, mode changes
 * (start/finish/fault-plan setters) are quiescent-time operations —
 * call them only when no engine is running against that session. The
 * engine-side hooks are invoked from executor-serialized completion
 * callbacks; the executor-side stall hook may be called concurrently
 * but only reads the (immutable-while-running) plan. Distinct
 * sessions installed on distinct threads are fully independent.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "replay/fault_plan.hpp"
#include "replay/record_log.hpp"

namespace stats::replay {

enum class Mode : std::uint8_t
{
    Off,
    Record,
    Replay,
};

/** First point where a replayed execution left the recorded path. */
struct Divergence
{
    std::uint32_t run = 0;
    std::uint32_t epoch = 0;

    /** What the log expected at this epoch. */
    RecordKind expectedKind = RecordKind::Commit;
    std::int32_t expectedGroup = -1;
    std::int64_t expectedValue = 0;

    /** What the execution actually did. */
    RecordKind actualKind = RecordKind::Commit;
    std::int32_t actualGroup = -1;
    std::int64_t actualValue = 0;

    /** Human-readable one-liner. */
    std::string describe() const;
};

/** Outcome of a completed replay. */
struct ReplayReport
{
    bool diverged = false;
    Divergence first;
    std::uint32_t runsReplayed = 0;
    std::uint64_t recordsMatched = 0;
};

/** What ReplaySession::matchVerdict decided (engine emits the trace). */
struct VerdictOutcome
{
    /** The verdict the engine must use: the matched-original index,
     *  or -1 for no match. */
    int verdict = -1;
    bool faultInjected = false;
    std::int64_t faultKind = 0; ///< FaultKind when faultInjected.
    bool diverged = false;   ///< This call found the first divergence.
};

/**
 * A record/replay session. All engine hooks are safe to call in any
 * mode; in Off mode with no fault plan they reduce to one relaxed
 * atomic load. Most callers reach the session through `current()`.
 */
class ReplaySession
{
  public:
    ReplaySession() = default;
    ReplaySession(const ReplaySession &) = delete;
    ReplaySession &operator=(const ReplaySession &) = delete;

    /** The process-wide default session. */
    static ReplaySession &global();

    /** The session governing this thread: the thread-locally
     *  installed one if present, else `global()`. */
    static ReplaySession &current();

    /** Install `session` as this thread's current session (nullptr
     *  reverts to global()); returns the previous installation.
     *  Prefer ScopedSessionInstall. */
    static ReplaySession *installOnThread(ReplaySession *session);

    // ------------------------------------------------ lifecycle
    /** Begin recording into a fresh log pinned to `root_seed`. */
    void startRecording(std::uint64_t root_seed);

    /** Attach identifying metadata to the log being recorded. */
    void setMetadata(const std::string &key, const std::string &value);

    /** Stop recording and hand the log to the caller. */
    RecordLog finishRecording();

    /** Begin replaying a loaded log. */
    void startReplay(RecordLog log);

    /** Stop replaying; report what happened. */
    ReplayReport finishReplay();

    /** Install (or clear, with an inactive plan) the fault plan. */
    void setFaultPlan(FaultPlan plan);
    const FaultPlan &faultPlan() const { return _plan; }

    Mode mode() const
    {
        return _mode.load(std::memory_order_relaxed);
    }
    bool faultsActive() const
    {
        return _faultsActive.load(std::memory_order_relaxed);
    }
    /** True when any hook has real work (record/replay or faults). */
    bool engaged() const
    {
        return mode() != Mode::Off || faultsActive();
    }

    /** Root seed of the log being recorded or replayed. */
    std::uint64_t rootSeed() const;

    /** Replay-so-far state (valid in Replay mode). */
    bool diverged() const { return _diverged; }
    const Divergence &firstDivergence() const { return _first; }

    /** Injections performed since the session started, per kind. */
    std::uint64_t faultCount(FaultKind kind) const;
    /** Count a fault injected outside the engine (stall, mistrain). */
    void countExternalFault(FaultKind kind);

    // ------------------------------------------------ engine hooks
    /** A SpecEngine started; returns true on a (first) divergence. */
    bool engineRunBegin(const RunConfigRecord &config);

    /**
     * The engine computed a validation verdict for `group`. Applies
     * fault injections, records or replay-checks the result, and
     * returns the verdict the engine must use.
     */
    VerdictOutcome matchVerdict(std::int32_t group, int computed);

    /** Fault hook: replace group's speculative start with a stale
     *  clone of the initial state? Records the injection. */
    bool corruptSpecState(std::int32_t group);

    /** Outcome hooks; each returns true on a (first) divergence. */
    bool reexecution(std::int32_t group, int attempt);
    bool commit(std::int32_t group);
    bool squash(std::int32_t group, std::int32_t aborting_group);
    bool abortSpeculation(std::int32_t group);

    /** The engine finished; fingerprints its EngineStats. */
    bool engineRunEnd(const RunStatsRecord &stats);

    // ------------------------------------------------ executor hook
    /** Seconds to stall a task tagged (kind, group); 0 = none. */
    double taskStallSeconds(int task_kind, std::int32_t group) const;

    // ------------------------------------------------ autotuner hook
    /** Perturb a measured objective under a mistraining fault. */
    double mistrainObjective(double objective);

  private:
    /** Append in record mode / verify in replay mode. */
    bool step(RecordKind kind, std::int32_t group, std::int64_t a,
              std::int64_t b, std::vector<std::int64_t> payload,
              std::int64_t *forced_a);
    void recordStep(Record record);
    bool replayStep(const Record &actual, std::int64_t *forced_a);
    void reportDivergence(const Record *expected, const Record &actual);

    std::atomic<Mode> _mode{Mode::Off};
    std::atomic<bool> _faultsActive{false};
    FaultPlan _plan;

    RecordLog _log;
    std::uint32_t _run = 0;      ///< Current engine-run index.
    std::uint32_t _epoch = 0;    ///< Next epoch within the run.
    bool _runOpen = false;

    // Replay state.
    std::size_t _cursor = 0;
    std::uint64_t _matched = 0;
    bool _diverged = false;
    bool _structuralLoss = false; ///< Stop consuming after kind skew.
    Divergence _first;

    // Touched from worker threads (stalls) and the tuner (mistrain),
    // not only from serialized engine callbacks — hence atomic.
    std::atomic<std::uint64_t> _faultCounts[kFaultKindCount] = {};
    std::atomic<std::uint64_t> _mistrainEvaluations{0};
};

/**
 * RAII: pin `session` to the constructing thread for the object's
 * lifetime, restoring the previous installation (usually none) on
 * destruction. Hooks fired from this thread — and only this thread —
 * route to `session` instead of the global singleton.
 */
class ScopedSessionInstall
{
  public:
    explicit ScopedSessionInstall(ReplaySession &session)
        : _previous(ReplaySession::installOnThread(&session))
    {
    }
    ~ScopedSessionInstall()
    {
        ReplaySession::installOnThread(_previous);
    }
    ScopedSessionInstall(const ScopedSessionInstall &) = delete;
    ScopedSessionInstall &
    operator=(const ScopedSessionInstall &) = delete;

  private:
    ReplaySession *_previous;
};

/** Cheap per-thread gate for instrumentation sites. */
inline bool
sessionEngaged()
{
    return ReplaySession::current().engaged();
}

} // namespace stats::replay
