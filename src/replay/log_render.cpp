#include "replay/log_render.hpp"

#include <algorithm>
#include <cstdio>

#include "replay/fault_plan.hpp"

namespace stats::replay {

namespace {

/** snprintf into a std::string (the lines are printf-formatted). */
template <class... Args>
std::string
format(const char *fmt, Args... args)
{
    char buffer[256];
    std::snprintf(buffer, sizeof buffer, fmt, args...);
    return buffer;
}

} // namespace

std::string
renderRecord(const Record &record)
{
    std::string out = format("  [run %u epoch %4u] %-13s", record.run,
                             record.epoch, recordKindName(record.kind));
    if (record.group >= 0)
        out += format(" group %-4d", record.group);
    switch (record.kind) {
      case RecordKind::RunBegin:
        if (auto config = decodeConfig(record.payload)) {
            out += format(" G=%lld k=%lld R=%lld b=%lld sd=%lld "
                          "inner=%lld inputs=%lld%s",
                          static_cast<long long>(config->groupSize),
                          static_cast<long long>(config->auxWindow),
                          static_cast<long long>(config->maxReexecutions),
                          static_cast<long long>(config->rollbackDepth),
                          static_cast<long long>(config->sdThreads),
                          static_cast<long long>(config->innerThreads),
                          static_cast<long long>(config->inputCount),
                          config->useAuxiliary ? "" : " [conventional]");
        }
        break;
      case RecordKind::MatchVerdict:
        out += format(" verdict=%lld%s", static_cast<long long>(record.a),
                      record.b != 0 ? " [fault-forced]" : "");
        break;
      case RecordKind::Reexec:
        out += format(" attempt=%lld", static_cast<long long>(record.a));
        break;
      case RecordKind::Squash:
        out += format(" abortedBy=%lld", static_cast<long long>(record.a));
        break;
      case RecordKind::FaultInjected:
        out += format(" kind=%s",
                      faultKindName(static_cast<FaultKind>(record.a)));
        break;
      case RecordKind::RunEnd:
        if (auto stats = decodeStats(record.payload)) {
            out += format(
                " validations=%lld mismatches=%lld reexecs=%lld "
                "aborts=%lld squashed=%lld invocations=%lld",
                static_cast<long long>(stats->validations),
                static_cast<long long>(stats->mismatches),
                static_cast<long long>(stats->reexecutions),
                static_cast<long long>(stats->aborts),
                static_cast<long long>(stats->squashedGroups),
                static_cast<long long>(stats->invocations));
        }
        break;
      default:
        break;
    }
    out += "\n";
    return out;
}

DiffRender
renderDiff(const RecordLog &a, const RecordLog &b)
{
    DiffRender render;
    if (a.rootSeed != b.rootSeed) {
        render.text +=
            format("root seeds differ: %llu vs %llu\n",
                   static_cast<unsigned long long>(a.rootSeed),
                   static_cast<unsigned long long>(b.rootSeed));
    }
    const std::size_t common =
        std::min(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < common; ++i) {
        if (a.records[i] == b.records[i])
            continue;
        render.text += format("first difference at record %zu:\n", i);
        render.text += "< " + renderRecord(a.records[i]);
        render.text += "> " + renderRecord(b.records[i]);
        return render;
    }
    if (a.records.size() != b.records.size()) {
        render.text += format(
            "records differ in count: %zu vs %zu (first %zu "
            "identical)\n",
            a.records.size(), b.records.size(), common);
        return render;
    }
    render.text +=
        format("logs are identical (%zu records)\n", a.records.size());
    render.identical = true;
    return render;
}

} // namespace stats::replay
