/**
 * @file
 * Declarative, seed-deterministic fault injection for the speculation
 * engine (docs/REPLAY.md §4 is the grammar reference).
 *
 * A FaultPlan is parsed from a compact spec string (or a file holding
 * one) and asked yes/no questions at the engine's fault points. Every
 * answer is a pure hash of (plan seed, site coordinates) — never a
 * draw from a shared sequential generator — so the same plan injects
 * the same faults at the same sites regardless of thread timing or
 * how many questions were asked before. That is what lets a faulty
 * run be recorded and replayed bit-for-bit.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace stats::replay {

/** What a fault injection did (Record/trace `a` argument). */
enum class FaultKind : std::uint8_t
{
    ForcedMismatch, ///< Validation verdict forced to "no match".
    StormMismatch,  ///< Probabilistic verdict override (abort storms).
    CorruptState,   ///< Speculative start replaced by a stale state.
    StalledWorker,  ///< Executor delayed a task before dispatch.
    Mistrain,       ///< Autotuner objective perturbed.
};

inline constexpr int kFaultKindCount = 5;

const char *faultKindName(FaultKind kind);

/** A parsed fault plan; inert when default-constructed. */
struct FaultPlan
{
    /** Root of every injection decision (`seed=N`). */
    std::uint64_t seed = 1;

    /** Groups whose validation is always forced to mismatch
     *  (`mismatch@gN`, repeatable). */
    std::vector<std::int64_t> mismatchGroups;

    /** Per-validation probability of a forced mismatch (`storm=P`). */
    double stormProbability = 0.0;

    /** Groups whose speculative start is replaced by a stale clone of
     *  the initial state (`corrupt@gN`, repeatable). */
    std::vector<std::int64_t> corruptGroups;

    /** Per-group probability of the same corruption (`corrupt=P`). */
    double corruptProbability = 0.0;

    /** Pre-dispatch delay injected by ThreadExecutor (`stall=MICROS`),
     *  applied to each task with probability stallProbability
     *  (`stallp=P`, default 1 when stall is set). */
    double stallMicros = 0.0;
    double stallProbability = 1.0;

    /** Relative amplitude of autotuner objective noise
     *  (`mistrain=A`): measured objectives are scaled by
     *  1 + A * u, u deterministic in [-1, 1). */
    double mistrainAmplitude = 0.0;

    bool active() const;

    /** One-line human summary of what the plan injects. */
    std::string describe() const;

    /**
     * Parse a plan spec: `;`/`,`-separated clauses (see REPLAY.md §4).
     * Returns nullopt and sets `error` on an unknown clause or a
     * malformed value.
     */
    static std::optional<FaultPlan> parse(const std::string &spec,
                                          std::string &error);

    /**
     * Resolve a `--faults=` argument: if `spec` names a readable
     * file, parse the file's contents (ignoring blank lines and
     * `#` comments), else parse `spec` itself.
     */
    static std::optional<FaultPlan> fromSpec(const std::string &spec,
                                             std::string &error);

    // -- injection decisions (pure functions of seed + coordinates) --

    /** Forced-mismatch decision at (run, group) validation. */
    bool forcesMismatch(std::uint32_t run, std::int32_t group) const;

    /** Stale-state substitution decision at (run, group) aux result. */
    bool corruptsSpecState(std::uint32_t run, std::int32_t group) const;

    /** Seconds a task at (task kind, group) is stalled; 0 = none. */
    double stallSeconds(int task_kind, std::int32_t group) const;

    /** Multiplicative objective noise for autotuner evaluation i. */
    double mistrainFactor(std::uint64_t evaluation) const;
};

} // namespace stats::replay
