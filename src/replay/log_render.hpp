/**
 * @file
 * Text rendering of record logs: the single source of the line
 * formats `stats-replay inspect` and `stats-replay diff` print.
 *
 * Extracted from the tool so the formats can be golden-tested
 * (tests/replay_diff_golden_test.cpp): the renderers return strings
 * byte-identical to what the tool writes to stdout.
 */

#pragma once

#include <string>

#include "replay/record_log.hpp"

namespace stats::replay {

/** One record listing line, trailing newline included. */
std::string renderRecord(const Record &record);

struct DiffRender
{
    /** Exactly what `stats-replay diff a b` prints. */
    std::string text;

    /** True when the logs match (the tool's exit-0 condition). */
    bool identical = false;
};

/** Compare two logs the way `stats-replay diff` does. */
DiffRender renderDiff(const RecordLog &a, const RecordLog &b);

} // namespace stats::replay
