/**
 * @file
 * The deterministic record log: a compact, schema-versioned binary
 * capture of every nondeterministic choice point the speculation
 * engine takes (docs/REPLAY.md is the canonical format reference;
 * tests/replay_test.cpp keeps the two in lockstep).
 *
 * One log covers a whole *process* — a `statscc run`, a fig harness,
 * a tuning session — as a sequence of engine-run sections. Each
 * engine run contributes a RunBegin record (configuration
 * fingerprint), one record per choice point in serialized-callback
 * order ("epochs"), and a RunEnd record (EngineStats fingerprint).
 *
 * The format is fully deterministic: no timestamps, no pointers, no
 * hashes of addresses — two recordings of the same seeded run are
 * byte-identical, which is what the CI replay-determinism job
 * asserts with a plain byte compare.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace stats::replay {

/** Bumped on any change to the record kinds or their payloads. */
inline constexpr std::uint64_t kLogSchemaVersion = 1;

/** Every record kind the engine emits. Payloads: docs/REPLAY.md §2. */
enum class RecordKind : std::uint8_t
{
    RunBegin,      ///< Engine run started (payload: config fingerprint).
    MatchVerdict,  ///< Speculative-state check verdict (a: verdict,
                   ///< b: 1 if a fault forced it).
    Reexec,        ///< Producer re-execution submitted (a: attempt #).
    Commit,        ///< Group committed.
    Squash,        ///< Group squashed (a: aborting group).
    Abort,         ///< Speculation aborted at `group` (a echoes it).
    FaultInjected, ///< Fault-plan injection (a: FaultKind, b: detail).
    RunEnd,        ///< Engine run finished (payload: EngineStats).
};

inline constexpr int kRecordKindCount = 8;

/** Stable name of a record kind (as documented in REPLAY.md). */
const char *recordKindName(RecordKind kind);

/**
 * SpecConfig fingerprint captured by every RunBegin. A replay whose
 * engine is configured differently diverges immediately — the log
 * only makes sense against the same configuration.
 */
struct RunConfigRecord
{
    std::int64_t useAuxiliary = 0;
    std::int64_t groupSize = 0;
    std::int64_t auxWindow = 0;
    std::int64_t maxReexecutions = 0;
    std::int64_t rollbackDepth = 0;
    std::int64_t sdThreads = 0;
    std::int64_t innerThreads = 0;
    std::int64_t inputCount = 0;

    bool operator==(const RunConfigRecord &) const = default;
};

/** EngineStats fingerprint captured by every RunEnd. */
struct RunStatsRecord
{
    std::int64_t validations = 0;
    std::int64_t mismatches = 0;
    std::int64_t reexecutions = 0;
    std::int64_t aborts = 0;
    std::int64_t squashedGroups = 0;
    std::int64_t invocations = 0;

    bool operator==(const RunStatsRecord &) const = default;
};

/**
 * One recorded choice point. `run` is the engine-run index within the
 * log; `epoch` the record's ordinal within its run (the serialized
 * completion-callback order, which is the engine's decision order).
 */
struct Record
{
    RecordKind kind = RecordKind::Commit;
    std::uint32_t run = 0;
    std::uint32_t epoch = 0;
    std::int32_t group = -1;
    std::int64_t a = 0;
    std::int64_t b = 0;
    /** RunBegin/RunEnd payload (flattened fingerprint fields). */
    std::vector<std::int64_t> payload;

    bool operator==(const Record &) const = default;
};

/** Flatten/recover the RunBegin payload. */
std::vector<std::int64_t> encodeConfig(const RunConfigRecord &config);
std::optional<RunConfigRecord>
decodeConfig(const std::vector<std::int64_t> &payload);

/** Flatten/recover the RunEnd payload. */
std::vector<std::int64_t> encodeStats(const RunStatsRecord &stats);
std::optional<RunStatsRecord>
decodeStats(const std::vector<std::int64_t> &payload);

/** An in-memory record log plus its identifying header fields. */
struct RecordLog
{
    /** Root seed the recorded process was pinned with (0 = unpinned). */
    std::uint64_t rootSeed = 0;

    /**
     * Free-form identification written by the recording surface
     * (benchmark name, mode, threads, ...). Keys are unique; order is
     * insertion order and part of the byte format.
     */
    std::vector<std::pair<std::string, std::string>> metadata;

    std::vector<Record> records;

    void setMeta(const std::string &key, const std::string &value);
    std::string meta(const std::string &key,
                     const std::string &fallback = "") const;

    /** Number of engine-run sections (RunBegin records). */
    std::uint32_t runCount() const;

    /** Serialize to the binary format (deterministic bytes). */
    void save(std::ostream &out) const;
    std::string saveToString() const;
    /** Write to a file; fatal() on I/O failure. */
    void saveFile(const std::string &path) const;

    /**
     * Parse a serialized log. Returns nullopt and sets `error` on a
     * bad magic, unsupported schema version, or truncated/corrupt
     * payload.
     */
    static std::optional<RecordLog> load(std::istream &in,
                                         std::string &error);
    static std::optional<RecordLog> loadFile(const std::string &path,
                                             std::string &error);
};

// ---------------------------------------------------------------------
// Varint codec (exposed for tests; the log format building block)
// ---------------------------------------------------------------------

/** Append a LEB128-encoded unsigned value. */
void putVarint(std::string &out, std::uint64_t value);

/** Decode a LEB128 value; advances `pos`. False on truncation. */
bool getVarint(const std::string &in, std::size_t &pos,
               std::uint64_t &value);

/** Zigzag mapping for signed values. */
std::uint64_t zigzagEncode(std::int64_t value);
std::int64_t zigzagDecode(std::uint64_t value);

} // namespace stats::replay
