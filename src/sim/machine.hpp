/**
 * @file
 * Description of the simulated many-core platform.
 *
 * Models the paper's evaluation machine: a dual-socket Dell R730 with
 * two 14-core Intel Xeon E5-2695 v3 (Haswell) processors, 2-way
 * Hyper-Threading, and a NUMA memory system (paper section 4.1).
 */

#pragma once

#include <string>
#include <vector>

namespace stats::sim {

/**
 * Static platform parameters.
 *
 * The defaults reproduce the paper's platform. The Hyper-Threading
 * speed factor encodes Intel's guidance (cited by the paper) that a
 * successful use of HT yields ~30% extra throughput per physical
 * core: two co-resident hardware threads each run at 0.65x, for a
 * combined 1.3x.
 */
struct MachineConfig
{
    int sockets = 2;
    int coresPerSocket = 14;

    /** Whether the OS exposes HT sibling hardware threads. */
    bool hyperThreading = false;

    /** Per-thread speed when both siblings of a core are busy. */
    double htSpeedFactor = 0.65;

    /**
     * Multiplier applied to the memory-bound fraction of every task
     * when the allocation spans both sockets (remote accesses cross
     * QPI; paper section 4.3, "The multi-socket effect").
     */
    double numaMemPenalty = 1.45;

    /** Fixed per-task dispatch/synchronization overhead, seconds. */
    double dispatchOverhead = 12e-6;

    /** How logical threads are laid out onto the machine. */
    enum class Placement
    {
        /** Physical cores of socket 0, then socket 1, then siblings. */
        FillSocketsFirst,
        /** All of socket 0 (physical then siblings), then socket 1. */
        SingleSocketFirst,
    };
    Placement placement = Placement::FillSocketsFirst;

    int physicalCores() const { return sockets * coresPerSocket; }
    int logicalCpus() const
    {
        return physicalCores() * (hyperThreading ? 2 : 1);
    }
};

/** One allocated logical core: where it lives on the machine. */
struct LogicalCore
{
    int socket;
    int physicalCore; ///< Global physical-core index.
    int hwThread;     ///< 0 = primary, 1 = HT sibling.
};

/**
 * Compute the placement of `threads` logical cores on the machine.
 *
 * Clamps to the machine's capacity. The returned vector's index is
 * the logical-core id used by the simulator.
 */
std::vector<LogicalCore> placeThreads(const MachineConfig &config,
                                      int threads);

/** True if the placement uses more than one socket. */
bool spansSockets(const std::vector<LogicalCore> &placement);

/** Human-readable one-line description. */
std::string describe(const MachineConfig &config);

} // namespace stats::sim
