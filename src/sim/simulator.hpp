/**
 * @file
 * Discrete-event simulator of a many-core shared-memory platform.
 *
 * This is the substitute for the paper's 28-core evaluation machine
 * (see DESIGN.md section 2): tasks carry real computation, but their
 * *timing* is virtual, derived from a work estimate plus the modeled
 * Hyper-Threading, NUMA, and dispatch-overhead effects. Running the
 * same task graph with different thread counts yields the scalability
 * curves of the paper's figures on a single-core host.
 *
 * Scheduling model:
 *  - tasks are dispatched FIFO onto the lowest-numbered free logical
 *    cores once `width` cores are free (gangs are space-shared);
 *  - a logical core runs at speed 1.0 when its HT sibling is idle and
 *    at `htSpeedFactor` when both siblings are busy; speeds are
 *    re-evaluated on every occupancy change and remaining work is
 *    rescaled accordingly;
 *  - when the thread placement spans both sockets, the memory-bound
 *    fraction of every task is stretched by `numaMemPenalty`.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "exec/task.hpp"
#include "sim/machine.hpp"

namespace stats::sim {

/** Aggregate activity counters used by the energy model. */
struct ActivityStats
{
    /** Virtual time of the last completion. */
    double makespan = 0.0;
    /** Sum over logical cores of their busy time (seconds). */
    double busyCoreSeconds = 0.0;
    /** Number of tasks executed (excluding cancelled ones). */
    std::uint64_t tasksRun = 0;
    /** Number of tasks skipped because their cancel token was set. */
    std::uint64_t tasksCancelled = 0;
};

/** Discrete-event simulator over a fixed logical-core allocation. */
class Simulator
{
  public:
    /**
     * @param config  the machine model
     * @param threads logical cores available to this run (clamped to
     *                the machine's capacity; placement follows
     *                config.placement)
     */
    Simulator(MachineConfig config, int threads);

    /** Enqueue a task (legal from within completion callbacks). */
    void submit(exec::Task task);

    /** Process events until no task is pending or running. */
    void run();

    double now() const { return _now; }
    int threads() const { return static_cast<int>(_placement.size()); }
    bool numaActive() const { return _numaActive; }
    const MachineConfig &config() const { return _config; }
    const ActivityStats &activity() const { return _activity; }

  private:
    struct Running
    {
        exec::Task task;
        std::vector<int> cores;
        double remaining;  ///< Work units left (NUMA-adjusted).
        double speed;      ///< Aggregate speed at _lastUpdate.
        double lastUpdate; ///< Virtual time of the last rescale.
        double startTime;
        std::uint64_t gen; ///< Invalidates stale completion events.
    };

    struct Event
    {
        double time;
        std::uint64_t seq; ///< Tie-break for determinism.
        std::uint64_t id;  ///< Running-task id.
        std::uint64_t gen;

        bool operator>(const Event &other) const
        {
            if (time != other.time)
                return time > other.time;
            return seq > other.seq;
        }
    };

    double coreSpeed(int core) const;
    double taskSpeed(const Running &r) const;
    void rescaleRunning();
    void scheduleCompletion(std::uint64_t id, Running &r);
    void dispatchReady();
    void finish(std::uint64_t id);

    MachineConfig _config;
    std::vector<LogicalCore> _placement;
    std::vector<int> _siblingOf;  ///< Logical sibling index or -1.
    std::vector<bool> _coreBusy;
    bool _numaActive;

    std::deque<exec::Task> _ready;
    std::unordered_map<std::uint64_t, Running> _running;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        _events;

    double _now = 0.0;
    std::uint64_t _nextId = 1;
    std::uint64_t _nextSeq = 1;
    ActivityStats _activity;
    bool _inRun = false;
};

} // namespace stats::sim
