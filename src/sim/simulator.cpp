#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "observability/trace.hpp"
#include "support/log.hpp"

namespace stats::sim {

Simulator::Simulator(MachineConfig config, int threads)
    : _config(config), _placement(placeThreads(config, threads))
{
    _numaActive = spansSockets(_placement);
    _coreBusy.assign(_placement.size(), false);

    // Precompute HT sibling relations among *allocated* logical cores.
    _siblingOf.assign(_placement.size(), -1);
    for (std::size_t i = 0; i < _placement.size(); ++i) {
        for (std::size_t j = i + 1; j < _placement.size(); ++j) {
            if (_placement[i].physicalCore == _placement[j].physicalCore &&
                _placement[i].hwThread != _placement[j].hwThread) {
                _siblingOf[i] = static_cast<int>(j);
                _siblingOf[j] = static_cast<int>(i);
            }
        }
    }
}

double
Simulator::coreSpeed(int core) const
{
    const int sibling = _siblingOf[static_cast<std::size_t>(core)];
    if (sibling >= 0 && _coreBusy[static_cast<std::size_t>(sibling)])
        return _config.htSpeedFactor;
    return 1.0;
}

double
Simulator::taskSpeed(const Running &r) const
{
    // Gang tasks carry a self-contained duration (their cost model
    // already accounts for how its threads share physical cores, see
    // platform::effectiveParallelism); charging the sibling-sharing
    // factor again would double-count HT.
    if (r.cores.size() > 1)
        return 1.0;
    return coreSpeed(r.cores.front());
}

void
Simulator::submit(exec::Task task)
{
    if (!task.run)
        support::panic("sim::Simulator: task without a run function");
    task.width = std::max(1, std::min(task.width, threads()));
    _ready.push_back(std::move(task));
}

void
Simulator::scheduleCompletion(std::uint64_t id, Running &r)
{
    r.gen += 1;
    const double duration = r.speed > 0.0 ? r.remaining / r.speed : 0.0;
    _events.push(Event{_now + duration, _nextSeq++, id, r.gen});
}

void
Simulator::rescaleRunning()
{
    for (auto &[id, r] : _running) {
        // Bring the remaining-work estimate up to date, then check
        // whether the aggregate speed changed under the new occupancy.
        r.remaining -= r.speed * (_now - r.lastUpdate);
        r.remaining = std::max(0.0, r.remaining);
        r.lastUpdate = _now;
        const double speed = taskSpeed(r);
        if (speed != r.speed) {
            r.speed = speed;
            scheduleCompletion(id, r);
        }
    }
}

void
Simulator::dispatchReady()
{
    bool occupancy_changed = false;
    while (!_ready.empty()) {
        // Cancelled tasks are skipped without consuming cores or time.
        exec::Task &head = _ready.front();
        if (head.cancel && head.cancel->load()) {
            exec::Task task = std::move(head);
            _ready.pop_front();
            ++_activity.tasksCancelled;
            if (obs::traceActive() &&
                task.tag.kind != obs::TaskKind::None) {
                obs::Trace::global().record(
                    obs::EventType::TaskCancelled, task.tag.group,
                    task.tag.inputBegin, task.tag.inputEnd, _now,
                    obs::kFrontierTrack, task.tag.arg);
            }
            if (task.onComplete)
                task.onComplete();
            continue;
        }

        // Gather the lowest-numbered free logical cores.
        std::vector<int> free_cores;
        for (std::size_t c = 0;
             c < _coreBusy.size() &&
             free_cores.size() < static_cast<std::size_t>(head.width);
             ++c) {
            if (!_coreBusy[c])
                free_cores.push_back(static_cast<int>(c));
        }
        if (free_cores.size() < static_cast<std::size_t>(head.width))
            break; // Strict FIFO: wait for the head to fit.

        exec::Task task = std::move(head);
        _ready.pop_front();

        // Run the real computation now; it reports its virtual cost.
        exec::Work work = task.run();
        double effective = work.units *
            ((1.0 - work.memBound) +
             work.memBound * (_numaActive ? _config.numaMemPenalty : 1.0));
        effective += _config.dispatchOverhead;

        const std::uint64_t id = _nextId++;
        Running r;
        r.task = std::move(task);
        r.cores = std::move(free_cores);
        for (int core : r.cores)
            _coreBusy[static_cast<std::size_t>(core)] = true;
        r.remaining = effective;
        r.lastUpdate = _now;
        r.startTime = _now;
        r.gen = 0;
        r.speed = 0.0; // Recomputed below once occupancy is final.
        _running.emplace(id, std::move(r));
        occupancy_changed = true;
        ++_activity.tasksRun;
    }

    if (occupancy_changed) {
        // New occupancy may slow down HT siblings; rescale everything
        // (including the just-dispatched tasks, whose speed is stale).
        for (auto &[id, r] : _running) {
            r.remaining -= r.speed * (_now - r.lastUpdate);
            r.remaining = std::max(0.0, r.remaining);
            r.lastUpdate = _now;
            r.speed = taskSpeed(r);
            scheduleCompletion(id, r);
        }
    }
}

void
Simulator::finish(std::uint64_t id)
{
    auto it = _running.find(id);
    if (it == _running.end())
        support::panic("sim::Simulator: completion for unknown task");
    Running r = std::move(it->second);
    _running.erase(it);

    for (int core : r.cores)
        _coreBusy[static_cast<std::size_t>(core)] = false;
    _activity.busyCoreSeconds +=
        (_now - r.startTime) * static_cast<double>(r.cores.size());
    _activity.makespan = std::max(_activity.makespan, _now);

    // The span is recorded before onComplete runs, so engine-emitted
    // instants (Commit, ValidateMatch, ...) always sequence after the
    // task-end event that triggered them.
    if (obs::traceActive() && r.task.tag.kind != obs::TaskKind::None) {
        obs::Trace::global().recordSpan(r.task.tag, r.startTime, _now,
                                        r.cores.front());
    }

    if (r.task.onComplete)
        r.task.onComplete();
}

void
Simulator::run()
{
    if (_inRun)
        support::panic("sim::Simulator::run is not re-entrant");
    _inRun = true;

    dispatchReady();
    while (!_events.empty()) {
        const Event event = _events.top();
        _events.pop();

        auto it = _running.find(event.id);
        if (it == _running.end() || it->second.gen != event.gen)
            continue; // Stale event superseded by a rescale.

        _now = std::max(_now, event.time);
        finish(event.id);
        rescaleRunning();
        dispatchReady();
    }

    if (!_ready.empty())
        support::panic("sim::Simulator: ready tasks but no free cores");
    _inRun = false;
}

} // namespace stats::sim
