#include "sim/machine.hpp"

#include <algorithm>
#include <sstream>

namespace stats::sim {

std::vector<LogicalCore>
placeThreads(const MachineConfig &config, int threads)
{
    const int capacity = config.logicalCpus();
    threads = std::max(1, std::min(threads, capacity));

    // Build the machine's logical cpus in placement-policy order.
    std::vector<LogicalCore> order;
    order.reserve(capacity);

    const int hw_threads = config.hyperThreading ? 2 : 1;
    if (config.placement == MachineConfig::Placement::FillSocketsFirst) {
        for (int hw = 0; hw < hw_threads; ++hw) {
            for (int s = 0; s < config.sockets; ++s) {
                for (int c = 0; c < config.coresPerSocket; ++c) {
                    order.push_back({s, s * config.coresPerSocket + c, hw});
                }
            }
        }
    } else { // SingleSocketFirst
        for (int s = 0; s < config.sockets; ++s) {
            for (int hw = 0; hw < hw_threads; ++hw) {
                for (int c = 0; c < config.coresPerSocket; ++c) {
                    order.push_back({s, s * config.coresPerSocket + c, hw});
                }
            }
        }
    }

    order.resize(static_cast<std::size_t>(threads));
    return order;
}

bool
spansSockets(const std::vector<LogicalCore> &placement)
{
    for (const auto &core : placement) {
        if (core.socket != 0)
            return true;
    }
    return false;
}

std::string
describe(const MachineConfig &config)
{
    std::ostringstream out;
    out << config.sockets << " socket(s) x " << config.coresPerSocket
        << " cores" << (config.hyperThreading ? " (2-way HT)" : "")
        << ", NUMA mem penalty " << config.numaMemPenalty
        << ", HT speed factor " << config.htSpeedFactor;
    return out.str();
}

} // namespace stats::sim
