#include "analysis/clone_audit.hpp"

#include <map>
#include <set>
#include <string>

#include "ir/interpreter.hpp"

namespace stats::analysis {

namespace {

/** Origin-callee -> clone-callee map for one state dependence. */
std::map<std::string, std::string>
cloneMapFor(const ir::Module &module, const std::string &state_dep)
{
    std::map<std::string, std::string> map;
    for (const auto &meta : module.auxClones) {
        if (meta.stateDep == state_dep)
            map[meta.origin] = meta.clone;
    }
    return map;
}

/** Aux-placeholder name -> the aux tradeoff that owns it. */
std::map<std::string, const ir::TradeoffMeta *>
auxPlaceholderMap(const ir::Module &module)
{
    std::map<std::string, const ir::TradeoffMeta *> map;
    for (const auto &meta : module.tradeoffs) {
        if (meta.auxClone)
            map[meta.placeholder] = &meta;
    }
    return map;
}

/**
 * Structural equality of one origin/clone instruction pair, where a
 * call in the origin may be redirected through `clone_map`.
 */
bool
equalModuloClones(const ir::Instruction &origin,
                  const ir::Instruction &clone,
                  const std::map<std::string, std::string> &clone_map)
{
    if (origin.op != clone.op || origin.type != clone.type ||
        origin.result != clone.result ||
        origin.labels != clone.labels ||
        origin.operands.size() != clone.operands.size()) {
        return false;
    }
    for (std::size_t i = 0; i < origin.operands.size(); ++i) {
        if (!(origin.operands[i] == clone.operands[i]))
            return false;
    }
    if (origin.op == ir::Opcode::Call) {
        auto mapped = clone_map.find(origin.callee);
        const std::string &expected = mapped != clone_map.end()
                                          ? mapped->second
                                          : origin.callee;
        if (clone.callee != expected)
            return false;
    }
    return true;
}

/** Whether helper interpretation is safe (exists, expected arity). */
bool
canInterpret(const ir::Module &module, const std::string &fn_name,
             std::size_t arity)
{
    const ir::Function *fn = module.findFunction(fn_name);
    return fn != nullptr && fn->params.size() == arity;
}

class CloneAuditor
{
  public:
    explicit CloneAuditor(AnalysisManager &manager)
        : _module(manager.module()),
          _auxPlaceholders(auxPlaceholderMap(_module))
    {}

    std::vector<Diagnostic> run();

  private:
    void auditClone(const ir::AuxCloneMeta &meta);
    void auditBlock(const ir::AuxCloneMeta &meta,
                    const ir::BasicBlock &origin,
                    const ir::BasicBlock &clone,
                    const std::map<std::string, std::string> &clone_map);
    void auditTradeoffSite(const ir::AuxCloneMeta &meta,
                           const ir::BasicBlock &origin,
                           const ir::BasicBlock &clone, std::size_t &i,
                           std::size_t &j,
                           const ir::TradeoffMeta &tradeoff);
    void auditTruncation(const ir::AuxCloneMeta &meta);

    void report(const std::string &rule, const ir::AuxCloneMeta &meta,
                const std::string &block, std::size_t line,
                const std::string &message)
    {
        _diags.push_back(
            makeDiagnostic(rule, meta.clone, block, line, message));
    }

    /** Default choice index of a tradeoff, -1 if not evaluable. */
    std::int64_t defaultIndexOf(const ir::TradeoffMeta &tradeoff) const
    {
        if (!canInterpret(_module, tradeoff.defaultIndexFn, 0))
            return -1;
        ir::Interpreter interp(_module);
        return interp.call(tradeoff.defaultIndexFn, {}).asInt();
    }

    const ir::Module &_module;
    std::map<std::string, const ir::TradeoffMeta *> _auxPlaceholders;
    std::vector<Diagnostic> _diags;
};

std::vector<Diagnostic>
CloneAuditor::run()
{
    for (const auto &meta : _module.auxClones)
        auditClone(meta);
    for (const auto &meta : _module.auxClones)
        auditTruncation(meta);
    for (const auto &dep : _module.stateDeps) {
        if (dep.truncated) {
            _diags.push_back(makeDiagnostic(
                "AUD06", dep.computeFn, "", dep.line,
                "state dependence " + dep.name +
                    "'s auxiliary code was truncated by the clone "
                    "budget; un-cloned callees run shared code"));
        }
    }
    return std::move(_diags);
}

void
CloneAuditor::auditClone(const ir::AuxCloneMeta &meta)
{
    const ir::Function *origin = _module.findFunction(meta.origin);
    const ir::Function *clone = _module.findFunction(meta.clone);
    if (origin == nullptr || clone == nullptr)
        return; // The verifier reports dangling auxclone records.

    if (origin->returnType != clone->returnType ||
        origin->params.size() != clone->params.size()) {
        report("AUD01", meta, "", clone->line,
               "clone @" + meta.clone + " signature differs from origin @" +
                   meta.origin);
        return;
    }
    for (std::size_t p = 0; p < origin->params.size(); ++p) {
        if (origin->params[p].name != clone->params[p].name ||
            origin->params[p].type != clone->params[p].type) {
            report("AUD01", meta, "", clone->line,
                   "clone @" + meta.clone + " parameter %" +
                       clone->params[p].name +
                       " differs from origin @" + meta.origin);
            return;
        }
    }

    if (origin->blocks.size() != clone->blocks.size()) {
        report("AUD02", meta, "", clone->line,
               "clone @" + meta.clone + " has " +
                   std::to_string(clone->blocks.size()) +
                   " blocks, origin @" + meta.origin + " has " +
                   std::to_string(origin->blocks.size()));
        return;
    }

    const auto clone_map = cloneMapFor(_module, meta.stateDep);
    for (std::size_t b = 0; b < origin->blocks.size(); ++b) {
        const ir::BasicBlock &ob = origin->blocks[b];
        const ir::BasicBlock &cb = clone->blocks[b];
        if (ob.label != cb.label) {
            report("AUD02", meta, cb.label, cb.line,
                   "clone block '" + cb.label +
                       "' does not match origin block '" + ob.label +
                       "'");
            continue;
        }
        auditBlock(meta, ob, cb, clone_map);
    }
}

void
CloneAuditor::auditBlock(const ir::AuxCloneMeta &meta,
                         const ir::BasicBlock &origin,
                         const ir::BasicBlock &clone,
                         const std::map<std::string, std::string> &clone_map)
{
    std::size_t i = 0, j = 0;
    while (i < origin.instructions.size() ||
           j < clone.instructions.size()) {
        // A clone-side call to an aux placeholder pairs with the
        // origin's frozen form of the same tradeoff site.
        if (j < clone.instructions.size() &&
            clone.instructions[j].op == ir::Opcode::Call) {
            auto aux = _auxPlaceholders.find(clone.instructions[j].callee);
            if (aux != _auxPlaceholders.end()) {
                auditTradeoffSite(meta, origin, clone, i, j,
                                  *aux->second);
                continue;
            }
        }

        if (i >= origin.instructions.size() ||
            j >= clone.instructions.size()) {
            report("AUD02", meta, clone.label, clone.line,
                   "instruction count mismatch in block '" +
                       clone.label + "' between clone @" + meta.clone +
                       " and origin @" + meta.origin);
            return;
        }

        const ir::Instruction &oi = origin.instructions[i];
        const ir::Instruction &cj = clone.instructions[j];
        if (!equalModuloClones(oi, cj, clone_map)) {
            report("AUD03", meta, clone.label, cj.line,
                   "instruction '" + cj.toString() +
                       "' diverges from origin's '" + oi.toString() +
                       "'");
        }
        ++i;
        ++j;
    }
}

void
CloneAuditor::auditTradeoffSite(const ir::AuxCloneMeta &meta,
                                const ir::BasicBlock &origin,
                                const ir::BasicBlock &clone,
                                std::size_t &i, std::size_t &j,
                                const ir::TradeoffMeta &tradeoff)
{
    const ir::Instruction &site = clone.instructions[j];
    const std::int64_t index = defaultIndexOf(tradeoff);

    // No origin instruction left to pair with the tradeoff site.
    if (i >= origin.instructions.size()) {
        report("AUD03", meta, clone.label, site.line,
               "tradeoff call '" + site.toString() +
                   "' has no frozen counterpart in origin @" +
                   meta.origin);
        ++j;
        return;
    }
    const ir::Instruction &oi = origin.instructions[i];

    switch (tradeoff.kind) {
      case ir::TradeoffKind::Constant: {
        // Origin form: the placeholder call replaced by a constant
        // cast (midend applyTradeoff, Constant case).
        if (oi.op != ir::Opcode::Cast || oi.operands.size() != 1 ||
            oi.operands[0].kind == ir::Operand::Kind::Temp ||
            oi.result != site.result || oi.type != site.type) {
            report("AUD03", meta, clone.label, site.line,
                   "tradeoff call '" + site.toString() +
                       "' pairs with origin's '" + oi.toString() +
                       "', which is not a frozen constant");
            ++i;
            ++j;
            return;
        }
        if (index >= 0 &&
            canInterpret(_module, tradeoff.getValueFn, 1)) {
            ir::Interpreter interp(_module);
            const ir::RtValue value = interp.call(
                tradeoff.getValueFn, {ir::RtValue::ofInt(index)});
            const bool matches =
                ir::isFloating(oi.type)
                    ? oi.operands[0].floatValue == value.asFloat()
                    : oi.operands[0].intValue == value.asInt();
            if (!matches) {
                report("AUD04", meta, clone.label, site.line,
                       "origin froze " + tradeoff.name + " to " +
                           oi.operands[0].toString() +
                           " but the aux tradeoff's default is " +
                           (ir::isFloating(oi.type)
                                ? std::to_string(value.asFloat())
                                : std::to_string(value.asInt())));
            }
        }
        ++i;
        ++j;
        return;
      }
      case ir::TradeoffKind::DataType: {
        std::string chosen;
        if (index >= 0 &&
            index < std::int64_t(tradeoff.nameChoices.size())) {
            chosen = tradeoff.nameChoices[std::size_t(index)];
        }
        // Narrow+widen pair: freeze split the site in two.
        if (oi.op == ir::Opcode::Cast &&
            oi.result == site.result + "__narrow") {
            if (i + 1 >= origin.instructions.size() ||
                origin.instructions[i + 1].op != ir::Opcode::Cast ||
                origin.instructions[i + 1].result != site.result) {
                report("AUD03", meta, clone.label, site.line,
                       "tradeoff call '" + site.toString() +
                           "' pairs with a narrow cast but no widen "
                           "cast in origin @" + meta.origin);
                ++i;
                ++j;
                return;
            }
            if (!chosen.empty() && ir::typeName(oi.type) != chosen) {
                report("AUD04", meta, clone.label, site.line,
                       "origin froze " + tradeoff.name + " to type " +
                           ir::typeName(oi.type) +
                           " but the aux tradeoff's default is " +
                           chosen);
            }
            i += 2;
            ++j;
            return;
        }
        // Identity cast: the chosen type matched the declared one.
        if (oi.op == ir::Opcode::Cast && oi.operands.size() == 1 &&
            oi.result == site.result) {
            if (!chosen.empty() && ir::typeName(oi.type) != chosen) {
                report("AUD04", meta, clone.label, site.line,
                       "origin froze " + tradeoff.name + " to type " +
                           ir::typeName(oi.type) +
                           " but the aux tradeoff's default is " +
                           chosen);
            }
            ++i;
            ++j;
            return;
        }
        report("AUD03", meta, clone.label, site.line,
               "tradeoff call '" + site.toString() +
                   "' pairs with origin's '" + oi.toString() +
                   "', which is not a frozen type substitution");
        ++i;
        ++j;
        return;
      }
      case ir::TradeoffKind::FunctionChoice: {
        if (oi.op != ir::Opcode::Call || oi.result != site.result) {
            report("AUD03", meta, clone.label, site.line,
                   "tradeoff call '" + site.toString() +
                       "' pairs with origin's '" + oi.toString() +
                       "', which is not a frozen function choice");
            ++i;
            ++j;
            return;
        }
        if (index >= 0 &&
            index < std::int64_t(tradeoff.nameChoices.size()) &&
            oi.callee != tradeoff.nameChoices[std::size_t(index)]) {
            report("AUD04", meta, clone.label, site.line,
                   "origin froze " + tradeoff.name + " to @" +
                       oi.callee +
                       " but the aux tradeoff's default choice is @" +
                       tradeoff.nameChoices[std::size_t(index)]);
        }
        ++i;
        ++j;
        return;
      }
    }
}

void
CloneAuditor::auditTruncation(const ir::AuxCloneMeta &meta)
{
    const ir::StateDepMeta *dep = _module.findStateDep(meta.stateDep);
    if (dep == nullptr || !dep->truncated)
        return;
    const ir::Function *clone = _module.findFunction(meta.clone);
    if (clone == nullptr)
        return;

    // Under budget truncation, any call that leaves the clone set runs
    // shared (non-speculative) code — surface each such edge.
    std::set<std::string> clone_set;
    for (const auto &entry : _module.auxClones) {
        if (entry.stateDep == meta.stateDep)
            clone_set.insert(entry.clone);
    }
    for (const auto &block : clone->blocks) {
        for (const auto &inst : block.instructions) {
            if (inst.op != ir::Opcode::Call)
                continue;
            if (clone_set.count(inst.callee) ||
                !_module.findFunction(inst.callee)) {
                continue; // Sibling clone or builtin.
            }
            report("AUD05", meta, block.label, inst.line,
                   "clone @" + meta.clone + " calls @" + inst.callee +
                       ", which was not cloned for " + meta.stateDep +
                       " (clone budget)");
        }
    }
}

} // namespace

std::vector<Diagnostic>
runCloneAudit(AnalysisManager &manager)
{
    return CloneAuditor(manager).run();
}

} // namespace stats::analysis
