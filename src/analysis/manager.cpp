#include "analysis/manager.hpp"

#include "support/log.hpp"

namespace stats::analysis {

const ir::Function &
AnalysisManager::functionOrPanic(const std::string &fn) const
{
    const ir::Function *found = _module->findFunction(fn);
    if (found == nullptr)
        support::panic("analysis: no function '", fn, "' in module '",
                       _module->name, "'");
    return *found;
}

AnalysisManager::FunctionAnalyses &
AnalysisManager::entryFor(const std::string &fn)
{
    return _perFn[fn];
}

const Cfg &
AnalysisManager::cfg(const std::string &fn)
{
    FunctionAnalyses &entry = entryFor(fn);
    if (!entry.cfg)
        entry.cfg = std::make_unique<Cfg>(functionOrPanic(fn));
    return *entry.cfg;
}

const DomTree &
AnalysisManager::dominators(const std::string &fn)
{
    FunctionAnalyses &entry = entryFor(fn);
    if (!entry.domTree)
        entry.domTree = std::make_unique<DomTree>(cfg(fn));
    return *entry.domTree;
}

const DefUse &
AnalysisManager::defUse(const std::string &fn)
{
    FunctionAnalyses &entry = entryFor(fn);
    if (!entry.defUse)
        entry.defUse = std::make_unique<DefUse>(functionOrPanic(fn));
    return *entry.defUse;
}

const ReachingDefs &
AnalysisManager::reachingDefs(const std::string &fn)
{
    FunctionAnalyses &entry = entryFor(fn);
    if (!entry.reachingDefs) {
        entry.reachingDefs =
            std::make_unique<ReachingDefs>(cfg(fn), defUse(fn));
    }
    return *entry.reachingDefs;
}

const Liveness &
AnalysisManager::liveness(const std::string &fn)
{
    FunctionAnalyses &entry = entryFor(fn);
    if (!entry.liveness)
        entry.liveness = std::make_unique<Liveness>(cfg(fn), defUse(fn));
    return *entry.liveness;
}

const ir::CallGraph &
AnalysisManager::callGraph()
{
    if (!_callGraph)
        _callGraph = std::make_unique<ir::CallGraph>(*_module);
    return *_callGraph;
}

void
AnalysisManager::invalidateFunction(const std::string &fn)
{
    _perFn.erase(fn);
    _callGraph.reset(); // A body change can add/remove call edges.
}

void
AnalysisManager::invalidateAll()
{
    _perFn.clear();
    _callGraph.reset();
}

} // namespace stats::analysis
