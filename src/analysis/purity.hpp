/**
 * @file
 * Purity / effect analysis: classifies every module function as pure,
 * tradeoff-reading, or effectful with a bottom-up fixpoint over the
 * call graph. The compiler interprets tradeoff helper functions
 * (getValue/size/defaultIndex) at compile time, so they must be pure
 * — the PUR01 pass enforces that; the escape check reuses the
 * classification to keep effects out of auxiliary code.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/manager.hpp"
#include "ir/ir.hpp"

namespace stats::analysis {

/** Effect lattice, ordered: Pure < ReadsTradeoffs < Effectful. */
enum class Effect
{
    Pure,           ///< No observable effect; compile-time evaluable.
    ReadsTradeoffs, ///< Calls a tradeoff placeholder (directly or not).
    Effectful,      ///< Effectful builtin or unknown external reached.
};

const char *effectName(Effect effect);

/** Join (least upper bound) of two effects. */
Effect joinEffects(Effect a, Effect b);

struct PurityResult
{
    /** Effect of every module function. */
    std::map<std::string, Effect> effects;

    /**
     * Effect of calling `callee`: module functions use the computed
     * map, pure builtins are Pure, the PRVG builtin is Effectful, and
     * unknown externals are conservatively Effectful.
     */
    Effect effectOf(const std::string &callee) const;
};

/** Bottom-up effect classification of every function. */
PurityResult computePurity(const ir::Module &module);

/** PUR01: tradeoff helper functions must be pure. */
std::vector<Diagnostic> runPurityPass(AnalysisManager &manager);

} // namespace stats::analysis
