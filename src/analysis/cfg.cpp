#include "analysis/cfg.hpp"

#include <algorithm>

#include "support/log.hpp"

namespace stats::analysis {

Cfg::Cfg(const ir::Function &fn) : _fn(&fn)
{
    const std::size_t n = fn.blocks.size();
    _succs.resize(n);
    _preds.resize(n);
    _rpoIndex.assign(n, -1);
    for (std::size_t b = 0; b < n; ++b)
        _indexOf[fn.blocks[b].label] = int(b);

    for (std::size_t b = 0; b < n; ++b) {
        const ir::Instruction *term = fn.blocks[b].terminator();
        if (!term)
            continue;
        for (const auto &label : term->labels) {
            const int target = indexOf(label);
            if (target < 0)
                continue; // Verifier reports unknown labels.
            // Multi-edges (br with equal targets) are collapsed.
            auto &succs = _succs[b];
            if (std::find(succs.begin(), succs.end(), target) ==
                succs.end()) {
                succs.push_back(target);
                _preds[std::size_t(target)].push_back(int(b));
            }
        }
    }

    if (n == 0)
        return;

    // Iterative postorder DFS from the entry, then reverse.
    std::vector<int> postorder;
    std::vector<char> visited(n, 0);
    std::vector<std::pair<int, std::size_t>> stack{{0, 0}};
    visited[0] = 1;
    while (!stack.empty()) {
        auto &[block, next] = stack.back();
        if (next < _succs[std::size_t(block)].size()) {
            const int succ = _succs[std::size_t(block)][next++];
            if (!visited[std::size_t(succ)]) {
                visited[std::size_t(succ)] = 1;
                stack.push_back({succ, 0});
            }
        } else {
            postorder.push_back(block);
            stack.pop_back();
        }
    }
    _rpo.assign(postorder.rbegin(), postorder.rend());
    for (std::size_t i = 0; i < _rpo.size(); ++i)
        _rpoIndex[std::size_t(_rpo[i])] = int(i);
}

int
Cfg::indexOf(const std::string &label) const
{
    auto it = _indexOf.find(label);
    return it == _indexOf.end() ? -1 : it->second;
}

const ir::BasicBlock &
Cfg::block(int index) const
{
    return _fn->blocks.at(std::size_t(index));
}

const std::vector<int> &
Cfg::successors(int block) const
{
    return _succs.at(std::size_t(block));
}

const std::vector<int> &
Cfg::predecessors(int block) const
{
    return _preds.at(std::size_t(block));
}

} // namespace stats::analysis
