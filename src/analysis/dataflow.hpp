/**
 * @file
 * Bit-vector dataflow over a Cfg: a generic gen/kill fixed-point
 * solver plus the two canonical instances the semantic passes use —
 * reaching definitions (forward, may) and live variables (backward,
 * may).
 *
 * Phi semantics: a phi reads its incomings "on the edge". The solver
 * approximates by treating phi operands as live into the phi's block
 * and by letting every predecessor's definitions reach it — sound
 * (never misses a reaching def / live value) and precise enough for
 * the freeze checker's type queries.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/def_use.hpp"

namespace stats::analysis {

/** One dataflow fact set, fixed-width bit vector. */
using BitVector = std::vector<bool>;

/** Union `src` into `dst`; returns true when `dst` changed. */
bool unionInto(BitVector &dst, const BitVector &src);

/**
 * Generic union (may) gen/kill solver.
 *
 * @param forward  true: in[b] = U out[preds]; false: mirrored.
 * @param boundary facts at the entry (forward) or at exits (backward).
 * @return per-block {in, out} pairs, indexed like the Cfg.
 */
struct BlockFacts
{
    BitVector in;
    BitVector out;
};

std::vector<BlockFacts> solveMayDataflow(
    const Cfg &cfg, std::size_t domain_size, bool forward,
    const std::vector<BitVector> &gen,
    const std::vector<BitVector> &kill, const BitVector &boundary);

/** Reaching definitions: which def sites may reach each block/use. */
class ReachingDefs
{
  public:
    ReachingDefs(const Cfg &cfg, const DefUse &du);

    /** All definition sites, in domain order. */
    struct Def
    {
        std::string name;
        InstRef site;
    };
    const std::vector<Def> &definitions() const { return _defs; }

    const BitVector &in(int block) const;
    const BitVector &out(int block) const;

    /**
     * Definition sites of `name` that may reach the operand read of
     * instruction (block, index). Parameters reach as {-1, p} sites.
     */
    std::vector<InstRef> reachingAt(int block, int index,
                                    const std::string &name) const;

  private:
    const Cfg *_cfg;
    const DefUse *_du;
    std::vector<Def> _defs;
    std::vector<std::vector<std::size_t>> _defsOfName; // name idx -> defs
    std::map<std::string, std::size_t> _nameIndex;
    std::vector<BlockFacts> _facts;
};

/** Live variables: which temps are live into / out of each block. */
class Liveness
{
  public:
    Liveness(const Cfg &cfg, const DefUse &du);

    const std::vector<std::string> &names() const { return _names; }
    bool liveIn(int block, const std::string &name) const;
    bool liveOut(int block, const std::string &name) const;

    /** Number of names live into `block` (register-pressure proxy). */
    std::size_t liveInCount(int block) const;

  private:
    std::size_t indexOf(const std::string &name) const;

    std::vector<std::string> _names;
    std::map<std::string, std::size_t> _nameIndex;
    std::vector<BlockFacts> _facts;
};

} // namespace stats::analysis
