/**
 * @file
 * Auxiliary-clone auditor (rules AUD01-AUD06): proves every function
 * the middle-end cloned for a state dependence is a faithful stand-in
 * for its origin. A clone may differ from its origin only in
 *
 *  - calls redirected to sibling clones of the same dependence, and
 *  - tradeoff call sites: the origin's were frozen to the default
 *    configuration (constant cast, identity/narrow-widen cast pair,
 *    or callee swap) while the clone keeps calls to the cloned aux
 *    placeholder.
 *
 * Anything else — divergent arithmetic, a frozen value that does not
 * match the aux tradeoff's default, a signature or block-structure
 * mismatch — is a bug in the cloning pipeline and gets an error.
 * Budget truncation (AUD05/AUD06) is reported as warnings.
 */

#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/manager.hpp"

namespace stats::analysis {

/** Audit every origin-of-clone record in the module. */
std::vector<Diagnostic> runCloneAudit(AnalysisManager &manager);

} // namespace stats::analysis
