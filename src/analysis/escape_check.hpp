/**
 * @file
 * Speculative-state escape check (rules ESC01-ESC03): auxiliary
 * functions run speculatively ahead of the committed state, so
 * nothing reachable from a state dependence's auxFn may perform an
 * irreversible effect — call the PRVG builtin (ESC01), reach an
 * effectful non-cloned helper (ESC02), or re-enter a dependence's
 * committed computeOutput (ESC03).
 */

#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/manager.hpp"

namespace stats::analysis {

/** Check every state dependence's auxiliary call tree. */
std::vector<Diagnostic> runEscapeCheck(AnalysisManager &manager);

} // namespace stats::analysis
