#include "analysis/def_use.hpp"

#include <set>

namespace stats::analysis {

ir::Type
resultTypeOf(const ir::Instruction &inst)
{
    switch (inst.op) {
      case ir::Opcode::CmpEq:
      case ir::Opcode::CmpLt:
      case ir::Opcode::CmpLe:
        return ir::Type::I64; // 0/1 regardless of comparand type.
      default:
        return inst.type;
    }
}

DefUse::DefUse(const ir::Function &fn) : _fn(&fn)
{
    std::set<std::string> seen;
    for (std::size_t p = 0; p < fn.params.size(); ++p) {
        _defs[fn.params[p].name].push_back({-1, int(p)});
        if (seen.insert(fn.params[p].name).second)
            _names.push_back(fn.params[p].name);
    }
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const auto &insts = fn.blocks[b].instructions;
        for (std::size_t i = 0; i < insts.size(); ++i) {
            const ir::Instruction &inst = insts[i];
            if (!inst.result.empty()) {
                _defs[inst.result].push_back({int(b), int(i)});
                if (seen.insert(inst.result).second)
                    _names.push_back(inst.result);
            }
            for (const auto &operand : inst.operands) {
                if (operand.kind == ir::Operand::Kind::Temp)
                    _uses[operand.name].push_back({int(b), int(i)});
            }
        }
    }
}

const std::vector<InstRef> &
DefUse::defs(const std::string &name) const
{
    static const std::vector<InstRef> empty;
    auto it = _defs.find(name);
    return it == _defs.end() ? empty : it->second;
}

const std::vector<InstRef> &
DefUse::uses(const std::string &name) const
{
    static const std::vector<InstRef> empty;
    auto it = _uses.find(name);
    return it == _uses.end() ? empty : it->second;
}

ir::Type
DefUse::typeOfDef(const std::string &, const InstRef &site) const
{
    if (site.block < 0)
        return _fn->params.at(std::size_t(site.index)).type;
    const ir::Instruction &inst =
        _fn->blocks.at(std::size_t(site.block))
            .instructions.at(std::size_t(site.index));
    return resultTypeOf(inst);
}

std::optional<ir::Type>
DefUse::uniqueDefType(const std::string &name) const
{
    const auto &sites = defs(name);
    if (sites.empty())
        return std::nullopt;
    const ir::Type first = typeOfDef(name, sites.front());
    for (const auto &site : sites) {
        if (typeOfDef(name, site) != first)
            return std::nullopt;
    }
    return first;
}

} // namespace stats::analysis
