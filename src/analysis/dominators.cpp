#include "analysis/dominators.hpp"

namespace stats::analysis {

namespace {

int
intersect(const std::vector<int> &idom, const Cfg &cfg, int a, int b)
{
    // Walk up the tree comparing RPO positions (higher = deeper).
    while (a != b) {
        while (cfg.rpoIndex(a) > cfg.rpoIndex(b))
            a = idom[std::size_t(a)];
        while (cfg.rpoIndex(b) > cfg.rpoIndex(a))
            b = idom[std::size_t(b)];
    }
    return a;
}

} // namespace

DomTree::DomTree(const Cfg &cfg) : _cfg(&cfg)
{
    _idom.assign(cfg.blockCount(), -1);
    if (cfg.blockCount() == 0)
        return;
    _idom[std::size_t(cfg.entry())] = cfg.entry();

    bool changed = true;
    while (changed) {
        changed = false;
        for (int block : cfg.reversePostorder()) {
            if (block == cfg.entry())
                continue;
            int new_idom = -1;
            for (int pred : cfg.predecessors(block)) {
                if (_idom[std::size_t(pred)] < 0)
                    continue; // Not yet processed or unreachable.
                new_idom = new_idom < 0
                               ? pred
                               : intersect(_idom, cfg, pred, new_idom);
            }
            if (new_idom >= 0 &&
                _idom[std::size_t(block)] != new_idom) {
                _idom[std::size_t(block)] = new_idom;
                changed = true;
            }
        }
    }
}

bool
DomTree::dominates(int a, int b) const
{
    if (_idom[std::size_t(b)] < 0 || _idom[std::size_t(a)] < 0)
        return false; // Unreachable blocks dominate nothing.
    while (true) {
        if (a == b)
            return true;
        if (b == _cfg->entry())
            return false;
        b = _idom[std::size_t(b)];
    }
}

} // namespace stats::analysis
