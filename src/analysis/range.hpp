/**
 * @file
 * Interprocedural value-range analysis over the mini-IR (rules
 * RNG01–RNG03, docs/ANALYSIS.md): an interval + known-constant
 * abstract interpretation on the existing dataflow framework (Cfg,
 * DefUse, AnalysisManager) with bottom-up call-graph summaries and
 * widening at loop heads.
 *
 * The walker is dynamically typed (an RtValue is integer- or
 * float-classed at runtime), so an abstract value tracks both views:
 * an i64 interval for the values a temp may hold when
 * integer-classed, and a double interval plus a NaN flag for the
 * float-classed case. Transfer functions model the committed
 * semantics of ir/interpreter.cpp exactly — wrapping i64
 * add/sub/mul, the INT64_MIN/-1 division wrap, saturating float→int
 * casts, F32 values as float-rounded doubles — so every concrete
 * value the interpreter ever assigns to a temp lies inside that
 * temp's inferred range (tests/range_soundness_test.cpp holds the
 * analysis to this over fuzzer-generated modules).
 *
 * Consumers: the `range` lint pass (runRangePass) and the bytecode
 * compiler's range-informed rewrites (src/ir/bytecode.cpp), which
 * drop saturation/guard paths and fold proven-constant branches.
 */

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/manager.hpp"
#include "ir/ir.hpp"

namespace stats::analysis {

/**
 * Abstract value of one temp: a may-integer interval and a may-float
 * interval (± infinity endpoints allowed) with a NaN flag. Bottom
 * (no view) means "no value observed" — unreachable code.
 */
struct ValueRange
{
    bool mayInt = false;
    std::int64_t intLo = 0;
    std::int64_t intHi = 0;

    bool mayFloat = false;
    double fltLo = 0.0;
    double fltHi = 0.0;
    bool maybeNaN = false;

    static ValueRange bottom() { return {}; }
    static ValueRange top();
    static ValueRange topInt();
    static ValueRange topFloat();
    static ValueRange ofInt(std::int64_t lo, std::int64_t hi);
    static ValueRange ofConstInt(std::int64_t v) { return ofInt(v, v); }
    static ValueRange ofFloat(double lo, double hi, bool nan = false);
    static ValueRange ofConstFloat(double v) { return ofFloat(v, v); }

    bool isBottom() const { return !mayInt && !mayFloat; }
    bool isTop() const;

    /** Whether an integer-classed value `v` is admitted. */
    bool containsInt(std::int64_t v) const;
    /** Whether a float-classed value `v` (possibly NaN) is admitted. */
    bool containsFloat(double v) const;

    /** The single admitted value when the range is {one integer}. */
    std::optional<std::int64_t> constantInt() const;

    /** In-place union; returns true when this range grew. */
    bool join(const ValueRange &other);

    /**
     * Widening against the previous iterate: any endpoint that moved
     * jumps to its extreme so loop fixpoints terminate.
     */
    void widen(const ValueRange &previous);

    bool operator==(const ValueRange &other) const;

    /** Debug rendering, e.g. "i64:[0, 9] f64:[0.5, 1.5]". */
    std::string toString() const;
};

/** Per-function result: range of every temp, and the return range. */
struct FunctionRanges
{
    /**
     * Join over every value the temp may hold at any point of any
     * execution (parameters included). Missing name = bottom
     * (defined only in unreachable code, or never defined).
     */
    std::map<std::string, ValueRange> temps;

    /** Join over the operands of every reachable `ret`. */
    ValueRange returnRange;

    const ValueRange &of(const std::string &temp) const;
};

/**
 * Whole-module analysis. Functions are summarized bottom-up over the
 * call graph (context-insensitive: parameters are top); members of a
 * recursive cycle get top summaries.
 */
class RangeAnalysis
{
  public:
    /**
     * @param trust_builtins  model the default builtin semantics
     *        (sqrt in [0, inf], rand_uniform in [0, 1), ...). The lint
     *        pass wants this; the bytecode compiler must pass `false`
     *        because the execution tier lets hosts rebind externals to
     *        arbitrary functions, voiding those ranges.
     */
    explicit RangeAnalysis(AnalysisManager &manager,
                           bool trust_builtins = true);

    const FunctionRanges &functionRanges(const std::string &fn) const;

    /** Return-range summary of a callee (top for externals). */
    ValueRange summaryOf(const std::string &fn) const;

    bool trustsBuiltins() const { return _trustBuiltins; }

  private:
    void analyzeFunction(const std::string &name);

    AnalysisManager &_manager;
    bool _trustBuiltins = true;
    std::map<std::string, FunctionRanges> _functions;
    std::map<std::string, ValueRange> _summaries;
    FunctionRanges _empty;
};

/**
 * The `range` lint pass: RNG01 definite signed wrap in committed
 * (non-auxiliary) code, RNG02 possibly-zero divisor the analysis
 * bounded, RNG03 float→int cast proven to saturate.
 */
std::vector<Diagnostic> runRangePass(AnalysisManager &manager);

/**
 * Proof obligations shared by the lint rules and the bytecode
 * compiler's range-informed rewrites. Each predicate is deliberately
 * conservative: `false` always means "no rewrite / no finding".
 */
namespace rangeproof {

/** Range of one operand: constants exactly, temps from `ranges`. */
ValueRange rangeOfOperand(const ir::Operand &operand,
                          const FunctionRanges &ranges);

/**
 * A float-classed `cast i64` never saturates: no NaN, and every
 * admitted double truncates to a representable i64 (so the raw
 * `f2i.nc` conversion is defined and equal to the saturating one).
 */
bool castNeverSaturates(const ValueRange &operand);

/** A `cast i64` provably saturates on every execution (RNG03). */
bool castAlwaysSaturates(const ValueRange &operand);

/**
 * The divisor of an integer `div` may be zero AND the analysis
 * learned at least one bound (RNG02; unbounded divisors stay quiet).
 */
bool divisorMayBeZero(const ValueRange &divisor);

/**
 * An integer `div` needs neither the zero-divisor panic nor the
 * INT64_MIN/-1 wrap guard, so raw C++ division (`div.i.nc`) is safe.
 */
bool divNeedsNoGuards(const ValueRange &dividend,
                      const ValueRange &divisor);

/** i64 add/sub/mul whose exact result never fits i64 (RNG01). */
bool definitelyWraps(ir::Opcode op, const ValueRange &a,
                     const ValueRange &b);

/**
 * Truthiness of a branch/select condition under the walker's
 * `.asInt() != 0` rule, when provable; nullopt otherwise.
 */
std::optional<bool> provenTruth(const ValueRange &cond);

} // namespace rangeproof

} // namespace stats::analysis
