#include "analysis/dataflow.hpp"

#include <algorithm>

namespace stats::analysis {

bool
unionInto(BitVector &dst, const BitVector &src)
{
    bool changed = false;
    for (std::size_t i = 0; i < dst.size(); ++i) {
        if (src[i] && !dst[i]) {
            dst[i] = true;
            changed = true;
        }
    }
    return changed;
}

std::vector<BlockFacts>
solveMayDataflow(const Cfg &cfg, std::size_t domain_size, bool forward,
                 const std::vector<BitVector> &gen,
                 const std::vector<BitVector> &kill,
                 const BitVector &boundary)
{
    const std::size_t n = cfg.blockCount();
    std::vector<BlockFacts> facts(n);
    for (auto &f : facts) {
        f.in.assign(domain_size, false);
        f.out.assign(domain_size, false);
    }

    // Iterate in RPO for forward problems, post-order for backward;
    // both converge in O(loop-nesting-depth) sweeps.
    std::vector<int> order = cfg.reversePostorder();
    if (!forward)
        std::reverse(order.begin(), order.end());

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : order) {
            BlockFacts &f = facts[std::size_t(b)];
            BitVector &entry_set = forward ? f.in : f.out;
            BitVector &exit_set = forward ? f.out : f.in;

            const auto &sources =
                forward ? cfg.predecessors(b) : cfg.successors(b);
            if (b == cfg.entry() && forward)
                unionInto(entry_set, boundary);
            if (!forward && cfg.successors(b).empty())
                unionInto(entry_set, boundary);
            for (int src : sources) {
                const BlockFacts &sf = facts[std::size_t(src)];
                unionInto(entry_set, forward ? sf.out : sf.in);
            }

            // exit = gen U (entry - kill)
            BitVector next = gen[std::size_t(b)];
            for (std::size_t i = 0; i < domain_size; ++i) {
                if (entry_set[i] && !kill[std::size_t(b)][i])
                    next[i] = true;
            }
            if (next != exit_set) {
                exit_set = std::move(next);
                changed = true;
            }
        }
    }
    return facts;
}

// ------------------------------------------------ reaching definitions

ReachingDefs::ReachingDefs(const Cfg &cfg, const DefUse &du)
    : _cfg(&cfg), _du(&du)
{
    // Enumerate the domain: every definition site of every name.
    for (const auto &name : du.names()) {
        auto [it, fresh] = _nameIndex.try_emplace(name, _defsOfName.size());
        if (fresh)
            _defsOfName.emplace_back();
        for (const auto &site : du.defs(name)) {
            _defsOfName[it->second].push_back(_defs.size());
            _defs.push_back({name, site});
        }
    }

    const std::size_t n = cfg.blockCount();
    std::vector<BitVector> gen(n, BitVector(_defs.size(), false));
    std::vector<BitVector> kill(n, BitVector(_defs.size(), false));
    BitVector boundary(_defs.size(), false);

    for (std::size_t d = 0; d < _defs.size(); ++d) {
        const Def &def = _defs[d];
        if (def.site.block < 0) {
            boundary[d] = true; // Parameter: reaches from the entry.
            continue;
        }
        gen[std::size_t(def.site.block)][d] = true;
    }
    // A block's last def of a name kills every other def of it; with
    // gen applied after kill that collapses to: defining a name
    // anywhere in the block kills all external defs of the name.
    for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t d = 0; d < _defs.size(); ++d) {
            if (!gen[b][d])
                continue;
            for (std::size_t other :
                 _defsOfName[_nameIndex[_defs[d].name]]) {
                if (!gen[b][other])
                    kill[b][other] = true;
            }
        }
    }

    _facts = solveMayDataflow(cfg, _defs.size(), /*forward=*/true, gen,
                              kill, boundary);
}

const BitVector &
ReachingDefs::in(int block) const
{
    return _facts.at(std::size_t(block)).in;
}

const BitVector &
ReachingDefs::out(int block) const
{
    return _facts.at(std::size_t(block)).out;
}

std::vector<InstRef>
ReachingDefs::reachingAt(int block, int index,
                         const std::string &name) const
{
    std::vector<InstRef> result;
    auto it = _nameIndex.find(name);
    if (it == _nameIndex.end())
        return result;

    // Last def of `name` inside this block before `index` shadows
    // everything flowing in from outside.
    const auto &insts = _cfg->block(block).instructions;
    for (int i = index - 1; i >= 0; --i) {
        if (insts[std::size_t(i)].result == name) {
            result.push_back({block, i});
            return result;
        }
    }
    const BitVector &reaching = in(block);
    for (std::size_t d : _defsOfName[it->second]) {
        if (reaching[d])
            result.push_back(_defs[d].site);
    }
    return result;
}

// ------------------------------------------------------- live variables

Liveness::Liveness(const Cfg &cfg, const DefUse &du)
{
    _names = du.names();
    for (std::size_t i = 0; i < _names.size(); ++i)
        _nameIndex[_names[i]] = i;

    const std::size_t n = cfg.blockCount();
    // gen = upward-exposed uses, kill = defs.
    std::vector<BitVector> gen(n, BitVector(_names.size(), false));
    std::vector<BitVector> kill(n, BitVector(_names.size(), false));
    const BitVector boundary(_names.size(), false);

    for (std::size_t b = 0; b < n; ++b) {
        const auto &insts = cfg.block(int(b)).instructions;
        for (const auto &inst : insts) {
            for (const auto &operand : inst.operands) {
                if (operand.kind != ir::Operand::Kind::Temp)
                    continue;
                auto it = _nameIndex.find(operand.name);
                if (it == _nameIndex.end())
                    continue; // Undefined temp: verifier's business.
                if (!kill[b][it->second])
                    gen[b][it->second] = true;
            }
            if (!inst.result.empty())
                kill[b][_nameIndex[inst.result]] = true;
        }
    }

    _facts = solveMayDataflow(cfg, _names.size(), /*forward=*/false,
                              gen, kill, boundary);
}

std::size_t
Liveness::indexOf(const std::string &name) const
{
    auto it = _nameIndex.find(name);
    return it == _nameIndex.end() ? _names.size() : it->second;
}

bool
Liveness::liveIn(int block, const std::string &name) const
{
    const std::size_t i = indexOf(name);
    return i < _names.size() && _facts.at(std::size_t(block)).in[i];
}

bool
Liveness::liveOut(int block, const std::string &name) const
{
    const std::size_t i = indexOf(name);
    return i < _names.size() && _facts.at(std::size_t(block)).out[i];
}

std::size_t
Liveness::liveInCount(int block) const
{
    const BitVector &in = _facts.at(std::size_t(block)).in;
    std::size_t count = 0;
    for (bool bit : in)
        count += bit ? 1 : 0;
    return count;
}

} // namespace stats::analysis
