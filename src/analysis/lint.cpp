#include "analysis/lint.hpp"

#include <algorithm>

#include "analysis/clone_audit.hpp"
#include "analysis/escape_check.hpp"
#include "analysis/freeze_check.hpp"
#include "analysis/manager.hpp"
#include "analysis/purity.hpp"
#include "analysis/range.hpp"
#include "ir/verifier.hpp"

namespace stats::analysis {

const std::vector<std::string> &
passNames()
{
    static const std::vector<std::string> names{
        "verify",        "purity", "clone-audit", "freeze",
        "escape",        "range",  "bytecode-verify",
    };
    return names;
}

bool
isPassName(const std::string &name)
{
    const auto &names = passNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

namespace {

/** Wrap one verifier problem string ("@fn: message") as VER01. */
Diagnostic
wrapVerifierProblem(const ir::Module &module, const std::string &problem)
{
    std::string function;
    std::string message = problem;
    if (!problem.empty() && problem[0] == '@') {
        const auto colon = problem.find(": ");
        if (colon != std::string::npos) {
            function = problem.substr(1, colon - 1);
            message = problem.substr(colon + 2);
        }
    }
    // The verifier reports strings, not locations; anchor the finding
    // at the offending function's header line when we know it.
    std::size_t line = 0;
    for (const auto &fn : module.functions) {
        if (fn.name == function)
            line = fn.line;
    }
    return makeDiagnostic("VER01", function, "", line, message);
}

} // namespace

std::vector<Diagnostic>
runAnalyses(const ir::Module &module, const LintOptions &options)
{
    const bool all = options.pass.empty();
    const auto wants = [&](const char *pass) {
        return all || options.pass == pass;
    };

    // The verifier always runs — the semantic passes assume
    // structurally valid IR — but its findings are only included when
    // requested or when they suppress the other passes.
    std::vector<Diagnostic> diags;
    for (const auto &problem : ir::verifyModule(module))
        diags.push_back(wrapVerifierProblem(module, problem));
    const bool structurally_broken = hasErrors(diags);
    if (!wants("verify") && !structurally_broken)
        diags.clear();

    if (!structurally_broken) {
        AnalysisManager manager(module);
        if (wants("purity")) {
            auto found = runPurityPass(manager);
            diags.insert(diags.end(), found.begin(), found.end());
        }
        if (wants("clone-audit")) {
            auto found = runCloneAudit(manager);
            diags.insert(diags.end(), found.begin(), found.end());
        }
        if (wants("freeze")) {
            FreezeCheckOptions freeze;
            freeze.requireInstantiated = options.requireInstantiated;
            auto found = runFreezeCheck(manager, freeze);
            diags.insert(diags.end(), found.begin(), found.end());
        }
        if (wants("escape")) {
            auto found = runEscapeCheck(manager);
            diags.insert(diags.end(), found.begin(), found.end());
        }
        if (wants("range")) {
            auto found = runRangePass(manager);
            diags.insert(diags.end(), found.begin(), found.end());
        }
        if (wants("bytecode-verify") && options.bytecodeVerifier) {
            auto found = options.bytecodeVerifier(module);
            diags.insert(diags.end(), found.begin(), found.end());
        }
    }

    sortDiagnostics(diags);
    return diags;
}

} // namespace stats::analysis
