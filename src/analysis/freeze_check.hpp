/**
 * @file
 * Tradeoff-freeze checker (rules FRZ01-FRZ03): after the middle-end,
 * every non-auxiliary tradeoff must have been constant-folded to its
 * default (FRZ01), auxiliary tradeoffs must only be referenced from
 * auxiliary code (FRZ02), and the freeze's cast discipline must hold
 * — no value flows between I64/F32/F64 without an explicit cast
 * (FRZ03, proven with reaching definitions).
 */

#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/manager.hpp"

namespace stats::analysis {

struct FreezeCheckOptions
{
    /**
     * Back-end mode: the configuration has been instantiated, so ANY
     * remaining tradeoff metadata or placeholder call is an error —
     * not just non-auxiliary ones. Default (false) audits middle-end
     * output, where auxiliary tradeoffs legitimately remain.
     */
    bool requireInstantiated = false;
};

std::vector<Diagnostic> runFreezeCheck(AnalysisManager &manager,
                                       const FreezeCheckOptions &options = {});

} // namespace stats::analysis
