/**
 * @file
 * Dominator tree over a Cfg, computed with the Cooper-Harvey-Kennedy
 * iterative algorithm ("A Simple, Fast Dominance Algorithm"): walk
 * the reverse postorder intersecting predecessor dominators until the
 * immediate-dominator array reaches a fixed point.
 */

#pragma once

#include <vector>

#include "analysis/cfg.hpp"

namespace stats::analysis {

class DomTree
{
  public:
    explicit DomTree(const Cfg &cfg);

    /**
     * Immediate dominator of a block; the entry's idom is itself,
     * unreachable blocks get -1.
     */
    int idom(int block) const { return _idom.at(std::size_t(block)); }

    /** Whether `a` dominates `b` (reflexive). */
    bool dominates(int a, int b) const;

  private:
    const Cfg *_cfg;
    std::vector<int> _idom;
};

} // namespace stats::analysis
