/**
 * @file
 * Analysis driver shared by `statscc analyze` and `stats-lint`: runs
 * the structural verifier (as rule VER01) and the semantic passes
 * (purity, clone-audit, freeze, escape) over a module and returns the
 * combined, deterministically-ordered diagnostic list.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "ir/ir.hpp"

namespace stats::analysis {

struct LintOptions
{
    /** Run one pass only ("" = all): verify, purity, clone-audit,
     *  freeze, escape, range, bytecode-verify. */
    std::string pass;

    /** Back-end mode for the freeze checker (see FreezeCheckOptions). */
    bool requireInstantiated = false;

    /**
     * The `bytecode-verify` pass lives above this library
     * (src/ir/bytecode_verifier.cpp links against stats_analysis, not
     * the other way around), so drivers that can compile bytecode
     * inject it here — typically ir::bc::verifyCompiledModule. Unset,
     * the pass is silently skipped.
     */
    std::function<std::vector<Diagnostic>(const ir::Module &)>
        bytecodeVerifier;
};

/** Names accepted by LintOptions::pass, in run order. */
const std::vector<std::string> &passNames();

bool isPassName(const std::string &name);

/**
 * Run the verifier and the selected semantic passes. Structural
 * (VER01) errors suppress the semantic passes: their results are not
 * meaningful on ill-formed IR.
 */
std::vector<Diagnostic> runAnalyses(const ir::Module &module,
                                    const LintOptions &options = {});

} // namespace stats::analysis
