/**
 * @file
 * AnalysisManager: lazily computes and caches the per-function
 * analyses (Cfg, dominators, def-use, reaching definitions, liveness)
 * and the module-wide call graph, so semantic passes can share
 * results instead of recomputing them. Mutating a function requires
 * invalidateFunction() (or invalidateAll() after structural changes
 * such as adding/removing functions).
 */

#pragma once

#include <map>
#include <memory>
#include <string>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/def_use.hpp"
#include "analysis/dominators.hpp"
#include "ir/call_graph.hpp"
#include "ir/ir.hpp"

namespace stats::analysis {

class AnalysisManager
{
  public:
    explicit AnalysisManager(const ir::Module &module)
        : _module(&module)
    {}

    const ir::Module &module() const { return *_module; }

    /** Per-function analyses; computed on first request, then cached. */
    const Cfg &cfg(const std::string &fn);
    const DomTree &dominators(const std::string &fn);
    const DefUse &defUse(const std::string &fn);
    const ReachingDefs &reachingDefs(const std::string &fn);
    const Liveness &liveness(const std::string &fn);

    /** Module-wide call graph (cached). */
    const ir::CallGraph &callGraph();

    /** Drop cached analyses for one function (body changed). */
    void invalidateFunction(const std::string &fn);

    /** Drop everything (functions added/removed, metadata changed). */
    void invalidateAll();

    /** Number of functions with at least one cached analysis. */
    std::size_t cachedFunctionCount() const { return _perFn.size(); }

  private:
    struct FunctionAnalyses
    {
        std::unique_ptr<Cfg> cfg;
        std::unique_ptr<DomTree> domTree;
        std::unique_ptr<DefUse> defUse;
        std::unique_ptr<ReachingDefs> reachingDefs;
        std::unique_ptr<Liveness> liveness;
    };

    const ir::Function &functionOrPanic(const std::string &fn) const;
    FunctionAnalyses &entryFor(const std::string &fn);

    const ir::Module *_module;
    std::map<std::string, FunctionAnalyses> _perFn;
    std::unique_ptr<ir::CallGraph> _callGraph;
};

} // namespace stats::analysis
