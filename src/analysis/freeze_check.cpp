#include "analysis/freeze_check.hpp"

#include <algorithm>
#include <set>
#include <string>

namespace stats::analysis {

namespace {

/** Whether the module carries any middle-end output markers. */
bool
hasAuxMarkers(const ir::Module &module)
{
    if (!module.auxClones.empty())
        return true;
    for (const auto &meta : module.tradeoffs) {
        if (meta.auxClone)
            return true;
    }
    for (const auto &dep : module.stateDeps) {
        if (!dep.auxFn.empty())
            return true;
    }
    return false;
}

class FreezeChecker
{
  public:
    FreezeChecker(AnalysisManager &manager,
                  const FreezeCheckOptions &options)
        : _manager(manager), _module(manager.module()),
          _options(options)
    {
        for (const auto &meta : _module.auxClones)
            _cloneFns.insert(meta.clone);
    }

    std::vector<Diagnostic> run();

  private:
    void checkSurvivingTradeoffs();
    void checkAuxReferences();
    void checkCastDiscipline(const ir::Function &fn);
    void checkOperandType(const ir::Function &fn,
                          const ir::BasicBlock &block, int block_index,
                          int inst_index, const ir::Operand &operand,
                          ir::Type expected);

    AnalysisManager &_manager;
    const ir::Module &_module;
    FreezeCheckOptions _options;
    std::set<std::string> _cloneFns;
    std::vector<Diagnostic> _diags;
};

std::vector<Diagnostic>
FreezeChecker::run()
{
    checkSurvivingTradeoffs();
    checkAuxReferences();
    for (const auto &fn : _module.functions)
        checkCastDiscipline(fn);
    return std::move(_diags);
}

void
FreezeChecker::checkSurvivingTradeoffs()
{
    // Pre-middle-end modules legitimately carry tradeoff metadata;
    // only audit once aux markers (or the back-end) say freezing ran.
    if (!_options.requireInstantiated && !hasAuxMarkers(_module))
        return;

    // After the middle-end, non-aux tradeoff *metadata* must be gone;
    // after back-end instantiation the metadata legitimately remains
    // (the middle-end IR is reused per configuration) but no
    // placeholder *call* of any kind may survive.
    std::set<std::string> frozen_placeholders;
    for (const auto &meta : _module.tradeoffs) {
        if (_options.requireInstantiated) {
            frozen_placeholders.insert(meta.placeholder);
            continue;
        }
        if (meta.auxClone)
            continue;
        frozen_placeholders.insert(meta.placeholder);
        _diags.push_back(makeDiagnostic(
            "FRZ01", "", "", meta.line,
            "non-auxiliary tradeoff " + meta.name +
                " survived the middle-end freeze"));
    }
    if (frozen_placeholders.empty())
        return;
    for (const auto &fn : _module.functions) {
        for (const auto &block : fn.blocks) {
            for (const auto &inst : block.instructions) {
                if (inst.op == ir::Opcode::Call &&
                    frozen_placeholders.count(inst.callee)) {
                    _diags.push_back(makeDiagnostic(
                        "FRZ01", fn.name, block.label, inst.line,
                        _options.requireInstantiated
                            ? "call to placeholder @" + inst.callee +
                                  " survived instantiation"
                            : "call to placeholder @" + inst.callee +
                                  " of an unfrozen tradeoff"));
                }
            }
        }
    }
}

void
FreezeChecker::checkAuxReferences()
{
    std::set<std::string> aux_placeholders;
    for (const auto &meta : _module.tradeoffs) {
        if (meta.auxClone)
            aux_placeholders.insert(meta.placeholder);
    }
    if (aux_placeholders.empty())
        return;

    for (const auto &fn : _module.functions) {
        if (_cloneFns.count(fn.name))
            continue; // Auxiliary code may read aux tradeoffs.
        for (const auto &block : fn.blocks) {
            for (const auto &inst : block.instructions) {
                if (inst.op == ir::Opcode::Call &&
                    aux_placeholders.count(inst.callee)) {
                    _diags.push_back(makeDiagnostic(
                        "FRZ02", fn.name, block.label, inst.line,
                        "non-auxiliary @" + fn.name +
                            " calls auxiliary tradeoff placeholder @" +
                            inst.callee));
                }
            }
        }
    }
}

void
FreezeChecker::checkCastDiscipline(const ir::Function &fn)
{
    if (fn.blocks.empty())
        return;
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const ir::BasicBlock &block = fn.blocks[b];
        for (std::size_t k = 0; k < block.instructions.size(); ++k) {
            const ir::Instruction &inst = block.instructions[k];
            const auto check = [&](std::size_t operand_index,
                                   ir::Type expected) {
                if (operand_index < inst.operands.size()) {
                    checkOperandType(fn, block, int(b), int(k),
                                     inst.operands[operand_index],
                                     expected);
                }
            };
            switch (inst.op) {
              case ir::Opcode::Add:
              case ir::Opcode::Sub:
              case ir::Opcode::Mul:
              case ir::Opcode::Div:
              case ir::Opcode::CmpEq:
              case ir::Opcode::CmpLt:
              case ir::Opcode::CmpLe:
                check(0, inst.type);
                check(1, inst.type);
                break;
              case ir::Opcode::Select:
                check(0, ir::Type::I64);
                check(1, inst.type);
                check(2, inst.type);
                break;
              case ir::Opcode::Phi:
                for (std::size_t o = 0; o < inst.operands.size(); ++o)
                    check(o, inst.type);
                break;
              case ir::Opcode::Br:
                check(0, ir::Type::I64);
                break;
              case ir::Opcode::Ret:
                if (fn.returnType != ir::Type::Void)
                    check(0, fn.returnType);
                break;
              case ir::Opcode::Call: {
                const ir::Function *callee =
                    _module.findFunction(inst.callee);
                if (callee == nullptr)
                    break; // Builtin or verifier-reported unknown.
                const std::size_t n = std::min(
                    inst.operands.size(), callee->params.size());
                for (std::size_t o = 0; o < n; ++o)
                    check(o, callee->params[o].type);
                break;
              }
              case ir::Opcode::Cast: // The converter itself.
              case ir::Opcode::Jmp:
                break;
            }
        }
    }
}

void
FreezeChecker::checkOperandType(const ir::Function &fn,
                                const ir::BasicBlock &block,
                                int block_index, int inst_index,
                                const ir::Operand &operand,
                                ir::Type expected)
{
    if (operand.kind != ir::Operand::Kind::Temp)
        return;
    const ReachingDefs &reaching = _manager.reachingDefs(fn.name);
    const DefUse &du = _manager.defUse(fn.name);
    const auto sites =
        reaching.reachingAt(block_index, inst_index, operand.name);
    if (sites.empty())
        return; // Undefined temp: the verifier's report.

    // Flag only when every reaching definition agrees on a type that
    // differs from the expected one; mixed-type merges are left to
    // the verifier (may-analysis would make them noisy here).
    const ir::Type first = du.typeOfDef(operand.name, sites.front());
    for (const auto &site : sites) {
        if (du.typeOfDef(operand.name, site) != first)
            return;
    }
    if (first == expected)
        return;
    const ir::Instruction &inst =
        block.instructions[std::size_t(inst_index)];
    _diags.push_back(makeDiagnostic(
        "FRZ03", fn.name, block.label, inst.line,
        "operand %" + operand.name + " of '" + inst.toString() +
            "' has type " + ir::typeName(first) + " but " +
            ir::typeName(expected) +
            " is expected; insert an explicit cast"));
}

} // namespace

std::vector<Diagnostic>
runFreezeCheck(AnalysisManager &manager,
               const FreezeCheckOptions &options)
{
    return FreezeChecker(manager, options).run();
}

} // namespace stats::analysis
