/**
 * @file
 * Analyzer diagnostics: a typed finding with a stable rule ID, a
 * severity, and a source location, plus the text / JSON renderers
 * shared by `statscc analyze` and `stats-lint`.
 *
 * The rule registry below is the canonical list; docs/ANALYSIS.md
 * documents every entry and a test keeps the two in lockstep.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace stats::analysis {

enum class Severity
{
    Note,
    Warning,
    Error,
};

const char *severityName(Severity severity);

/** One analyzer finding. */
struct Diagnostic
{
    std::string pass;     ///< "verify", "purity", "clone-audit", ...
    std::string rule;     ///< Stable rule ID, e.g. "AUD03".
    Severity severity = Severity::Error;
    std::string function; ///< Enclosing function ("" = module scope).
    std::string block;    ///< Enclosing block label ("" = none).
    std::size_t line = 0; ///< Textual-module line (0 = unknown).
    std::string message;
};

/** Entry of the stable rule registry. */
struct RuleInfo
{
    const char *id;
    const char *pass;
    Severity severity;
    const char *summary;
};

/** Every rule any pass can emit (stable IDs, documented). */
const std::vector<RuleInfo> &allRules();

/** Look up a rule; panics on unknown IDs (registry is closed). */
const RuleInfo &ruleInfo(const std::string &id);

/** Build a diagnostic from the registry (severity, pass filled in). */
Diagnostic makeDiagnostic(const std::string &rule,
                          const std::string &function,
                          const std::string &block, std::size_t line,
                          const std::string &message);

/** Deterministic order: line, then function, then rule, message. */
void sortDiagnostics(std::vector<Diagnostic> &diagnostics);

bool hasErrors(const std::vector<Diagnostic> &diagnostics);

/**
 * `file:line: severity[RULE] pass: message (@function)` — one line
 * per diagnostic plus a trailing `N error(s), M warning(s)` summary.
 */
void writeDiagnosticsText(std::ostream &out, const std::string &file,
                          const std::vector<Diagnostic> &diagnostics);

/**
 * JSON report (schema documented in docs/ANALYSIS.md §5):
 * {schemaVersion, module, file, diagnostics: [...], summary}.
 */
void writeDiagnosticsJson(std::ostream &out,
                          const std::string &module_name,
                          const std::string &file,
                          const std::vector<Diagnostic> &diagnostics);

/** Schema version stamped into every diagnostics JSON. */
inline constexpr int kDiagnosticsSchemaVersion = 1;

} // namespace stats::analysis
