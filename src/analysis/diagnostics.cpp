#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <tuple>

#include "support/json.hpp"
#include "support/log.hpp"

namespace stats::analysis {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

const std::vector<RuleInfo> &
allRules()
{
    static const std::vector<RuleInfo> rules{
        {"VER01", "verify", Severity::Error,
         "structural verifier problem"},
        {"PUR01", "purity", Severity::Warning,
         "tradeoff helper function is not pure"},
        {"AUD01", "clone-audit", Severity::Error,
         "clone/origin signature mismatch"},
        {"AUD02", "clone-audit", Severity::Error,
         "clone/origin block structure mismatch"},
        {"AUD03", "clone-audit", Severity::Error,
         "divergent instruction between clone and origin"},
        {"AUD04", "clone-audit", Severity::Error,
         "frozen value differs from the aux tradeoff's default"},
        {"AUD05", "clone-audit", Severity::Warning,
         "clone calls an un-cloned tradeoff carrier"},
        {"AUD06", "clone-audit", Severity::Warning,
         "clone budget truncated this dependence's auxiliary code"},
        {"FRZ01", "freeze", Severity::Error,
         "non-auxiliary tradeoff survived the middle-end freeze"},
        {"FRZ02", "freeze", Severity::Error,
         "non-auxiliary code references an auxiliary tradeoff"},
        {"FRZ03", "freeze", Severity::Error,
         "type mismatch without an intervening cast"},
        {"ESC01", "escape", Severity::Error,
         "auxiliary code calls an effectful builtin"},
        {"ESC02", "escape", Severity::Error,
         "auxiliary code calls a non-cloned effectful function"},
        {"ESC03", "escape", Severity::Error,
         "auxiliary code re-enters a state dependence's computeOutput"},
        {"RNG01", "range", Severity::Warning,
         "integer arithmetic provably wraps in committed code"},
        {"RNG02", "range", Severity::Warning,
         "divisor of an integer division may be zero"},
        {"RNG03", "range", Severity::Warning,
         "float-to-int cast provably saturates"},
        {"BCV01", "bytecode-verify", Severity::Error,
         "register may be read before it is written"},
        {"BCV02", "bytecode-verify", Severity::Error,
         "operand register class mismatch"},
        {"BCV03", "bytecode-verify", Severity::Error,
         "register allocation clobbers a live value"},
        {"BCV04", "bytecode-verify", Severity::Error,
         "branch target or table index out of range"},
        {"BCV05", "bytecode-verify", Severity::Error,
         "malformed instruction operands"},
    };
    return rules;
}

const RuleInfo &
ruleInfo(const std::string &id)
{
    for (const auto &rule : allRules()) {
        if (id == rule.id)
            return rule;
    }
    support::panic("analysis: unknown rule ID '", id, "'");
}

Diagnostic
makeDiagnostic(const std::string &rule, const std::string &function,
               const std::string &block, std::size_t line,
               const std::string &message)
{
    const RuleInfo &info = ruleInfo(rule);
    Diagnostic diag;
    diag.pass = info.pass;
    diag.rule = rule;
    diag.severity = info.severity;
    diag.function = function;
    diag.block = block;
    diag.line = line;
    diag.message = message;
    return diag;
}

void
sortDiagnostics(std::vector<Diagnostic> &diagnostics)
{
    std::stable_sort(
        diagnostics.begin(), diagnostics.end(),
        [](const Diagnostic &a, const Diagnostic &b) {
            return std::tie(a.line, a.function, a.rule, a.message) <
                   std::tie(b.line, b.function, b.rule, b.message);
        });
}

bool
hasErrors(const std::vector<Diagnostic> &diagnostics)
{
    for (const auto &diag : diagnostics) {
        if (diag.severity == Severity::Error)
            return true;
    }
    return false;
}

void
writeDiagnosticsText(std::ostream &out, const std::string &file,
                     const std::vector<Diagnostic> &diagnostics)
{
    std::size_t errors = 0, warnings = 0;
    for (const auto &diag : diagnostics) {
        out << file;
        if (diag.line > 0)
            out << ":" << diag.line;
        out << ": " << severityName(diag.severity) << "[" << diag.rule
            << "] " << diag.pass << ": " << diag.message;
        if (!diag.function.empty())
            out << " (@" << diag.function << ")";
        out << "\n";
        if (diag.severity == Severity::Error)
            ++errors;
        else if (diag.severity == Severity::Warning)
            ++warnings;
    }
    out << file << ": " << errors << " error(s), " << warnings
        << " warning(s)\n";
}

void
writeDiagnosticsJson(std::ostream &out, const std::string &module_name,
                     const std::string &file,
                     const std::vector<Diagnostic> &diagnostics)
{
    std::size_t errors = 0, warnings = 0, notes = 0;
    support::JsonWriter json(out);
    json.beginObject();
    json.field("schemaVersion",
               std::int64_t(kDiagnosticsSchemaVersion));
    json.field("module", module_name);
    json.field("file", file);
    json.key("diagnostics").beginArray();
    for (const auto &diag : diagnostics) {
        json.beginObject();
        json.field("pass", diag.pass);
        json.field("rule", diag.rule);
        json.field("severity", severityName(diag.severity));
        json.field("function", diag.function);
        json.field("block", diag.block);
        json.field("line", std::int64_t(diag.line));
        json.field("message", diag.message);
        json.endObject();
        if (diag.severity == Severity::Error)
            ++errors;
        else if (diag.severity == Severity::Warning)
            ++warnings;
        else
            ++notes;
    }
    json.endArray();
    json.key("summary").beginObject();
    json.field("errors", errors);
    json.field("warnings", warnings);
    json.field("notes", notes);
    json.endObject();
    json.endObject();
    out << "\n";
}

} // namespace stats::analysis
