#include "analysis/purity.hpp"

#include <set>

#include "ir/verifier.hpp"

namespace stats::analysis {

const char *
effectName(Effect effect)
{
    switch (effect) {
      case Effect::Pure: return "pure";
      case Effect::ReadsTradeoffs: return "reads-tradeoffs";
      case Effect::Effectful: return "effectful";
    }
    return "?";
}

Effect
joinEffects(Effect a, Effect b)
{
    return a < b ? b : a;
}

Effect
PurityResult::effectOf(const std::string &callee) const
{
    auto it = effects.find(callee);
    if (it != effects.end())
        return it->second;
    if (ir::isEffectfulBuiltin(callee))
        return Effect::Effectful;
    if (ir::isBuiltinCallee(callee))
        return Effect::Pure;
    return Effect::Effectful; // Unknown external: assume the worst.
}

PurityResult
computePurity(const ir::Module &module)
{
    PurityResult result;
    std::set<std::string> placeholders;
    for (const auto &meta : module.tradeoffs)
        placeholders.insert(meta.placeholder);
    for (const auto &fn : module.functions)
        result.effects[fn.name] = Effect::Pure;

    // Bottom-up fixpoint; recursion and call cycles converge because
    // the join is monotone over a three-point lattice.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &fn : module.functions) {
            Effect effect = result.effects[fn.name];
            for (const auto &block : fn.blocks) {
                for (const auto &inst : block.instructions) {
                    if (inst.op != ir::Opcode::Call)
                        continue;
                    const Effect callee =
                        placeholders.count(inst.callee)
                            ? Effect::ReadsTradeoffs
                            : result.effectOf(inst.callee);
                    effect = joinEffects(effect, callee);
                }
            }
            if (effect != result.effects[fn.name]) {
                result.effects[fn.name] = effect;
                changed = true;
            }
        }
    }
    return result;
}

std::vector<Diagnostic>
runPurityPass(AnalysisManager &manager)
{
    const ir::Module &module = manager.module();
    const PurityResult purity = computePurity(module);

    std::vector<Diagnostic> diags;
    for (const auto &meta : module.tradeoffs) {
        struct Helper
        {
            const char *role;
            const std::string &name;
        };
        const Helper helpers[] = {
            {"getValue", meta.getValueFn},
            {"size", meta.sizeFn},
            {"defaultIndex", meta.defaultIndexFn},
            {"placeholder", meta.placeholder},
        };
        for (const auto &helper : helpers) {
            if (helper.name.empty())
                continue;
            const ir::Function *fn = module.findFunction(helper.name);
            if (fn == nullptr)
                continue; // Verifier reports missing helpers.
            const Effect effect = purity.effectOf(helper.name);
            if (effect == Effect::Pure)
                continue;
            diags.push_back(makeDiagnostic(
                "PUR01", helper.name, "", fn->line,
                "tradeoff " + meta.name + " " + helper.role + " @" +
                    helper.name + " is " + effectName(effect) +
                    "; compile-time evaluation requires a pure "
                    "function"));
        }
    }
    return diags;
}

} // namespace stats::analysis
