#include "analysis/range.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "ir/call_graph.hpp"

namespace stats::analysis {

namespace {

constexpr std::int64_t kI64Min =
    std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kI64Max =
    std::numeric_limits<std::int64_t>::max();
/** 2^63 is exactly representable as a double; INT64_MAX is not. */
constexpr double kTwo63 = 9223372036854775808.0;
const double kInf = std::numeric_limits<double>::infinity();

/** Non-empty i64 interval: the values an integer-classed read sees. */
struct IntView
{
    std::int64_t lo;
    std::int64_t hi;
};

/** Non-empty double interval (± inf endpoints) plus a NaN flag. */
struct FloatView
{
    double lo;
    double hi;
    bool nan;
};

/** RtValue::asInt for a (non-NaN) float-classed value. */
std::int64_t
saturate(double f)
{
    if (f >= kTwo63)
        return kI64Max;
    if (f < -kTwo63)
        return kI64Min;
    return static_cast<std::int64_t>(f);
}

/** What `.asInt()` may yield: int view ∪ saturated float view. */
std::optional<IntView>
asIntView(const ValueRange &v)
{
    std::optional<IntView> result;
    const auto include = [&](std::int64_t lo, std::int64_t hi) {
        if (!result)
            result = IntView{lo, hi};
        else {
            result->lo = std::min(result->lo, lo);
            result->hi = std::max(result->hi, hi);
        }
    };
    if (v.mayInt)
        include(v.intLo, v.intHi);
    if (v.mayFloat) {
        // Saturation is monotone, so the endpoints convert the hull.
        include(saturate(v.fltLo), saturate(v.fltHi));
        if (v.maybeNaN)
            include(0, 0); // NaN casts to 0.
    }
    return result;
}

/** What `.asFloat()` may yield: float view ∪ double(int view). */
std::optional<FloatView>
asFloatView(const ValueRange &v)
{
    std::optional<FloatView> result;
    const auto include = [&](double lo, double hi, bool nan) {
        if (!result)
            result = FloatView{lo, hi, nan};
        else {
            result->lo = std::min(result->lo, lo);
            result->hi = std::max(result->hi, hi);
            result->nan = result->nan || nan;
        }
    };
    if (v.mayFloat)
        include(v.fltLo, v.fltHi, v.maybeNaN);
    // int64 -> double conversion is monotone (rounds to nearest).
    if (v.mayInt)
        include(double(v.intLo), double(v.intHi), false);
    return result;
}

bool
isFinite(const FloatView &view)
{
    return view.lo > -kInf && view.hi < kInf;
}

std::string
i128ToString(__int128 value)
{
    if (value == 0)
        return "0";
    const bool negative = value < 0;
    unsigned __int128 magnitude =
        negative ? -static_cast<unsigned __int128>(value)
                 : static_cast<unsigned __int128>(value);
    std::string digits;
    while (magnitude != 0) {
        digits.push_back(char('0' + int(magnitude % 10)));
        magnitude /= 10;
    }
    if (negative)
        digits.push_back('-');
    std::reverse(digits.begin(), digits.end());
    return digits;
}

/**
 * Exact hull of an i64 add/sub/mul computed in 128-bit arithmetic,
 * before the two's-complement wrap the interpreter applies.
 */
struct WideHull
{
    __int128 lo;
    __int128 hi;
};

std::optional<WideHull>
wideHull(ir::Opcode op, const IntView &a, const IntView &b)
{
    const __int128 alo = a.lo, ahi = a.hi, blo = b.lo, bhi = b.hi;
    switch (op) {
      case ir::Opcode::Add:
        return WideHull{alo + blo, ahi + bhi};
      case ir::Opcode::Sub:
        return WideHull{alo - bhi, ahi - blo};
      case ir::Opcode::Mul: {
        const __int128 corners[4] = {alo * blo, alo * bhi, ahi * blo,
                                     ahi * bhi};
        WideHull hull{corners[0], corners[0]};
        for (const __int128 corner : corners) {
            hull.lo = std::min(hull.lo, corner);
            hull.hi = std::max(hull.hi, corner);
        }
        return hull;
      }
      default:
        return std::nullopt;
    }
}

/** i64 add/sub/mul with the interpreter's wrap-around semantics. */
ValueRange
intArith(ir::Opcode op, const IntView &a, const IntView &b)
{
    const auto hull = wideHull(op, a, b);
    if (!hull)
        return ValueRange::topInt();
    constexpr __int128 kSpan = __int128(1) << 64;
    if (hull->lo >= __int128(kI64Min) && hull->hi <= __int128(kI64Max))
        return ValueRange::ofInt(std::int64_t(hull->lo),
                                 std::int64_t(hull->hi));
    if (hull->hi - hull->lo >= kSpan - 1)
        return ValueRange::topInt();
    // Wrap: shift the hull by the multiple of 2^64 that brings its
    // low end in range; if the high end then fits too, the wrapped
    // set stays one interval, otherwise it straddles the seam.
    __int128 lo = hull->lo, hi = hull->hi;
    while (lo < __int128(kI64Min)) {
        lo += kSpan;
        hi += kSpan;
    }
    while (lo > __int128(kI64Max)) {
        lo -= kSpan;
        hi -= kSpan;
    }
    if (hi <= __int128(kI64Max))
        return ValueRange::ofInt(std::int64_t(lo), std::int64_t(hi));
    return ValueRange::topInt();
}

/**
 * i64 division with the interpreter's guards: a zero divisor panics
 * (no value flows), INT64_MIN / -1 wraps to INT64_MIN. Truncating
 * division is monotone per divisor-sign region, so the extremes sit
 * at dividend endpoints against divisor candidates {lo, hi, -1, 1} —
 * except that the INT64_MIN/-1 wrap breaks monotonicity in the
 * dividend for divisor -1: x/-1 = -x peaks at the *interior* point
 * x = INT64_MIN+1 (giving INT64_MAX) when the range also contains
 * INT64_MIN, so that extremum is included explicitly.
 */
ValueRange
intDiv(const IntView &a, const IntView &b)
{
    std::vector<std::int64_t> divisors;
    for (const std::int64_t y :
         {b.lo, b.hi, std::int64_t(-1), std::int64_t(1)}) {
        if (y != 0 && y >= b.lo && y <= b.hi)
            divisors.push_back(y);
    }
    if (divisors.empty())
        return ValueRange::bottom(); // Always panics.
    bool any = false;
    std::int64_t lo = 0, hi = 0;
    const auto include = [&](std::int64_t q) {
        if (!any) {
            lo = hi = q;
            any = true;
        } else {
            lo = std::min(lo, q);
            hi = std::max(hi, q);
        }
    };
    for (const std::int64_t x : {a.lo, a.hi}) {
        for (const std::int64_t y : divisors) {
            if (x == kI64Min && y == -1)
                include(kI64Min); // Wraps like the other i64 ops.
            else
                include(x / y);
        }
    }
    if (a.lo == kI64Min && a.hi > kI64Min && b.lo <= -1 && -1 <= b.hi)
        include(kI64Max); // Interior extremum: (INT64_MIN + 1) / -1.
    return ValueRange::ofInt(lo, hi);
}

/**
 * IEEE double arithmetic over intervals. Rounding is monotone, so
 * corner evaluation bounds the result for finite operands; anything
 * involving an infinite endpoint (or a zero-containing divisor)
 * conservatively goes to float-top, which also covers the
 * NaN-producing corners (inf - inf, 0 * inf, 0 / 0).
 */
ValueRange
floatArith(ir::Opcode op, const FloatView &a, const FloatView &b,
           ir::Type result_type)
{
    if (!isFinite(a) || !isFinite(b))
        return ValueRange::topFloat();
    if (op == ir::Opcode::Div && b.lo <= 0.0 && b.hi >= 0.0)
        return ValueRange::topFloat();
    double corners[4];
    switch (op) {
      case ir::Opcode::Add:
        corners[0] = a.lo + b.lo;
        corners[1] = a.lo + b.hi;
        corners[2] = a.hi + b.lo;
        corners[3] = a.hi + b.hi;
        break;
      case ir::Opcode::Sub:
        corners[0] = a.lo - b.lo;
        corners[1] = a.lo - b.hi;
        corners[2] = a.hi - b.lo;
        corners[3] = a.hi - b.hi;
        break;
      case ir::Opcode::Mul:
        corners[0] = a.lo * b.lo;
        corners[1] = a.lo * b.hi;
        corners[2] = a.hi * b.lo;
        corners[3] = a.hi * b.hi;
        break;
      case ir::Opcode::Div:
        corners[0] = a.lo / b.lo;
        corners[1] = a.lo / b.hi;
        corners[2] = a.hi / b.lo;
        corners[3] = a.hi / b.hi;
        break;
      default:
        return ValueRange::topFloat();
    }
    double lo = corners[0], hi = corners[0];
    for (const double corner : corners) {
        lo = std::min(lo, corner);
        hi = std::max(hi, corner);
    }
    if (result_type == ir::Type::F32) {
        // F32 results are float-rounded doubles; rounding is monotone.
        lo = double(float(lo));
        hi = double(float(hi));
    }
    return ValueRange::ofFloat(lo, hi, a.nan || b.nan);
}

/** Builtin return ranges, refined by the (float view of the) input. */
std::optional<ValueRange>
builtinRange(const std::string &name,
             const std::optional<FloatView> &arg)
{
    const FloatView any{-kInf, kInf, true};
    const FloatView in = arg ? *arg : any;
    if (name == "sqrt") {
        if (!in.nan && in.lo >= 0.0)
            return ValueRange::ofFloat(std::sqrt(in.lo),
                                       std::sqrt(in.hi));
        return ValueRange::ofFloat(0.0, kInf, true);
    }
    if (name == "exp")
        return ValueRange::ofFloat(0.0, kInf, in.nan);
    if (name == "log")
        return ValueRange::ofFloat(-kInf, kInf, in.nan || in.lo < 0.0);
    if (name == "sin" || name == "cos") {
        const bool finite_arg = !in.nan && isFinite(in);
        return ValueRange::ofFloat(-1.0, 1.0, !finite_arg);
    }
    if (name == "fabs") {
        const double mag_lo =
            std::min(std::fabs(in.lo), std::fabs(in.hi));
        const double lo = in.lo <= 0.0 && in.hi >= 0.0 ? 0.0 : mag_lo;
        const double hi = std::max(std::fabs(in.lo), std::fabs(in.hi));
        return ValueRange::ofFloat(lo, hi, in.nan);
    }
    if (name == "rand_uniform")
        return ValueRange::ofFloat(0.0, 1.0);
    return std::nullopt;
}

} // namespace

// ------------------------------------------------------------ ValueRange

ValueRange
ValueRange::top()
{
    ValueRange v = topInt();
    v.join(topFloat());
    return v;
}

ValueRange
ValueRange::topInt()
{
    return ofInt(kI64Min, kI64Max);
}

ValueRange
ValueRange::topFloat()
{
    return ofFloat(-kInf, kInf, true);
}

ValueRange
ValueRange::ofInt(std::int64_t lo, std::int64_t hi)
{
    ValueRange v;
    v.mayInt = true;
    v.intLo = lo;
    v.intHi = hi;
    return v;
}

ValueRange
ValueRange::ofFloat(double lo, double hi, bool nan)
{
    if (std::isnan(lo) || std::isnan(hi))
        return topFloat();
    ValueRange v;
    v.mayFloat = true;
    v.fltLo = lo;
    v.fltHi = hi;
    v.maybeNaN = nan;
    return v;
}

bool
ValueRange::isTop() const
{
    return mayInt && intLo == kI64Min && intHi == kI64Max && mayFloat &&
           fltLo == -kInf && fltHi == kInf && maybeNaN;
}

bool
ValueRange::containsInt(std::int64_t v) const
{
    return mayInt && intLo <= v && v <= intHi;
}

bool
ValueRange::containsFloat(double v) const
{
    if (!mayFloat)
        return false;
    if (std::isnan(v))
        return maybeNaN;
    return fltLo <= v && v <= fltHi;
}

std::optional<std::int64_t>
ValueRange::constantInt() const
{
    if (mayInt && !mayFloat && intLo == intHi)
        return intLo;
    return std::nullopt;
}

bool
ValueRange::join(const ValueRange &other)
{
    bool changed = false;
    if (other.mayInt) {
        if (!mayInt) {
            mayInt = true;
            intLo = other.intLo;
            intHi = other.intHi;
            changed = true;
        } else {
            if (other.intLo < intLo) {
                intLo = other.intLo;
                changed = true;
            }
            if (other.intHi > intHi) {
                intHi = other.intHi;
                changed = true;
            }
        }
    }
    if (other.mayFloat) {
        if (!mayFloat) {
            mayFloat = true;
            fltLo = other.fltLo;
            fltHi = other.fltHi;
            maybeNaN = other.maybeNaN;
            changed = true;
        } else {
            if (other.fltLo < fltLo) {
                fltLo = other.fltLo;
                changed = true;
            }
            if (other.fltHi > fltHi) {
                fltHi = other.fltHi;
                changed = true;
            }
            if (other.maybeNaN && !maybeNaN) {
                maybeNaN = true;
                changed = true;
            }
        }
    }
    return changed;
}

void
ValueRange::widen(const ValueRange &previous)
{
    if (mayInt && previous.mayInt) {
        if (intLo < previous.intLo)
            intLo = kI64Min;
        if (intHi > previous.intHi)
            intHi = kI64Max;
    }
    if (mayFloat && previous.mayFloat) {
        if (fltLo < previous.fltLo)
            fltLo = -kInf;
        if (fltHi > previous.fltHi)
            fltHi = kInf;
    }
}

bool
ValueRange::operator==(const ValueRange &other) const
{
    if (mayInt != other.mayInt || mayFloat != other.mayFloat)
        return false;
    if (mayInt && (intLo != other.intLo || intHi != other.intHi))
        return false;
    if (mayFloat && (fltLo != other.fltLo || fltHi != other.fltHi ||
                     maybeNaN != other.maybeNaN))
        return false;
    return true;
}

std::string
ValueRange::toString() const
{
    if (isBottom())
        return "bottom";
    std::ostringstream out;
    if (mayInt)
        out << "i64:[" << intLo << ", " << intHi << "]";
    if (mayFloat) {
        if (mayInt)
            out << " ";
        out << "f64:[" << fltLo << ", " << fltHi << "]";
        if (maybeNaN)
            out << "|nan";
    }
    return out.str();
}

const ValueRange &
FunctionRanges::of(const std::string &temp) const
{
    static const ValueRange bottom;
    const auto it = temps.find(temp);
    return it == temps.end() ? bottom : it->second;
}

// ------------------------------------------------------- function solver

namespace {

using Env = std::map<std::string, ValueRange>;

/** Joins at a block entry before widening kicks in. */
constexpr int kWidenAfter = 4;

/**
 * Flow-sensitive fixpoint over one function. The IR is SSA only by
 * convention (shadowing re-defs are legal), so the solver keeps one
 * environment per block entry, joins predecessor exits edge by edge
 * (binding leading phis from the predecessor's exit environment), and
 * widens a block's entry once it has absorbed kWidenAfter joins.
 */
class FunctionSolver
{
  public:
    FunctionSolver(const RangeAnalysis &owner, const ir::Module &module,
                   const Cfg &cfg, const ir::Function &fn)
        : _owner(owner), _module(module), _fn(fn), _cfg(cfg)
    {}

    FunctionRanges solve();

  private:
    ValueRange evalOperand(const ir::Operand &operand,
                           const Env &env) const;
    ValueRange transfer(const ir::Instruction &inst,
                        const Env &env) const;
    Env blockExit(int block, const Env &entry) const;
    bool flowEdge(int from, int to, const Env &exit);

    const RangeAnalysis &_owner;
    const ir::Module &_module;
    const ir::Function &_fn;
    const Cfg &_cfg;
    std::vector<Env> _entry;
    std::vector<int> _joins;
};

ValueRange
FunctionSolver::evalOperand(const ir::Operand &operand,
                            const Env &env) const
{
    switch (operand.kind) {
      case ir::Operand::Kind::ConstInt:
        return ValueRange::ofConstInt(operand.intValue);
      case ir::Operand::Kind::ConstFloat:
        return ValueRange::ofConstFloat(operand.floatValue);
      case ir::Operand::Kind::Temp: {
        const auto it = env.find(operand.name);
        // An unbound temp panics the walker: nothing flows.
        return it == env.end() ? ValueRange::bottom() : it->second;
      }
    }
    return ValueRange::top();
}

ValueRange
FunctionSolver::transfer(const ir::Instruction &inst,
                         const Env &env) const
{
    switch (inst.op) {
      case ir::Opcode::Add:
      case ir::Opcode::Sub:
      case ir::Opcode::Mul:
      case ir::Opcode::Div: {
        const ValueRange a = evalOperand(inst.operands[0], env);
        const ValueRange b = evalOperand(inst.operands[1], env);
        if (ir::isFloating(inst.type)) {
            const auto fa = asFloatView(a), fb = asFloatView(b);
            if (!fa || !fb)
                return ValueRange::bottom();
            return floatArith(inst.op, *fa, *fb, inst.type);
        }
        const auto ia = asIntView(a), ib = asIntView(b);
        if (!ia || !ib)
            return ValueRange::bottom();
        if (inst.op == ir::Opcode::Div)
            return intDiv(*ia, *ib);
        return intArith(inst.op, *ia, *ib);
      }
      case ir::Opcode::CmpEq:
      case ir::Opcode::CmpLt:
      case ir::Opcode::CmpLe: {
        const ValueRange a = evalOperand(inst.operands[0], env);
        const ValueRange b = evalOperand(inst.operands[1], env);
        if (a.isBottom() || b.isBottom())
            return ValueRange::bottom();
        bool provably_true = false, provably_false = false;
        if (ir::isFloating(inst.type)) {
            const auto fa = asFloatView(a), fb = asFloatView(b);
            if (fa && fb) {
                // NaN compares false, so proving "true" additionally
                // requires both sides ordered.
                const bool ordered = !fa->nan && !fb->nan;
                switch (inst.op) {
                  case ir::Opcode::CmpEq:
                    provably_true = ordered && fa->lo == fa->hi &&
                                    fb->lo == fb->hi &&
                                    fa->lo == fb->lo;
                    provably_false =
                        fa->lo > fb->hi || fa->hi < fb->lo;
                    break;
                  case ir::Opcode::CmpLt:
                    provably_true = ordered && fa->hi < fb->lo;
                    provably_false = fa->lo >= fb->hi;
                    break;
                  default: // CmpLe
                    provably_true = ordered && fa->hi <= fb->lo;
                    provably_false = fa->lo > fb->hi;
                    break;
                }
            }
        } else {
            const auto ia = asIntView(a), ib = asIntView(b);
            if (ia && ib) {
                switch (inst.op) {
                  case ir::Opcode::CmpEq:
                    provably_true = ia->lo == ia->hi &&
                                    ib->lo == ib->hi &&
                                    ia->lo == ib->lo;
                    provably_false =
                        ia->lo > ib->hi || ia->hi < ib->lo;
                    break;
                  case ir::Opcode::CmpLt:
                    provably_true = ia->hi < ib->lo;
                    provably_false = ia->lo >= ib->hi;
                    break;
                  default: // CmpLe
                    provably_true = ia->hi <= ib->lo;
                    provably_false = ia->lo > ib->hi;
                    break;
                }
            }
        }
        if (provably_true)
            return ValueRange::ofConstInt(1);
        if (provably_false)
            return ValueRange::ofConstInt(0);
        return ValueRange::ofInt(0, 1);
      }
      case ir::Opcode::Select: {
        const ValueRange cond = evalOperand(inst.operands[0], env);
        if (cond.isBottom())
            return ValueRange::bottom();
        const auto truth = rangeproof::provenTruth(cond);
        if (truth.has_value() && *truth)
            return evalOperand(inst.operands[1], env);
        if (truth.has_value())
            return evalOperand(inst.operands[2], env);
        ValueRange result = evalOperand(inst.operands[1], env);
        result.join(evalOperand(inst.operands[2], env));
        return result;
      }
      case ir::Opcode::Cast: {
        const ValueRange v = evalOperand(inst.operands[0], env);
        if (v.isBottom())
            return ValueRange::bottom();
        if (!ir::isFloating(inst.type)) {
            const auto iv = asIntView(v);
            return iv ? ValueRange::ofInt(iv->lo, iv->hi)
                      : ValueRange::bottom();
        }
        const auto fv = asFloatView(v);
        if (!fv)
            return ValueRange::bottom();
        if (inst.type == ir::Type::F32)
            return ValueRange::ofFloat(double(float(fv->lo)),
                                       double(float(fv->hi)),
                                       fv->nan);
        return ValueRange::ofFloat(fv->lo, fv->hi, fv->nan);
      }
      case ir::Opcode::Call: {
        if (_module.findFunction(inst.callee) != nullptr)
            return _owner.summaryOf(inst.callee);
        if (!_owner.trustsBuiltins())
            return ValueRange::top(); // External may be rebound.
        std::optional<FloatView> first_arg;
        if (!inst.operands.empty()) {
            const ValueRange a = evalOperand(inst.operands[0], env);
            if (a.isBottom())
                return ValueRange::bottom();
            first_arg = asFloatView(a);
        }
        const auto builtin = builtinRange(inst.callee, first_arg);
        return builtin ? *builtin : ValueRange::top();
      }
      default:
        return ValueRange::top();
    }
}

Env
FunctionSolver::blockExit(int block, const Env &entry) const
{
    Env env = entry;
    for (const auto &inst : _cfg.block(block).instructions) {
        // Leading phis were bound on the incoming edge; phis below
        // the leading group never execute on the walker.
        if (inst.op == ir::Opcode::Phi)
            continue;
        if (ir::isTerminator(inst.op))
            break; // Code after the first terminator is dead.
        if (!inst.result.empty())
            env[inst.result] = transfer(inst, env);
    }
    return env;
}

bool
FunctionSolver::flowEdge(int from, int to, const Env &exit)
{
    const std::string &from_label = _cfg.block(from).label;
    std::vector<std::pair<std::string, ValueRange>> phi_values;
    for (const auto &inst : _cfg.block(to).instructions) {
        if (inst.op != ir::Opcode::Phi)
            break;
        bool found = false;
        for (std::size_t i = 0; i < inst.labels.size(); ++i) {
            if (inst.labels[i] == from_label) {
                // First matching incoming wins (walker semantics).
                phi_values.emplace_back(
                    inst.result, evalOperand(inst.operands[i], exit));
                found = true;
                break;
            }
        }
        if (!found)
            return false; // Walker panics: nothing flows on this edge.
    }
    Env contribution = exit;
    for (auto &[name, value] : phi_values)
        contribution[name] = value;

    Env &entry = _entry[std::size_t(to)];
    const bool widening = ++_joins[std::size_t(to)] > kWidenAfter;
    bool changed = false;
    for (const auto &[name, value] : contribution) {
        ValueRange &slot = entry[name];
        const ValueRange before = slot;
        if (slot.join(value)) {
            if (widening)
                slot.widen(before);
            changed = true;
        }
    }
    return changed;
}

FunctionRanges
FunctionSolver::solve()
{
    _entry.assign(_cfg.blockCount(), Env{});
    _joins.assign(_cfg.blockCount(), 0);
    for (const auto &param : _fn.params)
        _entry[std::size_t(_cfg.entry())][param.name] =
            ValueRange::top();

    // Reverse-postorder sweeps to a fixpoint. Widening bounds every
    // endpoint chain, so termination is structural, not lucky.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const int block : _cfg.reversePostorder()) {
            const Env exit =
                blockExit(block, _entry[std::size_t(block)]);
            for (const int succ : _cfg.successors(block)) {
                if (flowEdge(block, succ, exit))
                    changed = true;
            }
        }
    }

    // Reporting pass: join every binding any reachable execution
    // point can make, plus the ranges flowing into each `ret`.
    FunctionRanges ranges;
    for (const auto &param : _fn.params)
        ranges.temps[param.name].join(ValueRange::top());
    for (const int block : _cfg.reversePostorder()) {
        Env env = _entry[std::size_t(block)];
        for (const auto &inst : _cfg.block(block).instructions) {
            if (inst.op == ir::Opcode::Phi) {
                const auto it = env.find(inst.result);
                if (it != env.end())
                    ranges.temps[inst.result].join(it->second);
                continue;
            }
            if (inst.op == ir::Opcode::Ret) {
                if (inst.operands.empty()) {
                    // A bare `ret` returns a default RtValue: int 0.
                    ranges.returnRange.join(ValueRange::ofConstInt(0));
                } else {
                    ranges.returnRange.join(
                        evalOperand(inst.operands[0], env));
                }
                break;
            }
            if (ir::isTerminator(inst.op))
                break;
            if (!inst.result.empty()) {
                env[inst.result] = transfer(inst, env);
                ranges.temps[inst.result].join(env[inst.result]);
            }
        }
    }
    return ranges;
}

} // namespace

// --------------------------------------------------------- RangeAnalysis

RangeAnalysis::RangeAnalysis(AnalysisManager &manager,
                             bool trust_builtins)
    : _manager(manager), _trustBuiltins(trust_builtins)
{
    const ir::Module &module = manager.module();
    const ir::CallGraph &graph = manager.callGraph();

    // Iterative DFS: bottom-up (postorder) processing order, plus the
    // set of functions on any call cycle — those get top summaries.
    std::map<std::string, int> color; // 0 white, 1 grey, 2 black.
    std::set<std::string> recursive;
    std::vector<std::string> postorder;
    for (const auto &fn : module.functions) {
        if (color[fn.name] != 0)
            continue;
        std::vector<std::pair<std::string, std::size_t>> stack;
        stack.emplace_back(fn.name, 0);
        color[fn.name] = 1;
        while (!stack.empty()) {
            auto &[name, next] = stack.back();
            const auto &callees = graph.callees(name);
            if (next < callees.size()) {
                auto it = callees.begin();
                std::advance(it, long(next));
                ++next;
                const std::string &callee = *it;
                if (color[callee] == 0) {
                    color[callee] = 1;
                    stack.emplace_back(callee, 0);
                } else if (color[callee] == 1) {
                    // Back edge: everything from the callee's stack
                    // position upward is on a cycle.
                    bool seen = false;
                    for (const auto &frame : stack) {
                        seen = seen || frame.first == callee;
                        if (seen)
                            recursive.insert(frame.first);
                    }
                }
            } else {
                color[name] = 2;
                postorder.push_back(name);
                stack.pop_back();
            }
        }
    }

    for (const auto &name : recursive)
        _summaries[name] = ValueRange::top();
    for (const auto &name : postorder) {
        analyzeFunction(name);
        if (recursive.count(name) == 0)
            _summaries[name] = _functions[name].returnRange;
    }
}

void
RangeAnalysis::analyzeFunction(const std::string &name)
{
    const ir::Function *fn = _manager.module().findFunction(name);
    if (fn == nullptr || fn->blocks.empty())
        return;
    FunctionSolver solver(*this, _manager.module(), _manager.cfg(name),
                          *fn);
    _functions[name] = solver.solve();
}

const FunctionRanges &
RangeAnalysis::functionRanges(const std::string &fn) const
{
    const auto it = _functions.find(fn);
    return it == _functions.end() ? _empty : it->second;
}

ValueRange
RangeAnalysis::summaryOf(const std::string &fn) const
{
    const auto it = _summaries.find(fn);
    return it == _summaries.end() ? ValueRange::top() : it->second;
}

// ------------------------------------------------------------ rangeproof

namespace rangeproof {

ValueRange
rangeOfOperand(const ir::Operand &operand, const FunctionRanges &ranges)
{
    switch (operand.kind) {
      case ir::Operand::Kind::ConstInt:
        return ValueRange::ofConstInt(operand.intValue);
      case ir::Operand::Kind::ConstFloat:
        return ValueRange::ofConstFloat(operand.floatValue);
      case ir::Operand::Kind::Temp:
        return ranges.of(operand.name);
    }
    return ValueRange::top();
}

bool
castNeverSaturates(const ValueRange &operand)
{
    // -2^63 truncates to exactly INT64_MIN; anything >= +2^63 (or
    // NaN) takes the saturation path.
    return operand.mayFloat && !operand.maybeNaN &&
           operand.fltLo >= -kTwo63 && operand.fltHi < kTwo63;
}

bool
castAlwaysSaturates(const ValueRange &operand)
{
    if (!operand.mayFloat || operand.mayInt || operand.maybeNaN)
        return false;
    return operand.fltLo >= kTwo63 || operand.fltHi < -kTwo63;
}

bool
divisorMayBeZero(const ValueRange &divisor)
{
    const auto view = asIntView(divisor);
    if (!view || view->lo > 0 || view->hi < 0)
        return false;
    // Stay quiet on divisors the analysis knows nothing about.
    return view->lo != kI64Min || view->hi != kI64Max;
}

bool
divNeedsNoGuards(const ValueRange &dividend, const ValueRange &divisor)
{
    const auto a = asIntView(dividend), b = asIntView(divisor);
    if (!a || !b)
        return false;
    if (b->lo <= 0 && b->hi >= 0)
        return false; // May divide by zero.
    if (a->lo == kI64Min && b->lo <= -1 && -1 <= b->hi)
        return false; // May hit the INT64_MIN / -1 wrap.
    return true;
}

bool
definitelyWraps(ir::Opcode op, const ValueRange &a, const ValueRange &b)
{
    const auto ia = asIntView(a), ib = asIntView(b);
    if (!ia || !ib)
        return false;
    const auto hull = wideHull(op, *ia, *ib);
    return hull && (hull->hi < __int128(kI64Min) ||
                    hull->lo > __int128(kI64Max));
}

std::optional<bool>
provenTruth(const ValueRange &cond)
{
    const auto view = asIntView(cond);
    if (!view)
        return std::nullopt;
    if (view->lo > 0 || view->hi < 0)
        return true;
    if (view->lo == 0 && view->hi == 0)
        return false;
    return std::nullopt;
}

} // namespace rangeproof

// ------------------------------------------------------------ lint pass

std::vector<Diagnostic>
runRangePass(AnalysisManager &manager)
{
    const ir::Module &module = manager.module();
    RangeAnalysis analysis(manager);
    std::vector<Diagnostic> diags;

    for (const auto &fn : module.functions) {
        if (fn.blocks.empty())
            continue;
        const FunctionRanges &ranges = analysis.functionRanges(fn.name);
        const bool committed = module.findAuxClone(fn.name) == nullptr;
        const Cfg &cfg = manager.cfg(fn.name);
        for (const int block : cfg.reversePostorder()) {
            const auto &bb = cfg.block(block);
            for (const auto &inst : bb.instructions) {
                if (inst.op == ir::Opcode::Phi)
                    continue;
                if (ir::isTerminator(inst.op))
                    break;
                switch (inst.op) {
                  case ir::Opcode::Add:
                  case ir::Opcode::Sub:
                  case ir::Opcode::Mul: {
                    if (ir::isFloating(inst.type) || !committed)
                        break;
                    const ValueRange a = rangeproof::rangeOfOperand(
                        inst.operands[0], ranges);
                    const ValueRange b = rangeproof::rangeOfOperand(
                        inst.operands[1], ranges);
                    if (!rangeproof::definitelyWraps(inst.op, a, b))
                        break;
                    const auto hull =
                        wideHull(inst.op, *asIntView(a), *asIntView(b));
                    std::ostringstream msg;
                    msg << "'" << inst.toString()
                        << "' always wraps i64 (exact result in ["
                        << i128ToString(hull->lo) << ", "
                        << i128ToString(hull->hi) << "])";
                    diags.push_back(makeDiagnostic(
                        "RNG01", fn.name, bb.label, inst.line,
                        msg.str()));
                    break;
                  }
                  case ir::Opcode::Div: {
                    if (ir::isFloating(inst.type))
                        break;
                    const ValueRange d = rangeproof::rangeOfOperand(
                        inst.operands[1], ranges);
                    if (!rangeproof::divisorMayBeZero(d))
                        break;
                    const auto view = asIntView(d);
                    const bool always =
                        view->lo == 0 && view->hi == 0;
                    std::ostringstream msg;
                    msg << "divisor " << inst.operands[1].toString()
                        << " of '" << inst.toString() << "' "
                        << (always ? "is always" : "may be")
                        << " zero (divisor range i64:[" << view->lo
                        << ", " << view->hi << "])";
                    diags.push_back(makeDiagnostic(
                        "RNG02", fn.name, bb.label, inst.line,
                        msg.str()));
                    break;
                  }
                  case ir::Opcode::Cast: {
                    if (ir::isFloating(inst.type))
                        break;
                    const ValueRange v = rangeproof::rangeOfOperand(
                        inst.operands[0], ranges);
                    if (!rangeproof::castAlwaysSaturates(v))
                        break;
                    std::ostringstream msg;
                    msg << "'" << inst.toString()
                        << "' always saturates (operand range "
                        << v.toString() << ")";
                    diags.push_back(makeDiagnostic(
                        "RNG03", fn.name, bb.label, inst.line,
                        msg.str()));
                    break;
                  }
                  default:
                    break;
                }
            }
        }
    }

    sortDiagnostics(diags);
    return diags;
}

} // namespace stats::analysis
