/**
 * @file
 * Def-use chains of one function: where every temporary is defined
 * (parameters count as entry definitions) and where it is used. The
 * mini-IR is SSA by convention but the structural verifier does not
 * enforce single assignment, so definitions are a list; the
 * reaching-definitions analysis (dataflow.hpp) disambiguates uses.
 */

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace stats::analysis {

/** A position inside a function: instruction `index` of `block`. */
struct InstRef
{
    int block = 0;
    int index = 0; ///< -1 with block==-1 encodes a parameter.

    bool operator==(const InstRef &o) const
    {
        return block == o.block && index == o.index;
    }
    bool operator<(const InstRef &o) const
    {
        return block != o.block ? block < o.block : index < o.index;
    }
};

class DefUse
{
  public:
    explicit DefUse(const ir::Function &fn);

    const ir::Function &function() const { return *_fn; }

    /** Definition sites of a temp; empty when undefined. */
    const std::vector<InstRef> &defs(const std::string &name) const;

    /** Use sites of a temp (phi uses attributed to the phi). */
    const std::vector<InstRef> &uses(const std::string &name) const;

    /** All defined names (params + instruction results). */
    const std::vector<std::string> &names() const { return _names; }

    /**
     * The value type produced by a definition site. Comparisons
     * produce I64 regardless of their comparand type; parameters use
     * their declared type.
     */
    ir::Type typeOfDef(const std::string &name, const InstRef &site) const;

    /**
     * The single definition type when every def site agrees;
     * nullopt for undefined or conflicting-type temps.
     */
    std::optional<ir::Type> uniqueDefType(const std::string &name) const;

  private:
    const ir::Function *_fn;
    std::vector<std::string> _names;
    std::map<std::string, std::vector<InstRef>> _defs;
    std::map<std::string, std::vector<InstRef>> _uses;
};

/** Result type of one instruction (CmpEq/Lt/Le produce I64). */
ir::Type resultTypeOf(const ir::Instruction &inst);

} // namespace stats::analysis
