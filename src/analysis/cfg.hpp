/**
 * @file
 * Control-flow graph of one mini-IR function.
 *
 * The dataflow framework (src/analysis/dataflow.hpp) and the
 * dominator tree are built on top of this: block successors are the
 * terminator's labels, predecessors are the reverse edges, and the
 * reverse postorder gives the iteration order that makes the
 * fixed-point solvers converge quickly.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace stats::analysis {

class Cfg
{
  public:
    explicit Cfg(const ir::Function &fn);

    const ir::Function &function() const { return *_fn; }
    std::size_t blockCount() const { return _succs.size(); }

    /** Index of a block label; -1 if unknown. */
    int indexOf(const std::string &label) const;

    const ir::BasicBlock &block(int index) const;
    const std::vector<int> &successors(int block) const;
    const std::vector<int> &predecessors(int block) const;

    /** Entry block index (0) — functions always start at block 0. */
    int entry() const { return 0; }

    /** Reverse postorder over reachable blocks, entry first. */
    const std::vector<int> &reversePostorder() const { return _rpo; }

    /** Position of `block` in the RPO; -1 if unreachable. */
    int rpoIndex(int block) const { return _rpoIndex[std::size_t(block)]; }

    bool reachable(int block) const { return rpoIndex(block) >= 0; }

  private:
    const ir::Function *_fn;
    std::map<std::string, int> _indexOf;
    std::vector<std::vector<int>> _succs;
    std::vector<std::vector<int>> _preds;
    std::vector<int> _rpo;
    std::vector<int> _rpoIndex;
};

} // namespace stats::analysis
