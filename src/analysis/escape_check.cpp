#include "analysis/escape_check.hpp"

#include <set>
#include <string>

#include "analysis/purity.hpp"
#include "ir/verifier.hpp"

namespace stats::analysis {

std::vector<Diagnostic>
runEscapeCheck(AnalysisManager &manager)
{
    const ir::Module &module = manager.module();
    const ir::CallGraph &graph = manager.callGraph();
    const PurityResult purity = computePurity(module);

    std::set<std::string> clone_fns;
    for (const auto &meta : module.auxClones)
        clone_fns.insert(meta.clone);
    std::set<std::string> compute_fns;
    for (const auto &dep : module.stateDeps)
        compute_fns.insert(dep.computeFn);

    std::vector<Diagnostic> diags;
    for (const auto &dep : module.stateDeps) {
        if (dep.auxFn.empty())
            continue;
        for (const auto &fn_name : graph.reachableFrom(dep.auxFn)) {
            const ir::Function *fn = module.findFunction(fn_name);
            if (fn == nullptr)
                continue;
            for (const auto &block : fn->blocks) {
                for (const auto &inst : block.instructions) {
                    if (inst.op != ir::Opcode::Call)
                        continue;
                    if (ir::isEffectfulBuiltin(inst.callee)) {
                        diags.push_back(makeDiagnostic(
                            "ESC01", fn_name, block.label, inst.line,
                            "auxiliary code for " + dep.name +
                                " calls effectful builtin @" +
                                inst.callee + " (via @" + fn_name +
                                ")"));
                        continue;
                    }
                    if (compute_fns.count(inst.callee)) {
                        diags.push_back(makeDiagnostic(
                            "ESC03", fn_name, block.label, inst.line,
                            "auxiliary code for " + dep.name +
                                " re-enters committed computeOutput @" +
                                inst.callee));
                        continue;
                    }
                    if (module.findFunction(inst.callee) != nullptr &&
                        !clone_fns.count(inst.callee) &&
                        purity.effectOf(inst.callee) ==
                            Effect::Effectful) {
                        diags.push_back(makeDiagnostic(
                            "ESC02", fn_name, block.label, inst.line,
                            "auxiliary code for " + dep.name +
                                " calls non-cloned effectful @" +
                                inst.callee));
                    }
                }
            }
        }
    }
    return diags;
}

} // namespace stats::analysis
