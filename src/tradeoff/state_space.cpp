#include "tradeoff/state_space.hpp"

#include <sstream>

#include "support/log.hpp"

namespace stats::tradeoff {

std::size_t
StateSpace::add(Dimension dimension)
{
    if (dimension.cardinality <= 0)
        support::panic("StateSpace: dimension '", dimension.name,
                       "' has cardinality ", dimension.cardinality);
    if (dimension.defaultIndex < 0 ||
        dimension.defaultIndex >= dimension.cardinality) {
        support::panic("StateSpace: dimension '", dimension.name,
                       "' default index out of range");
    }
    if (hasDimension(dimension.name))
        support::panic("StateSpace: duplicate dimension '",
                       dimension.name, "'");
    _dimensions.push_back(std::move(dimension));
    return _dimensions.size() - 1;
}

std::size_t
StateSpace::add(const std::string &name, std::int64_t cardinality,
                std::int64_t default_index)
{
    return add(Dimension{name, cardinality, default_index});
}

const Dimension &
StateSpace::dimension(std::size_t i) const
{
    if (i >= _dimensions.size())
        support::panic("StateSpace: dimension index out of range");
    return _dimensions[i];
}

std::size_t
StateSpace::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < _dimensions.size(); ++i) {
        if (_dimensions[i].name == name)
            return i;
    }
    support::panic("StateSpace: no dimension named '", name, "'");
}

bool
StateSpace::hasDimension(const std::string &name) const
{
    for (const auto &d : _dimensions) {
        if (d.name == name)
            return true;
    }
    return false;
}

double
StateSpace::totalPoints() const
{
    double product = 1.0;
    for (const auto &d : _dimensions)
        product *= static_cast<double>(d.cardinality);
    return product;
}

Configuration
StateSpace::defaultConfiguration() const
{
    Configuration config;
    config.reserve(_dimensions.size());
    for (const auto &d : _dimensions)
        config.push_back(d.defaultIndex);
    return config;
}

bool
StateSpace::valid(const Configuration &config) const
{
    if (config.size() != _dimensions.size())
        return false;
    for (std::size_t i = 0; i < config.size(); ++i) {
        if (config[i] < 0 || config[i] >= _dimensions[i].cardinality)
            return false;
    }
    return true;
}

Configuration
StateSpace::randomConfiguration(support::Xoshiro256 &rng) const
{
    Configuration config;
    config.reserve(_dimensions.size());
    for (const auto &d : _dimensions) {
        config.push_back(static_cast<std::int64_t>(
            rng.nextBelow(static_cast<std::uint64_t>(d.cardinality))));
    }
    return config;
}

std::int64_t
StateSpace::at(const Configuration &config, const std::string &name) const
{
    return config[indexOf(name)];
}

void
StateSpace::set(Configuration &config, const std::string &name,
                std::int64_t index) const
{
    const std::size_t position = indexOf(name);
    if (index < 0 || index >= _dimensions[position].cardinality)
        support::panic("StateSpace: index ", index,
                       " out of range for '", name, "'");
    config[position] = index;
}

std::string
StateSpace::describe(const Configuration &config) const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < _dimensions.size(); ++i) {
        if (i)
            out << " ";
        out << _dimensions[i].name << "="
            << (i < config.size() ? config[i] : -1);
    }
    return out.str();
}

} // namespace stats::tradeoff
