#include "tradeoff/tradeoff.hpp"

#include <sstream>

#include "support/log.hpp"

namespace stats::tradeoff {

TradeoffValue
TradeoffValue::integer(std::int64_t v)
{
    return TradeoffValue(Kind::Integer, v, 0.0, "");
}

TradeoffValue
TradeoffValue::real(double v)
{
    return TradeoffValue(Kind::Real, 0, v, "");
}

TradeoffValue
TradeoffValue::typeName(std::string name)
{
    return TradeoffValue(Kind::TypeName, 0, 0.0, std::move(name));
}

TradeoffValue
TradeoffValue::functionName(std::string name)
{
    return TradeoffValue(Kind::FunctionName, 0, 0.0, std::move(name));
}

std::int64_t
TradeoffValue::asInteger() const
{
    if (_kind != Kind::Integer)
        support::panic("TradeoffValue: not an integer");
    return _int;
}

double
TradeoffValue::asReal() const
{
    if (_kind == Kind::Integer)
        return static_cast<double>(_int);
    if (_kind != Kind::Real)
        support::panic("TradeoffValue: not a real");
    return _real;
}

const std::string &
TradeoffValue::asName() const
{
    if (_kind != Kind::TypeName && _kind != Kind::FunctionName)
        support::panic("TradeoffValue: not a name");
    return _name;
}

std::string
TradeoffValue::toString() const
{
    std::ostringstream out;
    switch (_kind) {
      case Kind::Integer:
        out << _int;
        break;
      case Kind::Real:
        out << _real;
        break;
      case Kind::TypeName:
        out << "type:" << _name;
        break;
      case Kind::FunctionName:
        out << "fn:" << _name;
        break;
    }
    return out.str();
}

bool
TradeoffValue::operator==(const TradeoffValue &other) const
{
    if (_kind != other._kind)
        return false;
    switch (_kind) {
      case Kind::Integer: return _int == other._int;
      case Kind::Real: return _real == other._real;
      default: return _name == other._name;
    }
}

IntRangeOptions::IntRangeOptions(std::int64_t lo, std::int64_t count,
                                 std::int64_t step,
                                 std::int64_t default_index)
    : _lo(lo), _count(count), _step(step), _default(default_index)
{
    if (count <= 0 || default_index < 0 || default_index >= count)
        support::panic("IntRangeOptions: invalid range");
}

TradeoffValue
IntRangeOptions::getValue(std::int64_t i) const
{
    if (i < 0 || i >= _count)
        support::panic("IntRangeOptions: index ", i, " out of range");
    return TradeoffValue::integer(_lo + i * _step);
}

std::unique_ptr<TradeoffOptions>
IntRangeOptions::clone() const
{
    return std::make_unique<IntRangeOptions>(*this);
}

RealListOptions::RealListOptions(std::vector<double> values,
                                 std::int64_t default_index)
    : _values(std::move(values)), _default(default_index)
{
    if (_values.empty() || default_index < 0 ||
        default_index >= static_cast<std::int64_t>(_values.size())) {
        support::panic("RealListOptions: invalid values");
    }
}

std::int64_t
RealListOptions::getMaxIndex() const
{
    return static_cast<std::int64_t>(_values.size());
}

TradeoffValue
RealListOptions::getValue(std::int64_t i) const
{
    if (i < 0 || i >= getMaxIndex())
        support::panic("RealListOptions: index ", i, " out of range");
    return TradeoffValue::real(_values[static_cast<std::size_t>(i)]);
}

std::unique_ptr<TradeoffOptions>
RealListOptions::clone() const
{
    return std::make_unique<RealListOptions>(*this);
}

NameListOptions::NameListOptions(TradeoffValue::Kind kind,
                                 std::vector<std::string> names,
                                 std::int64_t default_index)
    : _kind(kind), _names(std::move(names)), _default(default_index)
{
    if (_names.empty() || default_index < 0 ||
        default_index >= static_cast<std::int64_t>(_names.size())) {
        support::panic("NameListOptions: invalid names");
    }
    if (kind != TradeoffValue::Kind::TypeName &&
        kind != TradeoffValue::Kind::FunctionName) {
        support::panic("NameListOptions: kind must be a name kind");
    }
}

std::int64_t
NameListOptions::getMaxIndex() const
{
    return static_cast<std::int64_t>(_names.size());
}

TradeoffValue
NameListOptions::getValue(std::int64_t i) const
{
    if (i < 0 || i >= getMaxIndex())
        support::panic("NameListOptions: index ", i, " out of range");
    const std::string &name = _names[static_cast<std::size_t>(i)];
    return _kind == TradeoffValue::Kind::TypeName
               ? TradeoffValue::typeName(name)
               : TradeoffValue::functionName(name);
}

std::unique_ptr<TradeoffOptions>
NameListOptions::clone() const
{
    return std::make_unique<NameListOptions>(*this);
}

Tradeoff::Tradeoff(std::string name,
                   std::unique_ptr<TradeoffOptions> options,
                   bool aux_clone, std::string origin)
    : _name(std::move(name)), _options(std::move(options)),
      _auxClone(aux_clone), _origin(std::move(origin))
{
    if (!_options)
        support::panic("Tradeoff '", _name, "' has no options");
}

TradeoffValue
Tradeoff::valueAt(std::int64_t i) const
{
    return _options->getValue(i);
}

TradeoffValue
Tradeoff::defaultValue() const
{
    return _options->getValue(_options->getDefaultIndex());
}

} // namespace stats::tradeoff
