#include "tradeoff/registry.hpp"

#include "support/log.hpp"
#include "support/string_utils.hpp"

namespace stats::tradeoff {

void
Assignment::set(const std::string &name, std::int64_t index)
{
    _indices[name] = index;
}

bool
Assignment::has(const std::string &name) const
{
    return _indices.count(name) > 0;
}

std::int64_t
Assignment::index(const std::string &name) const
{
    auto it = _indices.find(name);
    if (it == _indices.end())
        support::panic("Assignment: no index for tradeoff '", name, "'");
    return it->second;
}

Tradeoff &
Registry::add(const std::string &name,
              std::unique_ptr<TradeoffOptions> options)
{
    if (has(name))
        support::panic("Registry: duplicate tradeoff '", name, "'");
    auto tradeoff = std::make_unique<Tradeoff>(name, std::move(options));
    Tradeoff &ref = *tradeoff;
    _byName.emplace(name, std::move(tradeoff));
    _order.push_back(name);
    return ref;
}

Tradeoff &
Registry::cloneForAuxiliary(const std::string &name)
{
    const Tradeoff &original = get(name);
    const std::string clone_name = std::string(kAuxPrefix) + name;
    if (has(clone_name))
        support::panic("Registry: '", name, "' already cloned");
    auto clone = std::make_unique<Tradeoff>(
        clone_name, original.options().clone(), /* aux_clone */ true,
        name);
    Tradeoff &ref = *clone;
    _byName.emplace(clone_name, std::move(clone));
    _order.push_back(clone_name);
    return ref;
}

bool
Registry::has(const std::string &name) const
{
    return _byName.count(name) > 0;
}

const Tradeoff &
Registry::get(const std::string &name) const
{
    auto it = _byName.find(name);
    if (it == _byName.end())
        support::panic("Registry: unknown tradeoff '", name, "'");
    return *it->second;
}

std::vector<std::string>
Registry::auxNames() const
{
    std::vector<std::string> out;
    for (const auto &name : _order) {
        if (get(name).isAuxClone())
            out.push_back(name);
    }
    return out;
}

TradeoffValue
Registry::value(const std::string &name,
                const Assignment &assignment) const
{
    const Tradeoff &tradeoff = get(name);
    const std::int64_t index =
        assignment.has(name) ? assignment.index(name)
                             : tradeoff.options().getDefaultIndex();
    return tradeoff.valueAt(index);
}

std::int64_t
Registry::intValue(const std::string &name,
                   const Assignment &assignment) const
{
    return value(name, assignment).asInteger();
}

double
Registry::realValue(const std::string &name,
                    const Assignment &assignment) const
{
    return value(name, assignment).asReal();
}

std::string
Registry::nameValue(const std::string &name,
                    const Assignment &assignment) const
{
    return value(name, assignment).asName();
}

Assignment
Registry::defaults() const
{
    Assignment assignment;
    for (const auto &name : _order)
        assignment.set(name, get(name).options().getDefaultIndex());
    return assignment;
}

} // namespace stats::tradeoff
