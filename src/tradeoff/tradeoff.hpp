/**
 * @file
 * The Tradeoff Interface (TI) — paper section 3.3 and Figure 10.
 *
 * A tradeoff is a piece of program text (constant, data type, or
 * function) whose value is chosen from a developer-supplied range.
 * Values are sorted by index; `getMaxIndex()` returns how many values
 * exist, `getValue(i)` the i-th value, and `getDefaultIndex()` the
 * index used outside auxiliary code. The middle-end compiler clones
 * the tradeoffs reachable from a state dependence's computeOutput()
 * so that the quality of auxiliary code can be controlled
 * independently from the rest of the program.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace stats::tradeoff {

/** A tradeoff value: a constant, a data type, or a function. */
class TradeoffValue
{
  public:
    enum class Kind
    {
        Integer,      ///< e.g. number of annealing layers
        Real,         ///< e.g. a threshold constant
        TypeName,     ///< e.g. "float" vs "double"
        FunctionName, ///< e.g. a specific sqrt implementation
    };

    static TradeoffValue integer(std::int64_t v);
    static TradeoffValue real(double v);
    static TradeoffValue typeName(std::string name);
    static TradeoffValue functionName(std::string name);

    Kind kind() const { return _kind; }
    std::int64_t asInteger() const;
    double asReal() const;
    const std::string &asName() const;

    /** Printable form, used in logs and the state-space dump. */
    std::string toString() const;

    bool operator==(const TradeoffValue &other) const;

  private:
    TradeoffValue(Kind kind, std::int64_t i, double d, std::string name)
        : _kind(kind), _int(i), _real(d), _name(std::move(name))
    {
    }

    Kind _kind;
    std::int64_t _int;
    double _real;
    std::string _name;
};

/**
 * Paper Figure 10's `Tradeoff_options`: the developer-supplied value
 * range of one tradeoff.
 */
class TradeoffOptions
{
  public:
    virtual ~TradeoffOptions() = default;

    /** Number of possible values. */
    virtual std::int64_t getMaxIndex() const = 0;

    /** The i-th possible value; requires 0 <= i < getMaxIndex(). */
    virtual TradeoffValue getValue(std::int64_t i) const = 0;

    /** Index used when the tradeoff appears outside auxiliary code. */
    virtual std::int64_t getDefaultIndex() const = 0;

    /** Deep copy (used when the middle-end clones tradeoffs). */
    virtual std::unique_ptr<TradeoffOptions> clone() const = 0;
};

/** Integer range [lo, lo+step, ...] with `count` values. */
class IntRangeOptions : public TradeoffOptions
{
  public:
    IntRangeOptions(std::int64_t lo, std::int64_t count,
                    std::int64_t step = 1, std::int64_t default_index = 0);

    std::int64_t getMaxIndex() const override { return _count; }
    TradeoffValue getValue(std::int64_t i) const override;
    std::int64_t getDefaultIndex() const override { return _default; }
    std::unique_ptr<TradeoffOptions> clone() const override;

  private:
    std::int64_t _lo;
    std::int64_t _count;
    std::int64_t _step;
    std::int64_t _default;
};

/** Explicit list of real values. */
class RealListOptions : public TradeoffOptions
{
  public:
    RealListOptions(std::vector<double> values,
                    std::int64_t default_index = 0);

    std::int64_t getMaxIndex() const override;
    TradeoffValue getValue(std::int64_t i) const override;
    std::int64_t getDefaultIndex() const override { return _default; }
    std::unique_ptr<TradeoffOptions> clone() const override;

  private:
    std::vector<double> _values;
    std::int64_t _default;
};

/** List of type or function names (data-type / function tradeoffs). */
class NameListOptions : public TradeoffOptions
{
  public:
    NameListOptions(TradeoffValue::Kind kind,
                    std::vector<std::string> names,
                    std::int64_t default_index = 0);

    std::int64_t getMaxIndex() const override;
    TradeoffValue getValue(std::int64_t i) const override;
    std::int64_t getDefaultIndex() const override { return _default; }
    std::unique_ptr<TradeoffOptions> clone() const override;

  private:
    TradeoffValue::Kind _kind;
    std::vector<std::string> _names;
    std::int64_t _default;
};

/** A named tradeoff: options plus identity/cloning metadata. */
class Tradeoff
{
  public:
    Tradeoff(std::string name, std::unique_ptr<TradeoffOptions> options,
             bool aux_clone = false, std::string origin = "");

    const std::string &name() const { return _name; }
    const TradeoffOptions &options() const { return *_options; }

    /** True for tradeoffs the middle-end cloned into auxiliary code. */
    bool isAuxClone() const { return _auxClone; }

    /** Name of the original tradeoff this one was cloned from. */
    const std::string &origin() const { return _origin; }

    std::int64_t valueCount() const { return _options->getMaxIndex(); }
    TradeoffValue valueAt(std::int64_t i) const;
    TradeoffValue defaultValue() const;

  private:
    std::string _name;
    std::unique_ptr<TradeoffOptions> _options;
    bool _auxClone;
    std::string _origin;
};

} // namespace stats::tradeoff
