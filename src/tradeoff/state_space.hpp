/**
 * @file
 * The state space (paper section 3.3): the cross product of all
 * tunable dimensions of a program — auxiliary tradeoff indices, how
 * often a dependence is satisfied with auxiliary code, the auxiliary
 * input window, the producer re-execution budget, and the thread
 * split between the original TLP and the state-dependence TLP.
 *
 * A configuration is one index per dimension. The autotuner explores
 * this space; the paper reports ~1.3 million points on average.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace stats::tradeoff {

/** One integer-indexed dimension of the state space. */
struct Dimension
{
    std::string name;
    std::int64_t cardinality = 1;
    std::int64_t defaultIndex = 0;
};

/** A point in the state space: one index per dimension. */
using Configuration = std::vector<std::int64_t>;

/** Ordered collection of dimensions. */
class StateSpace
{
  public:
    /** Append a dimension; returns its position. */
    std::size_t add(Dimension dimension);

    /** Convenience: append and return position. */
    std::size_t add(const std::string &name, std::int64_t cardinality,
                    std::int64_t default_index = 0);

    std::size_t dimensionCount() const { return _dimensions.size(); }
    const Dimension &dimension(std::size_t i) const;

    /** Position of a dimension by name (panics if absent). */
    std::size_t indexOf(const std::string &name) const;
    bool hasDimension(const std::string &name) const;

    /** Product of cardinalities (double: spaces exceed 2^63). */
    double totalPoints() const;

    Configuration defaultConfiguration() const;
    bool valid(const Configuration &config) const;

    /** Uniformly random valid configuration. */
    Configuration randomConfiguration(support::Xoshiro256 &rng) const;

    /** Read one dimension's index out of a configuration, by name. */
    std::int64_t at(const Configuration &config,
                    const std::string &name) const;

    /** Set one dimension's index in a configuration, by name. */
    void set(Configuration &config, const std::string &name,
             std::int64_t index) const;

    /** One-line human-readable rendering of a configuration. */
    std::string describe(const Configuration &config) const;

  private:
    std::vector<Dimension> _dimensions;
};

} // namespace stats::tradeoff
