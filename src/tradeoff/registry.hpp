/**
 * @file
 * Registry of tradeoffs plus index assignments.
 *
 * The registry corresponds to the tradeoff-description table the
 * front-end compiler emits (paper Figure 11); an assignment maps
 * tradeoff names to value indices and corresponds to the tradeoff
 * part of one autotuner configuration.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tradeoff/tradeoff.hpp"

namespace stats::tradeoff {

/** Name prefix the middle-end gives to cloned auxiliary tradeoffs. */
inline constexpr const char *kAuxPrefix = "aux::";

/** Index assignment: tradeoff name -> value index. */
class Assignment
{
  public:
    void set(const std::string &name, std::int64_t index);
    bool has(const std::string &name) const;
    std::int64_t index(const std::string &name) const;
    std::size_t size() const { return _indices.size(); }

    const std::map<std::string, std::int64_t> &all() const
    {
        return _indices;
    }

  private:
    std::map<std::string, std::int64_t> _indices;
};

/** Owning collection of tradeoffs, looked up by name. */
class Registry
{
  public:
    /** Register a tradeoff; names must be unique. */
    Tradeoff &add(const std::string &name,
                  std::unique_ptr<TradeoffOptions> options);

    /**
     * Clone a tradeoff for auxiliary code ("aux::<name>"), so the
     * autotuner can set it independently of the original. Returns
     * the clone. Cloning twice is an error.
     */
    Tradeoff &cloneForAuxiliary(const std::string &name);

    bool has(const std::string &name) const;
    const Tradeoff &get(const std::string &name) const;
    std::size_t size() const { return _order.size(); }

    /** Names in registration order. */
    const std::vector<std::string> &names() const { return _order; }

    /** Names of auxiliary clones, in registration order. */
    std::vector<std::string> auxNames() const;

    /**
     * Value of a tradeoff under an assignment; falls back to the
     * default index when the assignment does not mention it (this is
     * how the middle-end "sets the tradeoffs outside auxiliary code
     * to their default value").
     */
    TradeoffValue value(const std::string &name,
                        const Assignment &assignment) const;

    /** Typed conveniences over value(). */
    std::int64_t intValue(const std::string &name,
                          const Assignment &assignment) const;
    double realValue(const std::string &name,
                     const Assignment &assignment) const;
    std::string nameValue(const std::string &name,
                          const Assignment &assignment) const;

    /** Assignment holding every tradeoff's default index. */
    Assignment defaults() const;

  private:
    std::map<std::string, std::unique_ptr<Tradeoff>> _byName;
    std::vector<std::string> _order;
};

} // namespace stats::tradeoff
