/**
 * @file
 * Related-work comparators of paper section 4.4 / Figure 17.
 *
 * The paper reimplements four prior approaches on the STATS
 * infrastructure and configures them "to target only the state
 * dependences we identified":
 *
 *  - ALTER-like [Udupa et al., PLDI'11]: breaks dependences with
 *    optional stale reads and exploits *reduction variables* whose
 *    update is `var = var op value` with a limited operator set. The
 *    only benchmark whose state qualifies is swaptions (its state is
 *    a scalar payoff accumulator); every other benchmark's state is
 *    a complex object with methods.
 *  - QuickStep-like [Misailovic et al., TECS'13] and HELIX-UP-like
 *    [Campanoni et al., CGO'15]: break state dependences outright.
 *    They "broke several state dependences [but] improved performance
 *    only for swaptions; other benchmarks require both state cloning
 *    and auxiliary code ... to preserve output quality".
 *  - Fast Track [Kelsey et al., CGO'09]: speculates that the state
 *    does not change and verifies against the *single* unspeculative
 *    state. With nondeterministic producers the check never passes:
 *    "Fast Track always aborted its speculations in our experiments".
 *
 * Results are gated like the paper's: a baseline's speedup counts
 * only if its output stays within the original program's output
 * variability (Figure 2); otherwise it falls back to the original
 * parallelization.
 */

#pragma once

#include <string>
#include <vector>

#include "benchmarks/common/benchmark.hpp"

namespace stats::baselines {

/** The four comparators of Figure 17. */
enum class BaselineKind
{
    AlterLike,
    QuickStepLike,
    HelixUpLike,
    FastTrack,
};

const char *baselineName(BaselineKind kind);
const std::vector<BaselineKind> &allBaselines();

/**
 * Structural applicability of a baseline to a benchmark's state
 * dependence (see the file comment for the per-approach reasoning).
 */
bool applicable(BaselineKind kind, const std::string &benchmark);

/** Measurement of one baseline execution. */
struct BaselineResult
{
    double virtualSeconds = 0.0;
    double quality = 0.0;
    bool usedSpeculation = false; ///< False when structurally inapplicable.
    sdi::EngineStats engineStats;
};

/**
 * Run a baseline on a benchmark with `threads` hardware threads in
 * Seq (no original TLP) or Par (with original TLP) flavor. When the
 * baseline is structurally inapplicable, the benchmark runs with the
 * original parallelization only (its dependences satisfied
 * conventionally), which is the paper's fallback.
 */
BaselineResult runBaseline(BaselineKind kind,
                           benchmarks::Benchmark &benchmark,
                           bool parallel_original, int threads,
                           const sim::MachineConfig &machine);

} // namespace stats::baselines
