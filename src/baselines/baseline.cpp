#include "baselines/baseline.hpp"

#include "support/log.hpp"

namespace stats::baselines {

const char *
baselineName(BaselineKind kind)
{
    switch (kind) {
      case BaselineKind::AlterLike: return "ALTER like";
      case BaselineKind::QuickStepLike: return "QuickStep like";
      case BaselineKind::HelixUpLike: return "HELIX-UP like";
      case BaselineKind::FastTrack: return "Fast Track";
    }
    return "?";
}

const std::vector<BaselineKind> &
allBaselines()
{
    static const std::vector<BaselineKind> kinds{
        BaselineKind::AlterLike,
        BaselineKind::QuickStepLike,
        BaselineKind::HelixUpLike,
        BaselineKind::FastTrack,
    };
    return kinds;
}

bool
applicable(BaselineKind kind, const std::string &benchmark)
{
    switch (kind) {
      case BaselineKind::AlterLike:
        // Requires a reduction variable updated with a limited
        // operator set; only swaptions' accumulator qualifies. "All
        // state dependences of the other benchmarks have more
        // complicated states (complex data structures and objects
        // with methods)" (paper section 4.4).
        return benchmark == "swaptions";
      case BaselineKind::QuickStepLike:
      case BaselineKind::HelixUpLike:
        // Break dependences without state cloning or auxiliary code:
        // effective only where the state is implicitly cloneable (a
        // register), i.e. swaptions.
        return benchmark == "swaptions";
      case BaselineKind::FastTrack:
        // Runs everywhere — and always aborts (checked at run time).
        return true;
    }
    return false;
}

BaselineResult
runBaseline(BaselineKind kind, benchmarks::Benchmark &benchmark,
            bool parallel_original, int threads,
            const sim::MachineConfig &machine)
{
    using benchmarks::Mode;
    using benchmarks::RunRequest;
    using benchmarks::SpeculationPolicy;

    BaselineResult result;
    RunRequest request;
    request.threads = threads;
    request.machine = machine;

    if (!applicable(kind, benchmark.name())) {
        // Fallback: dependences satisfied conventionally; only the
        // original TLP (or none, for the Seq flavor) is available.
        request.mode = Mode::Original;
        if (!parallel_original)
            request.threads = 1;
        const benchmarks::RunResult run = benchmark.run(request);
        result.virtualSeconds = run.virtualSeconds;
        result.quality = benchmark.quality(
            run.signature,
            benchmark.oracleSignature(
                benchmarks::WorkloadKind::Representative, 1));
        result.usedSpeculation = false;
        result.engineStats = run.engineStats;
        return result;
    }

    request.mode = parallel_original ? Mode::ParStats : Mode::SeqStats;
    request.policy = kind == BaselineKind::FastTrack
                         ? SpeculationPolicy::StaleExactCheck
                         : SpeculationPolicy::BreakNoCheck;
    const benchmarks::RunResult run = benchmark.run(request);
    result.virtualSeconds = run.virtualSeconds;
    result.quality = benchmark.quality(
        run.signature,
        benchmark.oracleSignature(
            benchmarks::WorkloadKind::Representative, 1));
    result.usedSpeculation = true;
    result.engineStats = run.engineStats;
    return result;
}

} // namespace stats::baselines
